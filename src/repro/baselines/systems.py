"""The seven systems of §8: UGache and its six baselines.

Each class documents which paper system it models and which costs give it
its characteristic behaviour:

=============  ========  ============  ================================
system         policy    mechanism     distinctive cost / benefit
=============  ========  ============  ================================
GNNLab         replicate local+host    bigger cache (sampler offload),
                                       host-queue sample transfer cost
WholeGraph     partition naive peer    fails when table > ΣGPU memory or
                                       pairs are unconnected
PartU          partition naive peer    clique split on DGX-1, host cold tier
RepU           replicate naive peer    —
HPS            replicate local+host    LRU online-eviction bookkeeping
SOK            partition message       buffered AllToAll
UGache         solver    factored      MILP policy + congestion-free FEM
=============  ========  ============  ================================
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import EmbCacheSystem, SystemContext, UnsupportedConfiguration
from repro.core.policy import (
    Placement,
    clique_partition_policy,
    partition_policy,
    replication_policy,
)
from repro.core.solver import SolverConfig, solve_policy
from repro.sim.mechanisms import Mechanism

#: Per-key cost of HPS's online LRU maintenance (hash probe + recency-list
#: update per looked-up key), seconds.  Calibrated so the HPS-vs-RepU gap
#: matches §8.2's "RepU improves on HPS by 2.39× ... static cache design
#: with no online eviction".
LRU_MAINTENANCE_PER_KEY = 2.0e-8

#: Bytes GNNLab moves per sampled key through its host-memory sample
#: queues (sampled subgraph structure: ids, offsets, edge index), §8.2's
#: explanation for GNNLab's end-to-end deficit despite fast extraction.
GNNLAB_QUEUE_BYTES_PER_KEY = 64.0


class GnnLabSystem(EmbCacheSystem):
    """GNNLab [46]: single-GPU replication cache ported to multi-GPU.

    Dedicating sampler GPUs frees trainer memory (no graph storage), so
    its cache budget grows by the topology volume; but every GPU still
    extracts only from its own cache or host, and samples cross GPUs
    through host-memory queues.
    """

    name = "GNNLab"
    supports = ("gnn",)

    def capacity(self, ctx: SystemContext) -> int:
        bonus = int(ctx.graph_bytes / ctx.entry_bytes)
        return ctx.capacity_entries + bonus

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        return replication_policy(ctx.hotness, self.capacity(ctx), ctx.num_gpus)

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        # Replication makes every hit local; misses go to host.  The
        # factored-vs-naive distinction is immaterial without remote
        # traffic, so the peer model (which GNNLab's kernels match) is
        # used.
        return Mechanism.PEER_NAIVE

    def per_iteration_overhead(self, ctx: SystemContext) -> float:
        queue_bytes = ctx.batch_keys * GNNLAB_QUEUE_BYTES_PER_KEY
        # Through host memory: one write + one read over PCIe.
        return 2.0 * queue_bytes / ctx.platform.pcie_bandwidth


class WholeGraphSystem(EmbCacheSystem):
    """WholeGraph [45]: full-table partition + zero-copy peer extraction.

    Reproduces the paper's two launch failures: ① the aggregate GPU
    memory must hold the *entire* table (there is no host tier), and
    ② every GPU pair must be connected.
    """

    name = "WholeGraph"
    supports = ("gnn",)

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        total_capacity = ctx.capacity_entries * ctx.num_gpus
        if total_capacity < ctx.num_entries:
            raise UnsupportedConfiguration(
                "WholeGraph cannot launch: embedding table exceeds total GPU memory"
            )
        topo = ctx.platform.topology
        for i in range(ctx.num_gpus):
            for j in range(i + 1, ctx.num_gpus):
                if not topo.connected(i, j):
                    raise UnsupportedConfiguration(
                        f"WholeGraph cannot launch: GPUs {i} and {j} are unconnected"
                    )
        return partition_policy(
            ctx.hotness, -(-ctx.num_entries // ctx.num_gpus), ctx.num_gpus
        )

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        return Mechanism.PEER_NAIVE


class PartUSystem(EmbCacheSystem):
    """PartU (§8.1): WholeGraph extended with a host cold tier and
    Quiver-style clique partitioning for platforms with unconnected pairs."""

    name = "PartU"

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        cliques = ctx.platform.topology.cliques()
        if len(cliques) > 1:
            return clique_partition_policy(
                ctx.hotness, ctx.capacity_entries, ctx.platform
            )
        return partition_policy(ctx.hotness, ctx.capacity_entries, ctx.num_gpus)

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        return Mechanism.PEER_NAIVE


class RepUSystem(EmbCacheSystem):
    """RepU (§8.1): PartU's codebase with a replication policy."""

    name = "RepU"

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        return replication_policy(ctx.hotness, ctx.capacity_entries, ctx.num_gpus)

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        return Mechanism.PEER_NAIVE


class HpsSystem(EmbCacheSystem):
    """HPS [43]: per-GPU replication cache with online LRU eviction.

    The steady-state content of an LRU cache under a static skewed
    distribution is approximately the hottest entries, so placement
    matches replication; the distinguishing cost is per-key maintenance.
    """

    name = "HPS"
    supports = ("dlr",)

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        return replication_policy(ctx.hotness, ctx.capacity_entries, ctx.num_gpus)

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        return Mechanism.PEER_NAIVE

    def per_iteration_overhead(self, ctx: SystemContext) -> float:
        return ctx.batch_keys * LRU_MAINTENANCE_PER_KEY


class SokSystem(EmbCacheSystem):
    """SOK [8]: partition cache + message-based (AllToAll) extraction.

    SOK's embedding plugin issues one collective lookup per embedding
    table, so a 100-table model pays ~100 rounds of gather/exchange/
    reorder launches on top of the data movement itself.
    """

    name = "SOK"
    supports = ("dlr",)

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        return partition_policy(ctx.hotness, ctx.capacity_entries, ctx.num_gpus)

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        return Mechanism.MESSAGE

    def per_iteration_overhead(self, ctx: SystemContext) -> float:
        from repro.sim.mechanisms import MESSAGE_STAGE_OVERHEAD

        extra_rounds = max(ctx.num_tables - 1, 0)
        return extra_rounds * 3 * MESSAGE_STAGE_OVERHEAD


class UGacheSystem(EmbCacheSystem):
    """UGache: MILP-solved policy + factored extraction mechanism.

    Solved placements are memoized per (platform, capacity, hotness
    fingerprint) — the production system likewise reuses a solved policy
    until the Refresher decides hotness has drifted (§7.2), and the
    benchmark matrix scores the same cell under several metrics.
    """

    name = "UGache"

    #: shared across instances: the same cell appears in several figures
    _plan_cache: dict[tuple, Placement] = {}

    def __init__(self, solver_config: SolverConfig | None = None) -> None:
        self._config = solver_config or SolverConfig()

    def _fingerprint(self, ctx: SystemContext) -> tuple:
        hot = np.ascontiguousarray(ctx.hotness)
        digest = hash((hot.shape[0], float(hot.sum()), hot.tobytes()[:4096]))
        return (
            self._config,
            ctx.platform.name,
            ctx.platform.num_gpus,
            ctx.capacity_entries,
            ctx.entry_bytes,
            digest,
        )

    def plan(self, ctx: SystemContext) -> Placement:
        self.check_supported(ctx)
        key = self._fingerprint(ctx)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        solved = solve_policy(
            ctx.platform,
            ctx.hotness,
            ctx.capacity_entries,
            ctx.entry_bytes,
            config=self._config,
        )
        placement = solved.realize()
        self._plan_cache[key] = placement
        return placement

    def mechanism(self, ctx: SystemContext) -> Mechanism:
        return Mechanism.FACTORED


#: Figure 10's system line-up per application.
GNN_SYSTEMS = (GnnLabSystem(), WholeGraphSystem(), PartUSystem(), UGacheSystem())
DLR_SYSTEMS = (HpsSystem(), SokSystem(), UGacheSystem())
ISOLATION_SYSTEMS = (RepUSystem(), PartUSystem(), UGacheSystem())
