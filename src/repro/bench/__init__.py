"""Benchmark harness: experiment drivers for every paper table/figure."""

from repro.bench.contexts import (
    DLR_BATCH_SIZE,
    DLR_MODELS,
    GNN_BATCH_SIZE,
    GNN_MODES,
    DlrCell,
    GnnCell,
    dlr_cell,
    gnn_cell,
    platform_by_name,
)
from repro.bench.harness import (
    ExperimentResult,
    render_table,
    run_with_metrics,
    speedup_summary,
)
from repro.bench.validation import AgreementReport, AgreementSample, validate_model_agreement

__all__ = [
    "DLR_BATCH_SIZE",
    "DLR_MODELS",
    "GNN_BATCH_SIZE",
    "GNN_MODES",
    "DlrCell",
    "GnnCell",
    "dlr_cell",
    "gnn_cell",
    "platform_by_name",
    "ExperimentResult",
    "AgreementReport",
    "AgreementSample",
    "validate_model_agreement",
    "render_table",
    "run_with_metrics",
    "speedup_summary",
]
