"""Dataset stand-ins (Table 3) and the scaled-capacity rule."""

import numpy as np
import pytest

from repro.datasets import (
    DLR_SPECS,
    GNN_SPECS,
    all_dataset_summaries,
    build_gnn_dataset,
    cache_ratio_for,
    capacity_entries_for,
    dlr_spec,
)


class TestGnnSpecs:
    def test_table3_datasets_present(self):
        assert set(GNN_SPECS) == {"pa", "cf", "mag"}

    def test_mag_is_float16_768(self):
        spec = GNN_SPECS["mag"]
        assert spec.dim == 768
        assert spec.dtype == "float16"
        assert spec.entry_bytes == 1536

    def test_pa_cf_are_float32(self):
        assert GNN_SPECS["pa"].entry_bytes == 128 * 4
        assert GNN_SPECS["cf"].entry_bytes == 256 * 4

    def test_skew_ordering(self):
        # PA/MAG high skew, CF low skew — the Figure 14 contrast.
        assert GNN_SPECS["pa"].degree_alpha > GNN_SPECS["cf"].degree_alpha
        assert GNN_SPECS["mag"].degree_alpha > GNN_SPECS["cf"].degree_alpha

    def test_topology_budget_uses_paper_ratio(self):
        spec = GNN_SPECS["pa"]
        expected = spec.embedding_bytes * 12.8 / 53.0
        assert spec.topology_budget_bytes == pytest.approx(expected, rel=0.01)


class TestBuildGnnDataset:
    def test_build_and_memoize(self):
        a = build_gnn_dataset("pa")
        b = build_gnn_dataset("pa")
        assert a is b  # lru_cache

    def test_shapes_match_spec(self):
        ds = build_gnn_dataset("cf")
        assert ds.graph.num_nodes == GNN_SPECS["cf"].num_nodes
        assert len(ds.train_ids) == int(0.15 * 131_000)

    def test_train_ids_unique_sorted(self):
        ds = build_gnn_dataset("pa")
        assert (np.diff(ds.train_ids) > 0).all()

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            build_gnn_dataset("ogbn-products")

    def test_degree_hotness_normalized(self):
        ds = build_gnn_dataset("pa")
        assert ds.hotness_degree().sum() == pytest.approx(1.0)


class TestDlrSpecs:
    def test_cr_has_26_tables(self):
        assert dlr_spec("cr").num_tables == 26

    def test_syn_datasets(self):
        assert dlr_spec("syn-a").alpha == 1.2
        assert dlr_spec("syn-b").alpha == 1.4
        assert dlr_spec("syn-a").num_tables == 100
        assert dlr_spec("syn-a").num_entries == 800_000

    def test_criteo_sizes_heterogeneous(self):
        sizes = dlr_spec("cr").table_sizes
        assert max(sizes) > 100 * min(sizes)

    def test_workload_construction(self):
        wl = dlr_spec("syn-as").workload(batch_size=16, num_gpus=2)
        assert wl.num_entries == dlr_spec("syn-as").num_entries

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            dlr_spec("criteo-kaggle")


class TestCapacityRule:
    def test_mag_tight_on_v100(self, platform_a):
        # MAG barely fits: the host-bound regime of §8.2.
        assert cache_ratio_for(platform_a, GNN_SPECS["mag"]) < 0.05

    def test_bigger_gpu_bigger_ratio(self, platform_a, platform_c):
        for spec in GNN_SPECS.values():
            assert cache_ratio_for(platform_c, spec) > cache_ratio_for(
                platform_a, spec
            )

    def test_ratio_capped_at_one(self, platform_c):
        assert cache_ratio_for(platform_c, GNN_SPECS["pa"], usable_fraction=5.0) == 1.0

    def test_capacity_entries(self, platform_c):
        spec = GNN_SPECS["pa"]
        cap = capacity_entries_for(platform_c, spec)
        assert cap == int(cache_ratio_for(platform_c, spec) * spec.num_nodes)


class TestSummaries:
    def test_table3_rows(self):
        rows = {s.key for s in all_dataset_summaries()}
        assert rows == {"pa", "cf", "mag", "cr", "syn-a", "syn-b"}

    def test_reduced_variants_excluded(self):
        keys = {s.key for s in all_dataset_summaries()}
        assert "syn-as" not in keys and "syn-bs" not in keys

    def test_volumes_positive(self):
        for s in all_dataset_summaries():
            assert s.volume_bytes > 0
            assert 0 < s.scale < 0.01
