"""GNN training workloads: epochs, modes, hotness estimation."""

import numpy as np
import pytest

from repro.gnn.graph import power_law_graph
from repro.gnn.workload import DEFAULT_FANOUTS, GnnWorkload


@pytest.fixture
def graph():
    return power_law_graph(1000, 8000, degree_alpha=1.0, seed=0)


@pytest.fixture
def train_ids(graph):
    return np.arange(0, 1000, 4)  # 250 train nodes


def _workload(graph, train_ids, mode="sage-sup", **kw):
    defaults = dict(batch_size=32, num_gpus=2)
    defaults.update(kw)
    return GnnWorkload(graph, train_ids, mode, **defaults)


class TestConstruction:
    def test_mode_fanouts(self, graph, train_ids):
        assert _workload(graph, train_ids, "gcn").fanouts == DEFAULT_FANOUTS["gcn"]
        assert len(_workload(graph, train_ids, "gcn").fanouts) == 3
        assert len(_workload(graph, train_ids, "sage-sup").fanouts) == 2

    def test_custom_fanouts(self, graph, train_ids):
        wl = _workload(graph, train_ids, fanouts=(3, 3))
        assert wl.fanouts == (3, 3)

    def test_unknown_mode_rejected(self, graph, train_ids):
        with pytest.raises(ValueError):
            _workload(graph, train_ids, mode="gat")

    def test_supervised_needs_train_set(self, graph):
        with pytest.raises(ValueError):
            _workload(graph, np.empty(0, dtype=np.int64), "sage-sup")

    def test_unsup_without_train_set_ok(self, graph):
        wl = _workload(graph, np.empty(0, dtype=np.int64), "sage-unsup")
        assert wl.iterations_per_epoch() >= 1


class TestEpoch:
    def test_one_batch_per_gpu(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        batches = next(iter(wl.epoch(0)))
        assert len(batches) == 2

    def test_iteration_count(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        assert wl.iterations_per_epoch() == len(train_ids) // 64
        assert len(list(wl.epoch(0))) == wl.iterations_per_epoch()

    def test_keys_in_range(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        for batches in wl.epoch(1):
            for keys in batches:
                assert keys.min() >= 0 and keys.max() < graph.num_nodes

    def test_epoch_deterministic(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        a = [k for b in wl.epoch(7) for k in b]
        b = [k for b in wl.epoch(7) for k in b]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_supervised_seeds_come_from_train_set(self, graph, train_ids):
        wl = _workload(graph, train_ids, fanouts=(2,))
        train = set(train_ids.tolist())
        for batches in wl.epoch(0):
            for keys in batches:
                # Seeds are the first batch_size entries of each key array.
                assert set(keys[:32].tolist()) <= train

    def test_dedup_produces_fewer_keys(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        raw = next(iter(wl.epoch(0, dedup=False)))[0]
        unique = next(iter(wl.epoch(0, dedup=True)))[0]
        assert len(unique) <= len(raw)
        assert len(np.unique(unique)) == len(unique)

    def test_unsup_epoch_longer_than_sup(self, graph, train_ids):
        sup = _workload(graph, train_ids, "sage-sup")
        unsup = _workload(graph, train_ids, "sage-unsup")
        assert unsup.iterations_per_epoch() > sup.iterations_per_epoch()


class TestHotness:
    def test_presampled_hotness_shape(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        hot = wl.presampled_hotness(0, max_iterations=2)
        assert hot.shape == (graph.num_nodes,)
        assert (hot >= 0).all()
        assert hot.sum() > 0

    def test_presampled_normalized_per_gpu_batch(self, graph, train_ids):
        wl = _workload(graph, train_ids, fanouts=(2,))
        hot = wl.presampled_hotness(0)
        # Expected accesses per batch per GPU = batch × (1 + fanout).
        assert hot.sum() == pytest.approx(32 * 3, rel=0.05)

    def test_degree_hotness_ranks_hubs_first(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        hot = wl.degree_hotness()
        degs = graph.degrees()
        assert hot[np.argmax(degs)] == hot.max()

    def test_degree_and_presample_correlate(self, graph, train_ids):
        wl = _workload(graph, train_ids)
        pre = wl.presampled_hotness(0)
        deg = wl.degree_hotness()
        corr = np.corrcoef(pre, deg)[0, 1]
        assert corr > 0.8
