"""§6.3 scale: block counts, MILP size, solve time, LP-vs-MILP gap."""

from repro.bench.experiments import misc_solver_scale


def bench_misc_solver_scale(run_experiment):
    result = run_experiment(misc_solver_scale)
    for row in result.rows:
        # §6.3: blocking keeps the problem below ~1k blocks and solves in
        # seconds (paper: ~10 s with Gurobi at full scale).
        assert row["blocks"] < 1000
        assert row["solve_s"] < 60
