"""Ablation: FEM's local-extraction padding (§5.3)."""

from repro.bench.experiments import ablation_padding


def bench_misc_ablation_padding(run_experiment):
    result = run_experiment(ablation_padding)
    for row in result.rows:
        assert row["speedup"] >= 1.0  # padding never hurts
    assert any(row["speedup"] > 1.05 for row in result.rows)
