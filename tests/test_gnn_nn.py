"""Numpy GraphSAGE: tree sampling, forward/backward, training."""

import numpy as np
import pytest

from repro.gnn.graph import power_law_graph
from repro.gnn.nn import FanoutTree, GraphSageModel, sample_tree


@pytest.fixture
def graph():
    return power_law_graph(400, 3000, degree_alpha=0.8, seed=0)


@pytest.fixture
def tree(graph):
    return sample_tree(graph, np.arange(16), fanouts=(4, 3), seed=1)


def _features_for(tree, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    table = rng.standard_normal((1000, dim)).astype(np.float64)
    return [table[nodes] for nodes in tree.nodes], table


class TestSampleTree:
    def test_shape_per_depth(self, tree):
        assert len(tree.nodes[0]) == 16
        assert len(tree.nodes[1]) == 16 * 4
        assert len(tree.nodes[2]) == 16 * 4 * 3

    def test_children_are_neighbors_or_self(self, graph, tree):
        for i, parent in enumerate(tree.nodes[0]):
            children = tree.nodes[1][i * 4 : (i + 1) * 4]
            nbrs = set(graph.neighbors(int(parent)).tolist()) | {int(parent)}
            assert set(children.tolist()) <= nbrs

    def test_all_keys_counts_duplicates(self, tree):
        assert len(tree.all_keys()) == 16 + 64 + 192

    def test_deterministic(self, graph):
        a = sample_tree(graph, np.arange(8), (3,), seed=5)
        b = sample_tree(graph, np.arange(8), (3,), seed=5)
        assert np.array_equal(a.nodes[1], b.nodes[1])

    def test_features_by_depth_scatter(self, tree):
        keys = tree.all_keys()
        unique = np.unique(keys)
        rng = np.random.default_rng(0)
        values = rng.standard_normal((len(unique), 8))
        feats = tree.features_by_depth(unique, values)
        lookup = {int(k): i for i, k in enumerate(unique)}
        for depth in range(3):
            rows = [lookup[int(v)] for v in tree.nodes[depth][:10]]
            assert np.allclose(feats[depth][:10], values[rows])


class TestForward:
    def test_logit_shape(self, tree):
        feats, _ = _features_for(tree)
        model = GraphSageModel(8, 16, num_levels=2, num_classes=5)
        logits, _ = model.forward(tree, feats)
        assert logits.shape == (16, 5)

    def test_depth_mismatch_rejected(self, tree):
        feats, _ = _features_for(tree)
        model = GraphSageModel(8, 16, num_levels=3, num_classes=5)
        with pytest.raises(ValueError):
            model.forward(tree, feats)

    def test_deterministic_given_seed(self, tree):
        feats, _ = _features_for(tree)
        a = GraphSageModel(8, 16, 2, 5, seed=3).forward(tree, feats)[0]
        b = GraphSageModel(8, 16, 2, 5, seed=3).forward(tree, feats)[0]
        assert np.allclose(a, b)


class TestGradients:
    def test_numeric_gradient_check(self, tree):
        """Backprop matches finite differences on sampled weight entries."""
        feats, _ = _features_for(tree)
        model = GraphSageModel(8, 6, num_levels=2, num_classes=3, seed=1)
        labels = np.arange(16) % 3
        loss, grads = model.loss_and_grads(tree, feats, labels)

        eps = 1e-6
        checks = [
            (model.w_self[0], grads.w_self[0], (0, 0)),
            (model.w_self[1], grads.w_self[1], (2, 3)),
            (model.w_neigh[0], grads.w_neigh[0], (1, 2)),
            (model.w_neigh[1], grads.w_neigh[1], (4, 1)),
            (model.w_out, grads.w_out, (5, 2)),
        ]
        for weight, grad, (i, j) in checks:
            original = weight[i, j]
            weight[i, j] = original + eps
            loss_plus, _ = model.loss_and_grads(tree, feats, labels)
            weight[i, j] = original - eps
            loss_minus, _ = model.loss_and_grads(tree, feats, labels)
            weight[i, j] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert numeric == pytest.approx(grad[i, j], rel=1e-3, abs=1e-6)

    def test_loss_positive(self, tree):
        feats, _ = _features_for(tree)
        model = GraphSageModel(8, 6, 2, 3)
        loss, _ = model.loss_and_grads(tree, feats, np.zeros(16, dtype=int))
        assert loss > 0


class TestTraining:
    def test_loss_decreases_on_learnable_task(self, graph):
        """Labels derived from embedding features are learnable."""
        rng = np.random.default_rng(0)
        dim, classes = 8, 3
        table = rng.standard_normal((graph.num_nodes, dim))
        true_w = rng.standard_normal((dim, classes))
        labels_all = (table @ true_w).argmax(axis=1)

        model = GraphSageModel(dim, 16, num_levels=2, num_classes=classes, seed=2)
        seeds = rng.choice(graph.num_nodes, size=64, replace=False)
        tree = sample_tree(graph, seeds, (4, 3), seed=3)
        feats = [table[nodes] for nodes in tree.nodes]
        labels = labels_all[seeds]

        first_loss, grads = model.loss_and_grads(tree, feats, labels)
        for _ in range(60):
            loss, grads = model.loss_and_grads(tree, feats, labels)
            model.sgd_step(grads, lr=0.3)
        final_loss, _ = model.loss_and_grads(tree, feats, labels)
        assert final_loss < 0.7 * first_loss

    def test_predict_shape(self, tree):
        feats, _ = _features_for(tree)
        model = GraphSageModel(8, 6, 2, 4)
        preds = model.predict(tree, feats)
        assert preds.shape == (16,)
        assert ((preds >= 0) & (preds < 4)).all()
