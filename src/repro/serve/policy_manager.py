"""Hot policy swap: versioned cache-policy generations with guarded rollover.

The background solver periodically re-solves the cache policy under fresh
hotness (PR 2's :func:`~repro.core.solver.solve_policy_with_fallback`).
Landing that new placement on a *serving* cache is the dangerous part: the
swap must not corrupt routing mid-flight, and a policy that looked better
to the solver can still regress tail latency in practice (the estimate is
a model; production traffic is the judge).  The :class:`PolicyManager`
makes the rollover safe:

1. **drain** — the runtime finishes in-flight batches against the old
   generation (the caller-supplied ``drain`` hook);
2. **probe (before)** — measure serving latency under the old generation;
3. **refresh** — apply the placement diff through
   :meth:`~repro.core.refresher.Refresher.refresh`, which is transactional:
   an abort or mid-step failure rolls the cache back bit-identically;
4. **verify** — :meth:`~repro.core.cache.MultiGpuEmbeddingCache.verify_integrity`
   must come back clean, else the swap is rolled back;
5. **probe (after) + guardrail** — if post-swap latency regresses past
   ``guardrail.p99_regression`` × pre-swap, the previous generation is
   restored (again through a transactional refresh).

Every accepted generation is versioned and kept in history, so operators
can answer "which policy was serving at 14:03" from the swap log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import Placement
from repro.core.refresher import Refresher
from repro.core.solver import (
    FallbackConfig,
    PolicyOutcome,
    SolverConfig,
    solve_policy_with_fallback,
)
from repro.obs import get_registry
from repro.utils.logging import get_logger

logger = get_logger("serve.policy_manager")

__all__ = ["PolicyGeneration", "PolicyManager", "SwapGuardrail", "SwapReport"]


@dataclass(frozen=True)
class PolicyGeneration:
    """One accepted cache-policy version."""

    version: int
    placement: Placement
    #: which rung produced it: "seed", "milp", "greedy", or "cached".
    source: str
    est_time: float
    activated_at: float


@dataclass(frozen=True)
class SwapGuardrail:
    """Post-swap acceptance gates.

    Attributes:
        p99_regression: maximum tolerated post/pre probe-latency ratio;
            above it the swap is rolled back.
        min_improvement: required est-time improvement ratio (old/new) for
            a swap to even be attempted; 1.0 accepts any non-regression.
    """

    p99_regression: float = 1.5
    min_improvement: float = 1.0

    def __post_init__(self) -> None:
        if self.p99_regression <= 0:
            raise ValueError("guardrail ratio must be positive")
        if self.min_improvement < 1.0:
            raise ValueError("min improvement must be >= 1.0")


@dataclass
class SwapReport:
    """What one swap attempt did, for the swap log and the soak report."""

    attempted: bool
    swapped: bool = False
    rolled_back: bool = False
    reason: str = ""
    version: int = 0
    entries_moved: int = 0
    pre_probe: float = 0.0
    post_probe: float = 0.0
    integrity_violations: int = 0


class PolicyManager:
    """Holds versioned policy generations and lands swaps transactionally."""

    def __init__(
        self,
        cache: MultiGpuEmbeddingCache,
        entry_bytes: int | None = None,
        refresher: Refresher | None = None,
        guardrail: SwapGuardrail | None = None,
        solver_config: SolverConfig | None = None,
        fallback: FallbackConfig | None = None,
        verify_sample: float | None = 0.25,
    ) -> None:
        if verify_sample is not None and not 0 < verify_sample <= 1:
            raise ValueError("verify sample must be in (0, 1]")
        self._cache = cache
        self._entry_bytes = entry_bytes or cache.entry_bytes
        self._refresher = refresher or Refresher(cache)
        self.guardrail = guardrail or SwapGuardrail()
        #: byte-compare fraction for the swap-time integrity check.  The
        #: swap sits inside the serving drain window, so it uses the
        #: sampled mode; rollback (and every final gate) keeps the full
        #: scan — ``None`` makes the swap full-scan too.
        self.verify_sample = verify_sample
        self._solver_config = solver_config
        self._fallback = fallback
        self._generations: list[PolicyGeneration] = [
            PolicyGeneration(
                version=0,
                placement=cache.placement,
                source="seed",
                est_time=0.0,
                activated_at=0.0,
            )
        ]
        self.swap_log: list[SwapReport] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current(self) -> PolicyGeneration:
        return self._generations[-1]

    @property
    def version(self) -> int:
        return self.current.version

    @property
    def generations(self) -> tuple[PolicyGeneration, ...]:
        return tuple(self._generations)

    # ------------------------------------------------------------------
    # Solve + swap
    # ------------------------------------------------------------------
    def solve(
        self,
        hotness: np.ndarray,
        capacity_entries: int | list[int],
        **kwargs,
    ) -> PolicyOutcome:
        """Run the solver fallback chain against the cache's platform."""
        return solve_policy_with_fallback(
            self._cache.platform,
            hotness,
            capacity_entries,
            self._entry_bytes,
            config=self._solver_config,
            fallback=self._fallback,
            **kwargs,
        )

    def _rollback(self, placement: Placement, reason: str) -> int:
        """Refresh back to ``placement``; returns integrity violations."""
        outcome = self._refresher.refresh(placement)
        violations = self._cache.verify_integrity()
        reg = get_registry()
        reg.counter("serve.policy.rollbacks", reason=reason).inc()
        logger.warning(
            "policy swap rolled back (%s): %d entries moved back, "
            "%d integrity violation(s)",
            reason, outcome.entries_moved, len(violations),
        )
        return len(violations)

    def swap(
        self,
        outcome: PolicyOutcome,
        now: float = 0.0,
        drain=None,
        probe=None,
        abort=None,
        stale_baseline: bool = False,
    ) -> SwapReport:
        """Atomically land ``outcome``'s placement on the serving cache.

        Args:
            outcome: a :class:`~repro.core.solver.PolicyOutcome` from
                :meth:`solve` (or any placement-bearing outcome).
            now: current (simulated) time, stamped on the new generation.
            drain: zero-arg hook; called before the refresh so the runtime
                can finish in-flight batches against the old generation.
            probe: zero-arg hook returning a latency measurement (seconds);
                called before and after the refresh for the p99 guardrail.
            abort: forwarded to :meth:`Refresher.refresh` (fault plans can
                interrupt the swap; the refresher rolls back on its own).
            stale_baseline: skip the ``min_improvement`` estimate gate.
                Drift adaptation sets this: the serving generation's
                ``est_time`` was computed under *yesterday's* hotness, so
                comparing it against an estimate under the drifted
                hotness compares incommensurable numbers — the probe-based
                p99 guardrail (which measures real traffic both sides of
                the refresh) is the only meaningful judge.

        Returns:
            A :class:`SwapReport`; ``swapped`` and ``rolled_back`` tell the
            caller what actually happened.  Never raises for guardrail or
            integrity failures — rollback is the error handling.
        """
        reg = get_registry()
        report = SwapReport(attempted=True, version=self.version)
        self.swap_log.append(report)

        current = self.current
        if (
            not stale_baseline
            and current.est_time > 0
            and outcome.est_time > 0
            and current.est_time / outcome.est_time < self.guardrail.min_improvement
        ):
            report.reason = "not-better"
            reg.counter("serve.policy.swaps", result="skipped").inc()
            return report

        if drain is not None:
            drain()
        pre_placement, _pre_map = self._cache.snapshot_location_state()
        report.pre_probe = float(probe()) if probe is not None else 0.0

        refresh = self._refresher.refresh(outcome.placement, abort=abort)
        if refresh.interrupted:
            # the refresher already rolled the cache back bit-identically.
            report.rolled_back = True
            report.reason = "refresh-interrupted"
            reg.counter("serve.policy.swaps", result="interrupted").inc()
            return report
        report.entries_moved = refresh.entries_moved

        # Sampled check inside the drain window (structural invariants
        # still run in full; only the byte-compare is sampled) — the
        # anti-entropy scrubber covers the slots this pass skips.
        violations = self._cache.verify_integrity(
            sample=self.verify_sample, seed=self.version
        )
        if violations:
            report.integrity_violations = len(violations)
            report.rolled_back = True
            report.reason = "integrity"
            self._rollback(pre_placement, "integrity")
            reg.counter("serve.policy.swaps", result="integrity-rollback").inc()
            return report

        report.post_probe = float(probe()) if probe is not None else 0.0
        if (
            probe is not None
            and report.pre_probe > 0
            and report.post_probe
            > self.guardrail.p99_regression * report.pre_probe
        ):
            report.rolled_back = True
            report.reason = "p99-guardrail"
            self._rollback(pre_placement, "p99-guardrail")
            reg.counter("serve.policy.swaps", result="guardrail-rollback").inc()
            return report

        generation = PolicyGeneration(
            version=self.version + 1,
            placement=outcome.placement,
            source=outcome.source,
            est_time=outcome.est_time,
            activated_at=now,
        )
        self._generations.append(generation)
        report.swapped = True
        report.version = generation.version
        report.reason = "swapped"
        reg.counter("serve.policy.swaps", result="swapped").inc()
        reg.gauge("serve.policy.version").set(generation.version)
        logger.info(
            "policy swap landed: v%d (%s, est %.3es, %d entries moved) at t=%.2f",
            generation.version, generation.source, generation.est_time,
            report.entries_moved, now,
        )
        return report
