"""Hardware substrate: GPU specs, interconnect topologies, platform presets.

The paper's evaluation spans three servers (§8.1); :func:`server_a`,
:func:`server_b` and :func:`server_c` reproduce them declaratively.  All
performance modelling elsewhere in the library consumes only the numbers
exposed by :class:`Platform`.
"""

from repro.hardware.bandwidth import ToleranceCurve, achieved_bandwidth, tolerance_curves
from repro.hardware.memory import OutOfDeviceMemory, SlotArena
from repro.hardware.profiler import PlatformProfile, profile_platform, verify_profile
from repro.hardware.platform import (
    HOST,
    PRESETS,
    MemoryTier,
    Platform,
    parse_tier_spec,
    server_a,
    server_a_tiered,
    server_b,
    server_c,
    server_c_tiered,
    single_gpu,
    with_tiers,
)
from repro.hardware.spec import GPUSpec, LinkKind, a100_80gb, v100_16gb, v100_32gb
from repro.hardware.topology import (
    Topology,
    TopologyKind,
    dgx1_8gpu,
    hardwired_fully_connected,
    nvswitch,
)

__all__ = [
    "PlatformProfile",
    "profile_platform",
    "verify_profile",
    "HOST",
    "PRESETS",
    "MemoryTier",
    "Platform",
    "parse_tier_spec",
    "server_a",
    "server_a_tiered",
    "server_b",
    "server_c",
    "server_c_tiered",
    "single_gpu",
    "with_tiers",
    "GPUSpec",
    "LinkKind",
    "a100_80gb",
    "v100_16gb",
    "v100_32gb",
    "Topology",
    "TopologyKind",
    "dgx1_8gpu",
    "hardwired_fully_connected",
    "nvswitch",
    "SlotArena",
    "OutOfDeviceMemory",
    "ToleranceCurve",
    "achieved_bandwidth",
    "tolerance_curves",
]
