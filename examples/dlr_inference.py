"""DLR inference with UGache — the paper's second application domain (§8).

Serves a multi-table recommendation workload (Criteo-like: heterogeneous
table sizes, Zipf keys) through the TensorFlow-style embedding layer
(§7.1), then demonstrates the background Refresher (§7.2): the key
popularity drifts, the Solver re-evaluates, and the cache is migrated in
small throttled steps while lookups stay exact throughout.

Run:  python examples/dlr_inference.py
"""

import numpy as np

from repro import server_c
from repro.dlr import DlrWorkload
from repro.framework import UGacheKerasEmbedding

TABLE_SIZES = (40_000, 20_000, 10_000, 5_000, 2_500) + (500,) * 10
DIM, BATCH, NUM_GPUS = 32, 4096, 8


def main() -> None:
    platform = server_c()
    rng = np.random.default_rng(0)

    workload = DlrWorkload(
        table_sizes=TABLE_SIZES, alpha=1.2, batch_size=BATCH,
        num_gpus=NUM_GPUS, seed=0,
    )
    print(f"{workload.num_tables} embedding tables, "
          f"{workload.num_entries:,} entries total")

    table = rng.standard_normal((workload.num_entries, DIM)).astype(np.float32)
    layer = UGacheKerasEmbedding(platform, cache_ratio=0.08, name="dlr_embedding")
    layer.build(table, workload.hotness())
    hits = layer.layer.hit_rates()
    print(f"cache built: local {hits.local:.1%}, remote {hits.remote:.1%}, "
          f"host {hits.host:.1%}")

    print("\nserving inference batches:")
    for it, batches in enumerate(workload.take_batches(3, seed=5)):
        # Keras-style call: (batch × tables) keys → (batch × tables × dim).
        keys = batches[0].reshape(workload.num_tables, BATCH).T
        dense_input = layer(keys, device=0)
        assert dense_input.shape == (BATCH, workload.num_tables, DIM)
        _values, report = layer.layer.extract(batches)
        print(f"  iter {it}: extraction {report.time * 1e3:.3f} ms (simulated)")

    # ------------------------------------------------------------------
    # Hotness drift + background refresh (§7.2)
    # ------------------------------------------------------------------
    print("\npopularity drifts (daily trace rollover) → refresh:")
    drifted = DlrWorkload(
        table_sizes=TABLE_SIZES, alpha=1.2, batch_size=BATCH,
        num_gpus=NUM_GPUS, seed=99,  # new permutation = new hot set
    )
    stale_hits = _hit_rate_under(layer, drifted)
    outcome = layer.layer.refresh(drifted.hotness())
    fresh_hits = _hit_rate_under(layer, drifted)
    print(f"  refresh triggered: {outcome.triggered}, "
          f"moved {outcome.entries_moved:,} entries in {outcome.steps} steps "
          f"(~{outcome.estimated_duration:.1f} s incl. solve)")
    print(f"  GPU hit rate on drifted trace: {stale_hits:.1%} -> {fresh_hits:.1%}")

    batch = next(iter(drifted.batches(seed=7)))[0]
    values = layer.layer.lookup(0, batch)
    assert np.array_equal(values, table[batch]), "lookups must stay exact"
    print("  post-refresh lookups verified byte-exact")


def _hit_rate_under(layer: UGacheKerasEmbedding, workload: DlrWorkload) -> float:
    from repro.core.evaluate import hit_rates

    hits = hit_rates(
        layer.layer.platform, layer.layer.placement, workload.hotness()
    )
    return hits.global_hit


if __name__ == "__main__":
    main()
