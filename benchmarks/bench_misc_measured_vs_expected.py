"""Invariant: expected-value pricing is an unbiased stand-in for replay."""

from repro.bench.experiments import misc_measured_vs_expected


def bench_misc_measured_vs_expected(run_experiment):
    result = run_experiment(misc_measured_vs_expected)
    rows = {r["workload"]: r for r in result.rows}
    # DLR batches are huge iid draws: the expectation is unbiased.
    assert abs(rows["dlrm/syn-a"]["bias_pct"]) < 10.0
    # GNN batch time is a max over GPUs with high per-GPU variance, so the
    # replay runs hotter than the expectation — bounded, and shared by all
    # systems in the figure drivers (Jensen gap, see the driver's note).
    assert -10.0 < rows["sage-sup/pa"]["bias_pct"] < 100.0
    for row in result.rows:
        # Per-iteration variance stays modest (stable skew, §2).
        assert row["measured_p99_ms"] < row["measured_mean_ms"] * 1.8
