"""Background cache Refresher (§7.2) — functional and timeline."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import partition_policy, replication_policy
from repro.core.refresher import (
    RefreshConfig,
    Refresher,
    simulate_refresh_timeline,
)

N, D = 2000, 8


@pytest.fixture
def cache(platform_a, small_table, skewed_hotness):
    placement = replication_policy(skewed_hotness, 200, 4)
    return MultiGpuEmbeddingCache(platform_a, small_table, placement)


class TestRefreshTrigger:
    def test_triggers_on_improvement(self, cache):
        refresher = Refresher(cache, RefreshConfig(trigger_ratio=1.05))
        assert refresher.should_refresh(current_time=1.0, candidate_time=0.5)

    def test_skips_marginal_improvement(self, cache):
        refresher = Refresher(cache, RefreshConfig(trigger_ratio=1.05))
        assert not refresher.should_refresh(current_time=1.0, candidate_time=0.99)

    def test_skips_zero_candidate(self, cache):
        refresher = Refresher(cache)
        assert not refresher.should_refresh(1.0, 0.0)


class TestFunctionalRefresh:
    def test_refresh_to_new_placement(self, cache, small_table, skewed_hotness, rng):
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=64))
        new_placement = partition_policy(skewed_hotness, 200, 4)
        outcome = refresher.refresh(new_placement)
        assert outcome.triggered
        assert outcome.entries_moved > 0
        # Lookups are exact after the refresh.
        keys = rng.integers(0, N, size=500)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, keys).values, small_table[keys])
        assert cache.placement.replication_factor() == pytest.approx(1.0)

    def test_noop_refresh(self, cache):
        refresher = Refresher(cache)
        outcome = refresher.refresh(cache.placement)
        assert not outcome.triggered
        assert outcome.entries_moved == 0

    def test_lookups_correct_at_every_step(
        self, cache, small_table, skewed_hotness, rng
    ):
        """§7.2's consistency: no lookup may see a dangling slot mid-refresh."""
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        new_placement = partition_policy(skewed_hotness, 200, 4)
        keys = rng.integers(0, N, size=200)
        steps = 0
        for _outcome in refresher.refresh_steps(new_placement):
            for gpu in range(4):
                result = cache.lookup(gpu, keys)
                assert np.array_equal(result.values, small_table[keys])
            steps += 1
        assert steps > 2  # actually exercised interleaving

    def test_capacity_never_exceeded_mid_refresh(
        self, cache, skewed_hotness
    ):
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=16))
        new_placement = partition_policy(skewed_hotness, 200, 4)
        for _ in refresher.refresh_steps(new_placement):
            for gpu in range(4):
                assert cache.store(gpu).arena.used_slots <= 200

    def test_refresh_estimated_duration(self, cache, skewed_hotness):
        config = RefreshConfig(solve_seconds=10.0, entries_per_second=1000.0)
        refresher = Refresher(cache, config)
        outcome = refresher.refresh(partition_policy(skewed_hotness, 200, 4))
        expected = 10.0 + outcome.entries_moved / 1000.0
        assert outcome.estimated_duration == pytest.approx(expected)


class TestRefreshConfigValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            RefreshConfig(update_batch_entries=0)

    def test_rejects_bad_impact(self):
        with pytest.raises(ValueError):
            RefreshConfig(foreground_impact=1.0)

    def test_rejects_bad_trigger(self):
        with pytest.raises(ValueError):
            RefreshConfig(trigger_ratio=0.9)

    def test_rejects_bad_throughput(self):
        with pytest.raises(ValueError):
            RefreshConfig(entries_per_second=0)


class TestTimeline:
    def test_latency_elevated_only_inside_windows(self):
        timeline = simulate_refresh_timeline(
            baseline_latency=2e-3,
            total_duration=200.0,
            refresh_starts=(40.0, 150.0),
            entries_to_move=1_000_000,
            config=RefreshConfig(foreground_impact=0.10),
        )
        assert len(timeline.refresh_windows) == 2
        before = timeline.mean_latency(0, 39)
        during = timeline.mean_latency(41, 45)
        after = timeline.mean_latency(70, 100)
        assert before == pytest.approx(2e-3)
        assert during == pytest.approx(2.2e-3)
        assert after == pytest.approx(2e-3)

    def test_impact_bounded_at_config(self):
        timeline = simulate_refresh_timeline(
            2e-3, 100.0, (10.0,), 500_000, RefreshConfig(foreground_impact=0.08)
        )
        assert timeline.latencies.max() <= 2e-3 * 1.08 + 1e-12

    def test_window_duration_scales_with_entries(self):
        cfg = RefreshConfig(solve_seconds=5.0, entries_per_second=100_000)
        t = simulate_refresh_timeline(1e-3, 100.0, (0.0,), 1_000_000, cfg)
        start, stop = t.refresh_windows[0]
        assert stop - start == pytest.approx(5.0 + 10.0)

    def test_window_clamped_to_duration(self):
        t = simulate_refresh_timeline(1e-3, 50.0, (45.0,), 10_000_000)
        assert t.refresh_windows[0][1] == 50.0
