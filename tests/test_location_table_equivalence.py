"""Scalar-vs-vectorized equivalence for the location hashtable.

The batch operations (`insert_batch`, `lookup_batch`, `remove_batch`) run
bulk numpy probing rounds; the scalar ops are thin wrappers.  These tests
drive both against each other — and against a plain dict model — on
randomized workloads (duplicate keys, removes with backward-shift
compaction, grows, corrupt slots, absent keys) so the vectorized probe
engine cannot drift from the hashtable semantics §4 specifies.

Also holds the regression test for the grow-on-overwrite bug: inserting
an already-present key used to count toward the load factor and could
trigger a spurious grow; overwrites must be capacity-neutral.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.location_table import (
    CorruptEntryError,
    LocationTable,
    pack_location,
)
from repro.hardware.platform import HOST

SEEDS = [0, 1, 7, 42, 1234]


def _random_workload(rng, n_ops: int, key_space: int, num_sources: int = 8):
    keys = rng.integers(0, key_space, size=n_ops)
    sources = rng.integers(0, num_sources, size=n_ops)
    offsets = rng.integers(0, 10_000, size=n_ops)
    return keys, sources, offsets


def _dict_model(keys, sources, offsets) -> dict[int, tuple[int, int]]:
    model: dict[int, tuple[int, int]] = {}
    for k, s, o in zip(keys, sources, offsets):
        model[int(k)] = (int(s), int(o))
    return model


def _assert_matches_model(table: LocationTable, model: dict, key_space: int):
    """The table must agree with the dict model on every possible key."""
    assert len(table) == len(model)
    probe = np.arange(key_space, dtype=np.int64)
    sources, offsets = table.lookup_batch(probe)
    for k in range(key_space):
        want = model.get(k, (HOST, k))  # miss ⇒ host, addressed by key
        assert (int(sources[k]), int(offsets[k])) == want, f"key {k}"
        assert table.get(k) == (model[k] if k in model else None)


@pytest.mark.parametrize("seed", SEEDS)
def test_insert_batch_matches_scalar_inserts(seed):
    rng = np.random.default_rng(seed)
    keys, sources, offsets = _random_workload(rng, 500, key_space=300)
    scalar = LocationTable(expected_entries=4)
    batch = LocationTable(expected_entries=4)
    for k, s, o in zip(keys, sources, offsets):
        scalar.insert(int(k), int(s), int(o))
    batch.insert_batch(keys, sources, offsets)
    model = _dict_model(keys, sources, offsets)  # duplicate keys: last wins
    _assert_matches_model(scalar, model, 300)
    _assert_matches_model(batch, model, 300)
    assert scalar.capacity == batch.capacity


@pytest.mark.parametrize("seed", SEEDS)
def test_lookup_batch_matches_scalar_get(seed):
    rng = np.random.default_rng(seed)
    keys, sources, offsets = _random_workload(rng, 400, key_space=1_000)
    table = LocationTable(expected_entries=4)
    table.insert_batch(keys, sources, offsets)
    # Probe a mix of present and absent keys, with repeats.
    probe = rng.integers(0, 2_000, size=600)
    got_src, got_off = table.lookup_batch(probe)
    for i, k in enumerate(probe):
        want = table.get(int(k)) or (HOST, int(k))
        assert (int(got_src[i]), int(got_off[i])) == want


@pytest.mark.parametrize("seed", SEEDS)
def test_remove_batch_matches_scalar_removes(seed):
    rng = np.random.default_rng(seed)
    keys, sources, offsets = _random_workload(rng, 600, key_space=400)
    a = LocationTable(expected_entries=4)
    b = LocationTable(expected_entries=4)
    a.insert_batch(keys, sources, offsets)
    b.insert_batch(keys, sources, offsets)
    doomed = rng.integers(0, 500, size=250)  # some absent
    removed_scalar = sum(a.remove(int(k)) for k in doomed)
    removed_batch = b.remove_batch(doomed)
    assert removed_scalar == removed_batch
    model = _dict_model(keys, sources, offsets)
    for k in doomed:
        model.pop(int(k), None)
    _assert_matches_model(a, model, 400)
    _assert_matches_model(b, model, 400)
    # Backward-shift compaction: surviving chains stay reachable with no
    # tombstones, so probe lengths stay bounded by the live cluster sizes.
    assert a.max_probe_length() < a.capacity
    assert b.max_probe_length() < b.capacity


@pytest.mark.parametrize("seed", SEEDS)
def test_grow_equivalence(seed):
    """Incremental scalar grows and one bulk reserve land identically."""
    rng = np.random.default_rng(seed)
    n = 3_000  # forces multiple doublings from the initial 8 slots
    keys = rng.permutation(n).astype(np.int64)
    sources = rng.integers(0, 4, size=n)
    offsets = np.arange(n)
    scalar = LocationTable(expected_entries=1)
    batch = LocationTable(expected_entries=1)
    for k, s, o in zip(keys, sources, offsets):
        scalar.insert(int(k), int(s), int(o))
    batch.insert_batch(keys, sources, offsets)
    assert len(scalar) == len(batch) == n
    assert scalar.capacity == batch.capacity
    assert scalar.load_factor <= 0.7 and batch.load_factor <= 0.7
    got_src, got_off = batch.lookup_batch(keys)
    want_src, want_off = scalar.lookup_batch(keys)
    np.testing.assert_array_equal(got_src, want_src)
    np.testing.assert_array_equal(got_off, want_off)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_random_op_sequences_match_dict_semantics(seed):
    """Interleaved batch inserts/removes/lookups mirror a plain dict."""
    rng = np.random.default_rng(seed)
    key_space = 200
    table = LocationTable(expected_entries=4)
    model: dict[int, tuple[int, int]] = {}
    for _ in range(30):
        op = rng.integers(0, 3)
        if op == 0:
            keys, sources, offsets = _random_workload(
                rng, int(rng.integers(1, 60)), key_space
            )
            table.insert_batch(keys, sources, offsets)
            model.update(_dict_model(keys, sources, offsets))
        elif op == 1:
            doomed = rng.integers(0, key_space, size=int(rng.integers(1, 40)))
            removed = table.remove_batch(doomed)
            expected = 0
            for k in doomed:
                if model.pop(int(k), None) is not None:
                    expected += 1
            assert removed == expected
        else:
            probe = rng.integers(0, key_space, size=50)
            sources, offsets = table.lookup_batch(probe)
            for i, k in enumerate(probe):
                want = model.get(int(k), (HOST, int(k)))
                assert (int(sources[i]), int(offsets[i])) == want
    _assert_matches_model(table, model, key_space)


def test_corrupt_slots_scalar_and_batch_agree():
    table = LocationTable(expected_entries=16, num_sources=4, max_offset=100)
    for k in range(12):
        table.insert(k, k % 4, k)
    table.corrupt_slot(3, 9, 5)  # out-of-range source
    table.corrupt_slot(7, 2, 999)  # out-of-range offset
    for bad in (3, 7):
        with pytest.raises(CorruptEntryError):
            table.get(bad)
    # "raise" surfaces the first corrupt key in batch order.
    with pytest.raises(CorruptEntryError) as exc:
        table.lookup_batch(np.asarray([0, 7, 3, 1]))
    assert exc.value.key == 7
    # "host" reroutes exactly the poisoned keys; healthy keys unaffected.
    sources, offsets = table.lookup_batch(
        np.arange(12, dtype=np.int64), on_corrupt="host"
    )
    for k in range(12):
        if k in (3, 7):
            assert int(sources[k]) == HOST and int(offsets[k]) == k
        else:
            assert (int(sources[k]), int(offsets[k])) == (k % 4, k)


def test_absent_keys_route_to_host_addressed_by_key():
    table = LocationTable(expected_entries=8)
    table.insert(5, 2, 77)
    probe = np.asarray([0, 5, 10**9], dtype=np.int64)
    sources, offsets = table.lookup_batch(probe)
    assert list(sources) == [HOST, 2, HOST]
    assert list(offsets) == [0, 77, 10**9]
    assert table.get(0) is None
    assert table.get(5) == (2, 77)


# ----------------------------------------------------------------------
# Regression: overwriting an existing key must never trigger a grow
# ----------------------------------------------------------------------
def test_overwrite_does_not_grow():
    table = LocationTable(expected_entries=8, max_load=0.7)
    # Fill to exactly the load limit: 11/16 < 0.7, one more would grow.
    for k in range(11):
        table.insert(k, 0, k)
    capacity = table.capacity
    assert table.load_factor <= 0.7
    for _ in range(50):  # repeated overwrites used to inflate the load count
        for k in range(11):
            table.insert(k, 1, k + 100)
    assert table.capacity == capacity, "overwrites must be capacity-neutral"
    assert len(table) == 11
    assert table.get(4) == (1, 104)


def test_batch_overwrite_grows_only_for_new_keys():
    table = LocationTable(expected_entries=8, max_load=0.7)
    keys = np.arange(11)
    table.insert_batch(keys, np.zeros(11, dtype=np.int64), keys)
    capacity = table.capacity
    # A batch that is pure overwrite (with duplicates) must not grow...
    table.insert_batch(
        np.concatenate([keys, keys]),
        np.ones(22, dtype=np.int64),
        np.concatenate([keys, keys]) + 100,
    )
    assert table.capacity == capacity
    assert len(table) == 11
    # ...while genuinely new keys still do.
    table.insert_batch(
        np.asarray([50]), np.asarray([2]), np.asarray([1])
    )
    assert table.capacity == 2 * capacity
    assert table.get(50) == (2, 1)
    assert table.get(10) == (1, 110)
