"""Per-entry content checksums: the anti-entropy scrubber's ground truth.

Every value row — in the host table and in each GPU store's slot arena —
gets one ``uint64`` checksum over its raw bytes.  The scrubber
(:mod:`repro.repair.scrub`) cross-checks a GPU slot's *recomputed*
checksum against the host table's, so any silent byte flip between fill
time and scrub time is caught without comparing full rows.

The checksum is a positional weighted byte sum mod ``2**64``: byte ``j``
is weighted by ``MULT**(j+1)`` for an odd multiplier, so the weights are
all odd (hence invertible mod ``2**64``) and **any single-byte change is
guaranteed to change the checksum** — the property bit-rot detection
actually needs.  Multi-byte collisions are possible but need adversarial
alignment, not random flips.  Everything is vectorized: checksumming a
whole store is one ``(slots, bytes) @ weights`` pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["entry_checksum", "row_checksums"]

#: Odd multiplier (2**64 / golden ratio): every positional weight
#: ``_MULT**(j+1)`` stays odd, so per-byte deltas never vanish mod 2**64.
_MULT = np.uint64(0x9E3779B97F4A7C15)

#: byte-width -> weight vector, grown on demand and sliced per call.
_weight_cache: dict[int, np.ndarray] = {}


def _weights(num_bytes: int) -> np.ndarray:
    w = _weight_cache.get(num_bytes)
    if w is None:
        with np.errstate(over="ignore"):
            w = np.full(num_bytes, _MULT, dtype=np.uint64)
            np.cumprod(w, out=w)  # wraps mod 2**64 (C semantics)
        _weight_cache[num_bytes] = w
    return w


def row_checksums(values: np.ndarray) -> np.ndarray:
    """One ``uint64`` checksum per row of a 2-D value array.

    Rows are checksummed over their raw bytes (dtype-agnostic), so the
    same function covers the float32 host table and the GPU stores'
    slot arenas.
    """
    arr = np.ascontiguousarray(values)
    if arr.ndim != 2:
        raise ValueError("row checksums need a 2-D (rows x dim) array")
    n = arr.shape[0]
    if n == 0 or arr.shape[1] == 0:
        return np.zeros(n, dtype=np.uint64)
    raw = arr.view(np.uint8).reshape(n, -1)
    w = _weights(raw.shape[1])
    with np.errstate(over="ignore"):
        return (raw.astype(np.uint64) * w).sum(axis=1, dtype=np.uint64)


def entry_checksum(values: np.ndarray) -> np.uint64:
    """Checksum of one value row (the scalar insert-path form)."""
    return row_checksums(np.ascontiguousarray(values)[None, :])[0]
