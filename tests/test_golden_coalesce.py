"""Golden regression for the coalescing layer and the off-mode anchor.

``tests/golden/coalesce_golden.json`` pins the micro-batcher's flush
schedule, ``serve_batch``'s per-member scattering, and full soak reports
in both batching modes.  The ``soak_off`` section is the equivalence
claim of PR 5: with ``--batching off`` the serving runtime must keep
producing byte-for-byte the report the pre-coalescing code produced
(the new report fields are constants in off mode).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

pytestmark = pytest.mark.serve


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_coalesce_golden", GOLDEN_DIR / "generate_coalesce_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((GOLDEN_DIR / "coalesce_golden.json").read_text())


@pytest.fixture(scope="module")
def replayed() -> dict:
    # Round-trip through JSON so float representation matches the fixture.
    return json.loads(json.dumps(_load_generator().build(), sort_keys=True))


@pytest.mark.parametrize(
    "section",
    [
        "serve_batch",
        "batcher_schedule",
        "expiry_accounting",
        "soak_off",
        "soak_coalesce",
    ],
)
def test_coalescing_matches_golden(golden, replayed, section):
    assert replayed[section] == golden[section], (
        f"{section} diverged from the pinned coalescing fixture"
    )


def test_off_mode_is_the_pre_coalescing_anchor(golden):
    """Off mode must look exactly like the runtime before this layer."""
    off = golden["soak_off"]
    assert off["coalesced_batches"] == 0
    assert off["mean_batch_size"] == 0.0
    assert off["dedup_ratio"] == 1.0
    assert off["workers"] == 1
    assert off["ok"]


def test_fixture_exercises_the_interesting_paths(golden):
    """The pin covers real coalescing, not degenerate batches."""
    on = golden["soak_coalesce"]
    assert on["coalesced_batches"] > 0
    assert on["dedup_ratio"] > 1.0
    # serve_batch sections include a genuinely shared extraction...
    sizes = [
        rec["batch_size"]
        for plat in golden["serve_batch"].values()
        for rec in plat
    ]
    assert max(sizes) >= 3
    # ...and every batched member shares one completion time.
    for plat in golden["serve_batch"].values():
        for rec in plat:
            for resp in rec["responses"]:
                assert resp["completed_at"] == rec["completed_at"]
    # The schedule pin covers a full-batch immediate flush (pile-up) and
    # an SLO early flush tighter than the linger target.
    schedule = golden["batcher_schedule"]
    assert schedule[1]["flush_at"] == 0.25  # deadline 0.5 - estimate 0.25
    assert schedule[2]["flush_at"] == 0.15  # 3 queued = max_batch: no linger
    assert schedule[-1]["take_ids"] == [0, 1, 2]  # FIFO, capped at max_batch


def test_expired_members_not_counted_in_batch_size(golden):
    """Pin of the corrected accounting: an expired-on-arrival member is
    dropped before extraction and must not inflate batch_size (and hence
    soak mean_batch_size / dedup_ratio)."""
    rec = golden["expiry_accounting"]
    assert rec["statuses"] == ["expired", "ok"]
    assert rec["batch_size"] == 1
