"""Public embedding-layer facade (§4, §7.1).

:class:`UGacheEmbeddingLayer` is the object applications drop in place of
their framework's embedding layer.  Construction runs the full UGache
pipeline — hotness → blocking → MILP solve → placement realization → cache
fill — and ``lookup`` serves batches through the factored Extractor.

The framework wrappers in :mod:`repro.framework` adapt this class to
PyTorch-style and Keras-style calling conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.evaluate import HitRates, evaluate_placement, hit_rates
from repro.core.extractor import FactoredExtractor
from repro.core.policy import Placement
from repro.core.refresher import Refresher, RefreshConfig, RefreshOutcome
from repro.core.solver import SolvedPolicy, SolverConfig, solve_policy
from repro.hardware.platform import Platform
from repro.sim.engine import BatchReport
from repro.sim.mechanisms import Mechanism


@dataclass(frozen=True)
class EmbeddingLayerConfig:
    """Construction options for :class:`UGacheEmbeddingLayer`.

    Attributes:
        cache_ratio: per-GPU cache capacity as a fraction of all entries
            (the paper's sweep axis); mutually exclusive with
            ``capacity_entries``.
        capacity_entries: explicit per-GPU entry budget.
        solver: solver knobs (§6.3 blocking defaults).
        refresh: refresher knobs (§7.2 defaults).
    """

    cache_ratio: float | None = None
    capacity_entries: int | None = None
    solver: SolverConfig = SolverConfig()
    refresh: RefreshConfig = RefreshConfig()

    def resolve_capacity(self, num_entries: int) -> int:
        if (self.cache_ratio is None) == (self.capacity_entries is None):
            raise ValueError("set exactly one of cache_ratio / capacity_entries")
        if self.capacity_entries is not None:
            if self.capacity_entries < 0:
                raise ValueError("capacity must be non-negative")
            return self.capacity_entries
        if not 0 <= self.cache_ratio <= 1:
            raise ValueError("cache_ratio must be in [0, 1]")
        return int(self.cache_ratio * num_entries)


class UGacheEmbeddingLayer:
    """A unified multi-GPU embedding cache behind a lookup() interface."""

    def __init__(
        self,
        platform: Platform,
        table: np.ndarray,
        hotness: np.ndarray,
        config: EmbeddingLayerConfig,
    ) -> None:
        if table.ndim != 2:
            raise ValueError("embedding table must be (entries × dim)")
        if len(hotness) != table.shape[0]:
            raise ValueError("hotness must cover every table entry")
        self._platform = platform
        self._table = table
        self._hotness = np.asarray(hotness, dtype=np.float64)
        self._config = config
        capacity = config.resolve_capacity(table.shape[0])
        entry_bytes = table.shape[1] * table.itemsize

        self._policy: SolvedPolicy = solve_policy(
            platform,
            self._hotness,
            capacity,
            entry_bytes,
            config=config.solver,
        )
        placement = self._policy.realize()
        self._cache = MultiGpuEmbeddingCache(
            platform, table, placement, capacity_entries=capacity
        )
        self._extractor = FactoredExtractor(self._cache)
        self._refresher = Refresher(self._cache, config.refresh)
        self._capacity = capacity
        self._entry_bytes = entry_bytes

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------
    def lookup(self, gpu: int, keys: np.ndarray) -> np.ndarray:
        """Gather embeddings for one GPU's key batch (values only)."""
        return self._cache.lookup(gpu, keys).values

    def extract(
        self, keys_per_gpu: list[np.ndarray]
    ) -> tuple[list[np.ndarray], BatchReport]:
        """Data-parallel batch lookup with simulated factored timing."""
        return self._extractor.extract(keys_per_gpu)

    # ------------------------------------------------------------------
    # Introspection & maintenance
    # ------------------------------------------------------------------
    @property
    def platform(self) -> Platform:
        return self._platform

    @property
    def cache(self) -> MultiGpuEmbeddingCache:
        return self._cache

    @property
    def policy(self) -> SolvedPolicy:
        return self._policy

    @property
    def placement(self) -> Placement:
        return self._cache.placement

    @property
    def capacity_entries(self) -> int:
        return self._capacity

    def hit_rates(self) -> HitRates:
        """Expected local/remote/host access split under current hotness."""
        return hit_rates(self._platform, self._cache.placement, self._hotness)

    def expected_report(self, mechanism: Mechanism = Mechanism.FACTORED) -> BatchReport:
        """Expected per-iteration extraction report under current hotness."""
        return evaluate_placement(
            self._platform,
            self._cache.placement,
            self._hotness,
            self._entry_bytes,
            mechanism=mechanism,
        )

    def refresh(self, new_hotness: np.ndarray) -> RefreshOutcome:
        """Re-solve under drifted hotness and apply the diff if worthwhile."""
        new_hotness = np.asarray(new_hotness, dtype=np.float64)
        if new_hotness.shape != self._hotness.shape:
            raise ValueError("new hotness must cover the same entries")
        candidate = solve_policy(
            self._platform,
            new_hotness,
            self._capacity,
            self._entry_bytes,
            config=self._config.solver,
        )
        current_time = evaluate_placement(
            self._platform,
            self._cache.placement,
            new_hotness,
            self._entry_bytes,
        ).time
        if not self._refresher.should_refresh(current_time, candidate.est_time):
            return RefreshOutcome(triggered=False)
        outcome = self._refresher.refresh(candidate.realize())
        self._hotness = new_hotness
        self._policy = candidate
        return outcome
