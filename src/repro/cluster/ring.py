"""Consistent-hash ring: keyspace partitioning with R-way replication.

The ring is the cluster's default placement mode.  Each node projects
``vnodes_per_node`` virtual nodes onto a 64-bit ring; a key is owned by
the first ``replication`` *distinct* nodes encountered clockwise from its
hash.  That gives the two properties the cluster tier needs:

* **balance** — virtual nodes smooth out the per-node keyspace share, so
  no node owns a pathological slice;
* **minimal disruption** — removing a node moves only the keys it owned
  (they slide to their next clockwise successor); every other key keeps
  its owner set, so a node death never triggers a full reshuffle.

Everything is vectorized: ``owners_for`` resolves a whole batch of keys
with one hash, one ``searchsorted``, and one table gather, mirroring the
bulk-probing idiom of :class:`~repro.core.location_table.LocationTable`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("cluster.ring")

__all__ = ["HashRing", "hash_keys"]


def hash_keys(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """SplitMix64 finalizer over int keys: uniform uint64 ring positions.

    Deterministic, seedable, and vectorized — the same key always lands
    on the same ring position, so placement never depends on insertion
    order or process state.
    """
    x = np.asarray(keys, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15) * np.uint64(2 * seed + 1)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


class HashRing:
    """R-way replicated consistent hashing over ``num_nodes`` nodes.

    The constructor precomputes, for every virtual-node slot, the first
    ``replication`` distinct owner nodes clockwise — so resolving a batch
    of keys is a hash + ``searchsorted`` + table row gather, with no
    per-key python loop.
    """

    def __init__(
        self,
        num_nodes: int,
        replication: int = 1,
        vnodes_per_node: int = 64,
        seed: int = 0,
        node_ids: list[int] | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if not 1 <= replication <= num_nodes:
            raise ValueError(
                f"replication must be in [1, {num_nodes}], got {replication}"
            )
        if vnodes_per_node < 1:
            raise ValueError("need at least one virtual node per node")
        self.num_nodes = num_nodes
        self.replication = replication
        self.vnodes_per_node = vnodes_per_node
        self.seed = seed
        self.node_ids = (
            list(node_ids) if node_ids is not None else list(range(num_nodes))
        )
        if len(self.node_ids) != num_nodes:
            raise ValueError(f"need {num_nodes} node ids, got {len(self.node_ids)}")
        if len(set(self.node_ids)) != num_nodes:
            raise ValueError("node ids must be distinct")

        # Each node's virtual positions: hash (node_id, replica_index)
        # pairs so adding/removing a node never moves another node's
        # virtual points.
        owners = np.repeat(np.asarray(self.node_ids, dtype=np.int64), vnodes_per_node)
        salt = np.tile(np.arange(vnodes_per_node, dtype=np.int64), num_nodes)
        positions = hash_keys(owners * np.int64(1_000_003) + salt, seed=seed)
        order = np.argsort(positions, kind="stable")
        self._positions = positions[order]
        self._slot_owner = owners[order]
        # Successor table: slot -> first R distinct nodes clockwise.
        self._successors = self._build_successors()

    def _build_successors(self) -> np.ndarray:
        slots = len(self._slot_owner)
        R = self.replication
        table = np.empty((slots, R), dtype=np.int64)
        for s in range(slots):
            seen: list[int] = []
            i = s
            while len(seen) < R:
                owner = int(self._slot_owner[i % slots])
                if owner not in seen:
                    seen.append(owner)
                i += 1
            table[s] = seen
        return table

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def slot_of(self, keys: np.ndarray) -> np.ndarray:
        """Ring slot (virtual-node index) owning each key's position."""
        h = hash_keys(np.ascontiguousarray(keys, dtype=np.int64), seed=self.seed)
        idx = np.searchsorted(self._positions, h, side="left")
        return idx % len(self._positions)

    def owners_for(self, keys: np.ndarray) -> np.ndarray:
        """``(len(keys), replication)`` owner nodes, primary first."""
        return self._successors[self.slot_of(keys)]

    def primary_for(self, keys: np.ndarray) -> np.ndarray:
        return self.owners_for(keys)[:, 0]

    # ------------------------------------------------------------------
    # What-if analysis
    # ------------------------------------------------------------------
    def without(self, node: int) -> "HashRing":
        """The ring after ``node`` leaves (its keys slide to successors)."""
        if node not in self.node_ids:
            raise ValueError(f"node {node} is not on the ring")
        if self.num_nodes == 1:
            raise ValueError("cannot remove the last node")
        remaining = [n for n in self.node_ids if n != node]
        return HashRing(
            num_nodes=len(remaining),
            replication=min(self.replication, len(remaining)),
            vnodes_per_node=self.vnodes_per_node,
            seed=self.seed,
            node_ids=remaining,
        )

    def moved_primaries(self, node: int, num_entries: int) -> int:
        """How many of ``num_entries`` keys change primary if ``node`` dies.

        Consistent hashing's contract: exactly the keys whose primary was
        ``node`` move; everything else stays put.
        """
        entries = np.arange(num_entries, dtype=np.int64)
        before = self.primary_for(entries)
        after = self.without(node).primary_for(entries)
        return int((before != after).sum())

    def share_of(self, num_entries: int) -> dict[int, float]:
        """Fraction of the keyspace each node primarily owns."""
        entries = np.arange(num_entries, dtype=np.int64)
        primary = self.primary_for(entries)
        return {
            int(n): float((primary == n).sum()) / num_entries
            for n in self.node_ids
        }
