"""Dense-layer cost models for DLR inference (DLRM and DCN, §8.1).

DLRM runs six MLP layers over the concatenated embeddings plus dense
features [36, 43]; DCN adds a Cross layer [41].  As in the GNN case the
paper holds the dense side fixed and varies embedding extraction, so we
charge FLOP-derived per-iteration times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import Platform

_GPU_THROUGHPUT = {
    "V100-16GB": 8.0e12,
    "V100-32GB": 8.0e12,
    "A100-80GB": 16.0e12,
}

#: Kernel-launch / framework overhead per inference iteration, seconds.
_ITERATION_OVERHEAD = 1.0e-3


@dataclass(frozen=True)
class DlrModelSpec:
    """Compute shape of one DLR model.

    ``mlp_layers``/``mlp_width`` describe the top MLP; ``cross_layers``
    the DCN cross network (0 for DLRM).
    """

    name: str
    mlp_layers: int = 6
    mlp_width: int = 512
    cross_layers: int = 0

    def flops_per_request(self, num_tables: int, dim: int) -> float:
        """Inference FLOPs for one sample."""
        feature_width = num_tables * dim
        flops = 2.0 * feature_width * self.mlp_width  # input projection
        flops += 2.0 * self.mlp_width * self.mlp_width * max(self.mlp_layers - 1, 0)
        flops += 4.0 * feature_width * self.cross_layers  # cross layers
        return flops


DLRM = DlrModelSpec(name="dlrm", mlp_layers=6, mlp_width=512, cross_layers=0)
DCN = DlrModelSpec(name="dcn", mlp_layers=6, mlp_width=512, cross_layers=3)


def model_by_name(name: str) -> DlrModelSpec:
    """Look up a DLR model spec by name (``dlrm`` or ``dcn``)."""
    if name == "dlrm":
        return DLRM
    if name == "dcn":
        return DCN
    raise ValueError(f"unknown DLR model {name!r}")


def dense_time_per_iteration(
    platform: Platform,
    model: DlrModelSpec,
    batch_size: int,
    num_tables: int,
    dim: int,
) -> float:
    """Seconds of dense inference compute per iteration on one GPU."""
    throughput = _GPU_THROUGHPUT.get(platform.gpu.name)
    if throughput is None:
        raise ValueError(f"no throughput calibration for {platform.gpu.name}")
    flops = batch_size * model.flops_per_request(num_tables, dim)
    return flops / throughput + _ITERATION_OVERHEAD
