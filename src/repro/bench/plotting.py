"""ASCII charts for benchmark output (no plotting deps offline).

Two chart types cover the paper's figure styles:

* :func:`line_chart` — multi-series sweep plots (Figures 2, 12, 14, 15:
  metric vs cache ratio);
* :func:`bar_chart` — grouped comparison bars (Figures 4, 10, 11: one bar
  per system).

Benchmarks embed these under their tables so ``bench_output.txt`` shows
the *shape* of each figure, not just its numbers.
"""

from __future__ import annotations

import numpy as np

#: Marker per series, cycled.
_MARKERS = "ox+*#@%&"


def line_chart(
    x: list[float],
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot several y-series over shared x values on a character grid."""
    if not x or not series:
        return "(no data)"
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length does not match x")
    xs = np.asarray(x, dtype=np.float64)
    all_y = np.concatenate(
        [np.asarray([v for v in ys if v is not None], dtype=np.float64)
         for ys in series.values()]
    )
    if all_y.size == 0:
        return "(no data)"
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(xs, ys):
            if yv is None:
                continue
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if y_label:
        lines.append(f"{y_label} (top={_fmt(y_hi)}, bottom={_fmt(y_lo)})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    footer = f" {x_label}: {_fmt(x_lo)} .. {_fmt(x_hi)}" if x_label else ""
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{footer}   {legend}".rstrip())
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float | None],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labelled value (None renders as ✗)."""
    if not values:
        return "(no data)"
    present = [v for v in values.values() if v is not None]
    if not present:
        return "(no data)"
    peak = max(present)
    label_w = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        if value is None:
            lines.append(f"{name:>{label_w}} | ✗")
            continue
        filled = int(round(value / peak * width)) if peak > 0 else 0
        lines.append(
            f"{name:>{label_w}} |{'█' * filled}{' ' * (width - filled)} "
            f"{_fmt(value)}{unit}"
        )
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")
