"""Scaled stand-ins for the paper's GNN datasets (Table 3).

The originals (OGB-Papers100M, Com-Friendster, OGB-MAG240M) are 50-350 GB
and cannot ship here; each stand-in is a synthetic power-law graph scaled
down ~500-1000× that preserves the properties the evaluation exercises:

* the *degree skew* that drives embedding-access skew (PA/MAG high, CF
  low — Figure 14 contrasts exactly this);
* the embedding dim/dtype (MAG is float16 at dim 768, the rest float32);
* the relative embedding-volume-to-GPU-memory ratio, via ``scale``:
  benchmarks shrink GPU cache budgets by the same factor, so cache ratios
  and who-fits-where match the paper's testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.gnn.graph import CSRGraph, power_law_graph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class GnnDatasetSpec:
    """Declarative description of one GNN dataset stand-in."""

    key: str
    paper_name: str
    num_nodes: int
    #: undirected edges to sample (CSR stores both directions)
    num_edges: int
    dim: int
    dtype: str
    degree_alpha: float
    train_fraction: float
    #: linear scale factor vs the paper's dataset (nodes ratio)
    scale: float
    paper_volume_gb: float
    #: Table 3's Volume_G (topology) in the original dataset, GB
    paper_topology_gb: float = 13.0

    @property
    def dtype_bytes(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def entry_bytes(self) -> int:
        return self.dim * self.dtype_bytes

    @property
    def embedding_bytes(self) -> int:
        """Volume_E of the stand-in (scaled)."""
        return self.num_nodes * self.entry_bytes

    @property
    def topology_budget_bytes(self) -> int:
        """GPU memory the topology would occupy, at the paper's
        topology-to-embedding proportion (Table 3's Volume_G/Volume_E).

        The synthetic stand-in graphs are denser than a faithful scale-down,
        so GNNLab's sampler-offload capacity bonus uses the paper's ratio
        rather than the stand-in's raw CSR size.
        """
        return int(self.embedding_bytes * self.paper_topology_gb / self.paper_volume_gb)


@dataclass(frozen=True)
class GnnDataset:
    """A materialized stand-in: graph + train split (+ lazy table)."""

    spec: GnnDatasetSpec
    graph: CSRGraph
    train_ids: np.ndarray

    def hotness_degree(self) -> np.ndarray:
        degs = self.graph.degrees().astype(np.float64)
        return degs / max(degs.sum(), 1.0)

    def materialize_table(self, seed: int = 7, dim: int | None = None) -> np.ndarray:
        """Generate the embedding table (only for functional examples)."""
        rng = make_rng(seed)
        dim = dim or self.spec.dim
        return rng.standard_normal((self.graph.num_nodes, dim)).astype(self.spec.dtype)


#: The three GNN datasets of Table 3, scaled.  ``num_edges`` is the count
#: of sampled undirected edges; CSR holds 2× that.
GNN_SPECS: dict[str, GnnDatasetSpec] = {
    "pa": GnnDatasetSpec(
        key="pa",
        paper_name="OGB-Papers100M",
        num_nodes=111_000,
        num_edges=3_200_000,
        dim=128,
        dtype="float32",
        degree_alpha=1.20,
        train_fraction=0.15,
        scale=111_000 / 111_000_000,
        paper_volume_gb=53.0,
        paper_topology_gb=12.8,
    ),
    "cf": GnnDatasetSpec(
        key="cf",
        paper_name="Com-Friendster",
        num_nodes=131_000,
        num_edges=3_600_000,
        dim=256,
        dtype="float32",
        degree_alpha=0.55,
        train_fraction=0.15,
        scale=131_000 / 65_600_000,
        paper_volume_gb=62.0,
        paper_topology_gb=14.0,
    ),
    "mag": GnnDatasetSpec(
        key="mag",
        paper_name="OGB-MAG240M",
        num_nodes=232_000,
        num_edges=3_200_000,
        dim=768,
        dtype="float16",
        degree_alpha=1.00,
        train_fraction=0.05,
        scale=232_000 / 232_000_000,
        paper_volume_gb=349.0,
        paper_topology_gb=13.8,
    ),
}


@lru_cache(maxsize=8)
def build_gnn_dataset(key: str, seed: int = 0) -> GnnDataset:
    """Generate (and memoize) one stand-in dataset."""
    spec = GNN_SPECS.get(key)
    if spec is None:
        raise KeyError(f"unknown GNN dataset {key!r}; have {sorted(GNN_SPECS)}")
    graph = power_law_graph(
        num_nodes=spec.num_nodes,
        num_edges=spec.num_edges,
        degree_alpha=spec.degree_alpha,
        seed=seed,
        symmetric=True,
    )
    rng = make_rng(seed + 1)
    train_count = max(1, int(spec.train_fraction * spec.num_nodes))
    train_ids = rng.choice(spec.num_nodes, size=train_count, replace=False)
    return GnnDataset(spec=spec, graph=graph, train_ids=np.sort(train_ids))
