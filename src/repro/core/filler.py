"""Filler: materialize a placement into per-GPU cache storage (§4).

The Filler copies the chosen embedding entries from the host-resident table
into each GPU's slot arena and produces the offset maps the Extractor's
hashtable needs (``<GPU_i, Offset>``).  The Refresher reuses the diff
helpers to evict/insert incrementally without a full refill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.checksum import entry_checksum, row_checksums
from repro.core.policy import Placement
from repro.hardware.memory import SlotArena


@dataclass
class GpuCacheStore:
    """One GPU's cache content: a slot arena plus the entry→slot map."""

    gpu: int
    arena: SlotArena
    #: dense storage, shape (num_slots, dim)
    data: np.ndarray
    #: entry id → slot offset, -1 if not cached
    offset_of: np.ndarray
    #: per-slot content checksum, maintained at fill/insert time (the
    #: anti-entropy scrubber's record of what the slot *should* hold);
    #: free slots sit at 0.
    checksums: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.checksums is None:
            self.checksums = np.zeros(len(self.data), dtype=np.uint64)

    def cached_entries(self) -> np.ndarray:
        return np.flatnonzero(self.offset_of >= 0)

    def insert(self, entry: int, values: np.ndarray) -> int:
        """Cache one entry; returns its slot offset."""
        if self.offset_of[entry] >= 0:
            raise ValueError(f"entry {entry} already cached on GPU {self.gpu}")
        slot = self.arena.allocate()
        self.data[slot] = values
        self.checksums[slot] = entry_checksum(values)
        self.offset_of[entry] = slot
        return slot

    def evict(self, entry: int) -> None:
        """Drop one entry, freeing its slot."""
        slot = int(self.offset_of[entry])
        if slot < 0:
            raise ValueError(f"entry {entry} not cached on GPU {self.gpu}")
        self.arena.free(slot)
        self.checksums[slot] = 0
        self.offset_of[entry] = -1

    def read(self, entries: np.ndarray) -> np.ndarray:
        """Gather cached values for ``entries`` (all must be cached)."""
        slots = self.offset_of[entries]
        if (slots < 0).any():
            missing = np.asarray(entries)[slots < 0][:5]
            raise KeyError(f"entries not cached on GPU {self.gpu}: {missing}...")
        return self.data[slots]


def fill_gpu(
    gpu: int,
    table: np.ndarray,
    entry_ids: np.ndarray,
    capacity_entries: int | None = None,
) -> GpuCacheStore:
    """Build one GPU's cache store holding ``entry_ids`` from ``table``."""
    num_entries, dim = table.shape
    capacity = capacity_entries if capacity_entries is not None else len(entry_ids)
    if len(entry_ids) > capacity:
        raise ValueError(
            f"GPU {gpu}: {len(entry_ids)} entries exceed capacity {capacity}"
        )
    slot_bytes = dim * table.itemsize
    arena = SlotArena(capacity * slot_bytes, slot_bytes)
    data = np.zeros((capacity, dim), dtype=table.dtype)
    offset_of = np.full(num_entries, -1, dtype=np.int64)
    checksums = np.zeros(capacity, dtype=np.uint64)
    if len(entry_ids):
        slots = np.asarray(arena.allocate_many(len(entry_ids)))
        data[slots] = table[entry_ids]
        checksums[slots] = row_checksums(table[entry_ids])
        offset_of[entry_ids] = slots
    return GpuCacheStore(
        gpu=gpu, arena=arena, data=data, offset_of=offset_of,
        checksums=checksums,
    )


def fill_all(
    table: np.ndarray,
    placement: Placement,
    capacity_entries: int | None = None,
) -> list[GpuCacheStore]:
    """Fill every GPU's cache according to ``placement``."""
    if placement.num_entries != table.shape[0]:
        raise ValueError("placement and table disagree on the entry universe")
    return [
        fill_gpu(i, table, ids, capacity_entries)
        for i, ids in enumerate(placement.per_gpu)
    ]


@dataclass(frozen=True)
class PlacementDiff:
    """Per-GPU evictions and insertions to move between two placements."""

    evictions: tuple[np.ndarray, ...]
    insertions: tuple[np.ndarray, ...]

    def total_changes(self) -> int:
        return int(
            sum(len(e) for e in self.evictions) + sum(len(a) for a in self.insertions)
        )


def placement_diff(old: Placement, new: Placement) -> PlacementDiff:
    """Entries each GPU must evict / insert to reach ``new`` from ``old``."""
    if old.num_gpus != new.num_gpus or old.num_entries != new.num_entries:
        raise ValueError("placements are not comparable")
    evictions = []
    insertions = []
    for old_ids, new_ids in zip(old.per_gpu, new.per_gpu):
        old_set = np.asarray(old_ids)
        new_set = np.asarray(new_ids)
        evictions.append(np.setdiff1d(old_set, new_set))
        insertions.append(np.setdiff1d(new_set, old_set))
    return PlacementDiff(evictions=tuple(evictions), insertions=tuple(insertions))


def apply_diff_step(
    store: GpuCacheStore,
    table: np.ndarray,
    evict: np.ndarray,
    insert: np.ndarray,
) -> None:
    """Apply one small-batch update on one GPU (evictions before insertions,
    so slots recycle and capacity is never exceeded mid-refresh)."""
    for entry in np.asarray(evict):
        store.evict(int(entry))
    for entry in np.asarray(insert):
        store.insert(int(entry), table[int(entry)])
