"""Backing-tier chains: parsing, waterfall placement, the TierChain's
demotion machinery, cache integration, and single-tier byte-identity."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.solver import SolverConfig, solve_policy
from repro.core.tiers import (
    TierCapacityError,
    TierChain,
    TierIntegrityError,
    assign_backing_tiers,
    tier_capacity_entries,
)
from repro.hardware.platform import (
    GB,
    HOST,
    PRESETS,
    MemoryTier,
    dram_tier,
    gbps,
    parse_capacity,
    parse_tier_spec,
    server_a,
    server_a_tiered,
    server_c_tiered,
    ssd_tier,
    with_tiers,
)
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.tiers


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
def test_parse_capacity_units():
    assert parse_capacity("8GB") == 8 * GB
    assert parse_capacity("1TiB") == 1024**4
    assert parse_capacity("512kb") == 512_000
    assert parse_capacity("0.5GB") == 500_000_000
    with pytest.raises(ValueError):
        parse_capacity("8parsecs")
    with pytest.raises(ValueError):
        parse_capacity("GB")


def test_parse_tier_spec_defaults_and_overrides():
    tiers = parse_tier_spec("dram:8GB,ssd:1TB", pcie_bandwidth=gbps(20))
    assert [t.name for t in tiers] == ["dram", "ssd"]
    assert tiers[0].bandwidth == gbps(20)  # DRAM inherits the PCIe pipe
    assert tiers[0].latency_s == 0.0
    assert tiers[1].capacity_bytes == 1000 * GB
    assert tiers[1].latency_s == pytest.approx(100e-6)
    # kind:capacity:GB/s:lat_us overrides both defaults
    (custom,) = parse_tier_spec("ssd:1GB:12:250")
    assert custom.bandwidth == gbps(12)
    assert custom.latency_s == pytest.approx(250e-6)
    with pytest.raises(ValueError):
        parse_tier_spec("tape:1TB")
    with pytest.raises(ValueError):
        parse_tier_spec("dram")


# ----------------------------------------------------------------------
# Platform presets and helpers
# ----------------------------------------------------------------------
def test_every_classic_preset_is_single_tier():
    for name, factory in PRESETS.items():
        platform = factory()
        assert platform.num_tiers == 1, name
        assert platform.tiers[0].name == "dram"
        assert platform.backing_ids == [HOST]
        assert platform.is_backing(HOST)
        assert not platform.is_backing(0)
        assert platform.tier_latency(HOST) == 0.0


def test_tiered_presets_shape():
    a = server_a_tiered()
    assert [t.name for t in a.tiers] == ["dram", "ssd"]
    assert a.backing_ids == [-1, -2]
    c = server_c_tiered()
    assert [t.name for t in c.tiers] == ["dram", "cxl", "ssd"]
    assert c.is_backing(-3) and not c.is_backing(-4)
    # deeper tiers really are slower per byte
    costs = [c.cost_per_byte(0, s) for s in c.backing_ids]
    assert costs == sorted(costs)


def test_sources_for_matches_pre_tier_order_on_every_preset():
    """Satellite regression: the cost-derived ordering reproduces the
    historical hardcoded ``[dst, *peers, HOST]`` on all classic presets."""
    for name, factory in PRESETS.items():
        platform = factory()
        for dst in range(platform.num_gpus):
            expected = [dst, *platform.topology.peers(dst), HOST]
            assert platform.sources_for(dst) == expected, (name, dst)


def test_sources_for_sorts_backing_chain_by_cost():
    base = server_a()
    # Chain declared out of cost order: ssd (slow) before dram (fast).
    shuffled = with_tiers(
        base,
        (
            ssd_tier(1000 * GB),
            dram_tier(8 * GB, bandwidth=base.pcie_bandwidth),
        ),
    )
    order = shuffled.sources_for(0)
    backing = [s for s in order if shuffled.is_backing(s)]
    assert backing == [-2, -1]  # dram (tier 1 here) straightened first


# ----------------------------------------------------------------------
# Waterfall assignment
# ----------------------------------------------------------------------
def _chain_tiers(cap0: int, cap1: int, entry_bytes: int):
    return (
        MemoryTier("dram", cap0 * entry_bytes, gbps(16)),
        MemoryTier("ssd", cap1 * entry_bytes, gbps(6), latency_s=100e-6),
    )


def test_waterfall_sends_hottest_to_fastest_tier():
    n, eb = 100, 16
    hotness = np.arange(n, dtype=np.float64)  # entry 99 hottest
    home = assign_backing_tiers(_chain_tiers(10, n, eb), n, eb, hotness)
    hottest = np.argsort(-hotness)[:10]
    assert (home[hottest] == -1).all()
    assert (home == -1).sum() == 10
    assert (home == -2).sum() == n - 10


def test_waterfall_without_hotness_is_id_order():
    n, eb = 20, 8
    home = assign_backing_tiers(_chain_tiers(5, n, eb), n, eb)
    assert (home[:5] == -1).all() and (home[5:] == -2).all()


def test_waterfall_rejects_undersized_chain():
    n, eb = 50, 8
    with pytest.raises(TierCapacityError):
        assign_backing_tiers(_chain_tiers(10, 20, eb), n, eb)


def test_tier_capacity_entries_bounds():
    t = MemoryTier("dram", 100, gbps(16))
    assert tier_capacity_entries(t, 8, 1000) == 12
    assert tier_capacity_entries(t, 8, 5) == 5
    with pytest.raises(ValueError):
        tier_capacity_entries(t, 0, 5)


# ----------------------------------------------------------------------
# TierChain
# ----------------------------------------------------------------------
@pytest.fixture
def chain():
    rng = np.random.default_rng(7)
    table = rng.standard_normal((64, 4)).astype(np.float32)
    hotness = rng.uniform(size=64)
    tiers = _chain_tiers(16, 64, table.shape[1] * table.itemsize)
    return TierChain(tiers, table, hotness), table, hotness


def test_chain_builds_verified_partition(chain):
    c, table, _ = chain
    assert c.verify() == []
    assert c.resident_count(-1) == 16
    assert c.resident_count(-2) == 48
    assert sum(c.shares().values()) == pytest.approx(1.0)
    keys = np.array([0, 5, 63, 17])
    np.testing.assert_array_equal(c.gather_home(keys), table[keys])


def test_chain_move_preserves_checksums_and_partition(chain):
    c, table, _ = chain
    dram_resident = np.flatnonzero(c.home == -1)[:4]
    moved = c.move(dram_resident, -2)
    assert moved == 4
    assert c.demotions == 4 and c.promotions == 0
    assert c.moved_bytes == 4 * c.entry_bytes
    assert c.verify() == []
    np.testing.assert_array_equal(
        c.gather(-2, dram_resident), table[dram_resident]
    )
    # moving them back is a promotion through the same checksum gate
    assert c.move(dram_resident, -1) == 4
    assert c.promotions == 4
    assert c.verify() == []


def test_chain_move_rejects_overflow(chain):
    c, _, _ = chain
    ssd_resident = np.flatnonzero(c.home == -2)
    with pytest.raises(TierCapacityError):
        c.move(ssd_resident, -1)  # 48 entries into 0 free dram slots... no
    assert c.verify() == []


def test_chain_gather_stale_route_raises(chain):
    c, _, _ = chain
    ssd_resident = np.flatnonzero(c.home == -2)[:1]
    with pytest.raises(TierIntegrityError):
        c.gather(-1, ssd_resident)


def test_chain_rebalance_follows_new_hotness(chain):
    c, _, hotness = chain
    flipped = hotness.max() - hotness
    moved = c.rebalance(flipped)
    assert moved > 0
    assert c.verify() == []
    want = assign_backing_tiers(c.tiers, c.num_entries, c.entry_bytes, flipped)
    np.testing.assert_array_equal(c.home, want)


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------
def _tiered_stack(seed=0, n=400, dim=8, dram_entries=100):
    rng = np.random.default_rng(seed)
    table = rng.standard_normal((n, dim)).astype(np.float32)
    eb = dim * 4
    base = server_a()
    platform = with_tiers(
        base,
        (
            MemoryTier("dram", dram_entries * eb, base.pcie_bandwidth),
            MemoryTier("ssd", n * eb, gbps(6), latency_s=100e-6),
        ),
    )
    hotness = zipf_pmf(n, 1.05) * 1000
    placement = hot_replicate_warm_partition_policy(
        hotness, n // 10, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(
        platform, table, placement, tier_hotness=hotness
    )
    return platform, table, hotness, cache


def test_tiered_cache_lookup_is_bit_exact():
    platform, table, _, cache = _tiered_stack()
    rng = np.random.default_rng(1)
    for gpu in range(platform.num_gpus):
        keys = rng.integers(0, len(table), size=256)
        result = cache.lookup(gpu, keys)
        np.testing.assert_array_equal(result.values, table[keys])
        # every miss routes to a valid tier, never a corrupt id
        assert platform.valid_source_mask(result.sources).all()
    assert cache.verify_integrity() == []


def test_tiered_cache_backing_surface():
    platform, table, _, cache = _tiered_stack()
    keys = np.arange(50)
    homes = cache.backing_home(keys)
    assert set(np.unique(homes)) <= {-1, -2}
    shares = cache.backing_shares()
    assert set(shares) == {-1, -2}
    assert sum(shares.values()) == pytest.approx(1.0)
    for src in (-1, -2):
        mine = keys[homes == src]
        if len(mine):
            np.testing.assert_array_equal(
                cache.backing_gather(src, mine), table[mine]
            )


def test_move_backing_repoints_parked_routes():
    platform, table, _, cache = _tiered_stack()
    chain = cache.tier_chain
    dram_homed = np.flatnonzero(chain.home == -1)[:3]
    assert cache.move_backing(dram_homed, -2) == 3
    np.testing.assert_array_equal(
        cache.backing_home(dram_homed), np.full(3, -2)
    )
    # routing stays coherent: verify checks stale backing routes too
    assert cache.verify_integrity() == []
    rng = np.random.default_rng(2)
    keys = rng.permutation(np.concatenate([dram_homed, rng.integers(0, len(table), 60)]))
    result = cache.lookup(0, keys)
    np.testing.assert_array_equal(result.values, table[keys])


def test_rebalance_tiers_roundtrip():
    _, table, hotness, cache = _tiered_stack()
    flipped = hotness.max() - hotness
    assert cache.rebalance_tiers(flipped) > 0
    assert cache.verify_integrity() == []
    result = cache.lookup(1, np.arange(len(table)))
    np.testing.assert_array_equal(result.values, table)


def test_single_tier_platform_has_no_chain_and_same_sources():
    """Byte-identity anchor: an explicit 1-tier chain equals the default."""
    rng = np.random.default_rng(3)
    table = rng.standard_normal((200, 4)).astype(np.float32)
    hotness = zipf_pmf(200, 1.1) * 100
    placement = hot_replicate_warm_partition_policy(hotness, 20, 4, 0.5)
    base = server_a()
    explicit = with_tiers(
        base, (dram_tier(base.host_memory_bytes, bandwidth=base.pcie_bandwidth),)
    )
    c0 = MultiGpuEmbeddingCache(base, table, placement)
    c1 = MultiGpuEmbeddingCache(explicit, table, placement)
    assert c0.tier_chain is None and c1.tier_chain is None
    np.testing.assert_array_equal(
        c0.backing_home(np.arange(200)), np.full(200, HOST)
    )
    assert c0.backing_shares() == {HOST: 1.0}
    for gpu in range(4):
        r0 = c0.lookup(gpu, np.arange(200))
        r1 = c1.lookup(gpu, np.arange(200))
        np.testing.assert_array_equal(r0.sources, r1.sources)
        np.testing.assert_array_equal(r0.values, r1.values)


# ----------------------------------------------------------------------
# Solver on a tiered platform
# ----------------------------------------------------------------------
def test_solver_respects_backing_homes_on_tiered_platform():
    platform, table, hotness, _ = _tiered_stack(n=300, dram_entries=80)
    eb = table.shape[1] * table.itemsize
    solved = solve_policy(
        platform, hotness, 30, eb, SolverConfig(coarse_block_frac=0.05)
    )
    assert np.isfinite(solved.est_time) and solved.est_time > 0
    placement = solved.realize()
    cache = MultiGpuEmbeddingCache(
        platform, table, placement, tier_hotness=hotness
    )
    result = cache.lookup(0, np.arange(len(table)))
    np.testing.assert_array_equal(result.values, table)
    assert cache.verify_integrity() == []


def test_solver_single_tier_unchanged_by_tier_generalization():
    """The multi-tier bounds only exist when the chain is deeper than 1:
    a single-tier solve must build the exact same LP as before."""
    platform = server_a()
    n = 300
    hotness = zipf_pmf(n, 1.1) * 1000
    a = solve_policy(platform, hotness, 30, 64,
                     SolverConfig(coarse_block_frac=0.05))
    explicit = with_tiers(
        platform,
        (dram_tier(platform.host_memory_bytes,
                   bandwidth=platform.pcie_bandwidth),),
    )
    b = solve_policy(explicit, hotness, 30, 64,
                     SolverConfig(coarse_block_frac=0.05))
    assert a.est_time == pytest.approx(b.est_time, rel=0, abs=0)
    assert a.num_variables == b.num_variables
