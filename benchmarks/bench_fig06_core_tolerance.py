"""Figure 6: per-source bandwidth vs number of participating SMs."""

from repro.bench.experiments import fig6_core_tolerance


def bench_fig06_core_tolerance(run_experiment):
    result = run_experiment(fig6_core_tolerance)
    by_key = {(r["platform"], r["source"]): r for r in result.rows}
    # Host saturates with a small fraction of SMs; local needs all of them.
    for platform in ("server-a", "server-c"):
        cpu = by_key[(platform, "CPU")]
        local = by_key[(platform, "Local")]
        assert cpu["saturation_cores"] <= 0.1 * cpu["total_cores"]
        assert local["saturation_cores"] >= 0.9 * local["total_cores"]
    # Switch platform: concurrent readers split the outbound port.
    seven = by_key[("server-c", "Remote(7 concurrent readers)")]
    assert seven["plateau_gbps"] < 50
