"""Hotness blocking (§6.3, Figure 9): batch similar entries to shrink the MILP.

The per-entry MILP has ``O(E·G²)`` variables — intractable for real tables.
UGache groups entries with similar hotness into *blocks* and solves at
block granularity:

* levels are formed on a **log scale** (a 110→120 hotness difference is
  less meaningful than 10→20);
* a **coarse** cap bounds any block to a fixed fraction of all entries
  (default 0.5%), so the huge cold tail cannot collapse into one block;
* a **fine** split guarantees each level yields at least ``N`` (the GPU
  count) blocks, so low cache ratios can still place sub-level fractions.

The result is at most ~a thousand blocks regardless of table size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BlockSet:
    """Entries grouped into hotness blocks.

    Attributes:
        order: entry ids sorted by descending hotness; blocks are
            contiguous slices of this array.
        offsets: ``(num_blocks + 1,)`` slice boundaries into ``order``.
        hotness_sum: total hotness per block (the solver weight ``H_b``).
        num_entries: size of the entry universe.
    """

    order: np.ndarray
    offsets: np.ndarray
    hotness_sum: np.ndarray
    num_entries: int

    def __post_init__(self) -> None:
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.order):
            raise ValueError("offsets must span the full entry order")
        if (np.diff(self.offsets) <= 0).any():
            raise ValueError("blocks must be non-empty")

    @property
    def num_blocks(self) -> int:
        return len(self.offsets) - 1

    @property
    def sizes(self) -> np.ndarray:
        """Entries per block."""
        return np.diff(self.offsets)

    def entries(self, block: int) -> np.ndarray:
        """Entry ids of one block (hotness-descending order)."""
        return self.order[self.offsets[block] : self.offsets[block + 1]]

    def mean_hotness(self) -> np.ndarray:
        return self.hotness_sum / self.sizes

    def block_of(self) -> np.ndarray:
        """Inverse map: entry id → block index."""
        inverse = np.empty(self.num_entries, dtype=np.int64)
        for b in range(self.num_blocks):
            inverse[self.entries(b)] = b
        return inverse


def build_blocks(
    hotness: np.ndarray,
    num_gpus: int,
    coarse_frac: float = 0.005,
    max_levels: int = 40,
) -> BlockSet:
    """Group entries into log-scale hotness blocks.

    Args:
        hotness: per-entry hotness (non-negative).
        num_gpus: minimum fine-grained blocks per level (the paper's ``N``).
        coarse_frac: coarse cap — no block exceeds this fraction of all
            entries (paper: 0.5%).
        max_levels: log-level clamp; entries more than ``2**max_levels``
            colder than the hottest share the bottom level.

    Returns:
        A :class:`BlockSet` whose blocks are contiguous runs of the
        hotness-descending entry order, never mixing log levels.
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    if hotness.ndim != 1 or hotness.size == 0:
        raise ValueError("hotness must be a non-empty 1-D array")
    if (hotness < 0).any():
        raise ValueError("hotness must be non-negative")
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if not 0 < coarse_frac <= 1:
        raise ValueError("coarse_frac must be in (0, 1]")

    n = hotness.size
    order = np.argsort(-hotness, kind="stable")
    sorted_hot = hotness[order]

    # Log-scale levels relative to the hottest entry.  Zero-hotness entries
    # (never accessed during profiling) form their own bottom level.
    hot_max = sorted_hot[0]
    levels = np.full(n, max_levels, dtype=np.int64)
    positive = sorted_hot > 0
    if hot_max > 0:
        # log-difference form avoids overflow when hotness spans the full
        # float range (hot_max / tiny would overflow).
        log_gap = np.log2(hot_max) - np.log2(sorted_hot[positive])
        levels[positive] = np.clip(np.floor(log_gap), 0, max_levels - 1).astype(
            np.int64
        )

    coarse_cap = max(1, int(np.ceil(coarse_frac * n)))
    offsets = [0]
    hotness_sums = []
    start = 0
    while start < n:
        level = levels[start]
        stop = start
        while stop < n and levels[stop] == level:
            stop += 1
        size = stop - start
        # Fine split: at least num_gpus blocks per level, and respect the
        # coarse cap.  ceil division keeps pieces near-equal.
        pieces = max(num_gpus, -(-size // coarse_cap))
        pieces = min(pieces, size)
        bounds = np.linspace(start, stop, pieces + 1).round().astype(np.int64)
        bounds = np.unique(bounds)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            offsets.append(int(hi))
            hotness_sums.append(sorted_hot[lo:hi].sum())
        start = stop

    return BlockSet(
        order=order,
        offsets=np.asarray(offsets, dtype=np.int64),
        hotness_sum=np.asarray(hotness_sums, dtype=np.float64),
        num_entries=n,
    )


def build_uniform_blocks(hotness: np.ndarray, num_blocks: int) -> BlockSet:
    """Linear-scale blocking ablation: equal-size blocks over the sorted order.

    Used by the blocking ablation benchmark to show why the paper's
    log-scale levels matter at low cache ratios.
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    n = hotness.size
    if not 1 <= num_blocks <= n:
        raise ValueError(f"num_blocks must be in [1, {n}]")
    order = np.argsort(-hotness, kind="stable")
    bounds = np.linspace(0, n, num_blocks + 1).round().astype(np.int64)
    bounds = np.unique(bounds)
    sums = np.add.reduceat(hotness[order], bounds[:-1])
    return BlockSet(
        order=order,
        offsets=bounds,
        hotness_sum=sums,
        num_entries=n,
    )


def per_entry_blocks(hotness: np.ndarray) -> BlockSet:
    """One block per entry — the granularity of the 'optimal' reference.

    Only feasible for small universes (Figure 16 reduces the dataset for
    exactly this reason).
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    n = hotness.size
    order = np.argsort(-hotness, kind="stable")
    return BlockSet(
        order=order,
        offsets=np.arange(n + 1, dtype=np.int64),
        hotness_sum=hotness[order].copy(),
        num_entries=n,
    )
