"""Hotness metric (§6.1): tracking, presampling, degree proxy."""

import numpy as np
import pytest

from repro.core.hotness import (
    HotnessTracker,
    degree_hotness,
    hotness_skew,
    presample_hotness,
)


class TestHotnessTracker:
    def test_counts_accesses(self):
        tracker = HotnessTracker(5)
        tracker.record(np.array([0, 0, 3]))
        counts = tracker.counts()
        assert counts[0] == 2 and counts[3] == 1 and counts[1] == 0

    def test_hotness_normalized_per_batch(self):
        tracker = HotnessTracker(4)
        tracker.record(np.array([1, 1]))
        tracker.record(np.array([1]))
        assert tracker.hotness()[1] == pytest.approx(1.5)

    def test_duplicates_count(self):
        # The paper's extract reads one entry per occurrence.
        tracker = HotnessTracker(3)
        tracker.record(np.array([2, 2, 2, 2]))
        assert tracker.counts()[2] == 4

    def test_empty_batch_still_counts_as_batch(self):
        tracker = HotnessTracker(3)
        tracker.record(np.array([], dtype=np.int64))
        assert tracker.batches_recorded == 1

    def test_hotness_before_recording_raises(self):
        with pytest.raises(RuntimeError):
            HotnessTracker(3).hotness()

    def test_out_of_range_key_rejected(self):
        tracker = HotnessTracker(3)
        with pytest.raises(ValueError):
            tracker.record(np.array([3]))
        with pytest.raises(ValueError):
            tracker.record(np.array([-1]))

    def test_merge(self):
        a = HotnessTracker(3)
        b = HotnessTracker(3)
        a.record(np.array([0]))
        b.record(np.array([1, 1]))
        a.merge(b)
        assert a.batches_recorded == 2
        assert a.counts()[1] == 2

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            HotnessTracker(3).merge(HotnessTracker(4))

    def test_reset(self):
        tracker = HotnessTracker(3)
        tracker.record(np.array([0]))
        tracker.reset()
        assert tracker.batches_recorded == 0
        assert tracker.counts().sum() == 0

    def test_record_many(self):
        tracker = HotnessTracker(3)
        tracker.record_many([np.array([0]), np.array([1])])
        assert tracker.batches_recorded == 2


class TestPresample:
    def test_averages_over_batches(self):
        batches = iter([np.array([0, 1]), np.array([0])])
        hot = presample_hotness(batches, num_entries=3)
        assert hot[0] == pytest.approx(1.0)
        assert hot[1] == pytest.approx(0.5)

    def test_max_batches_respected(self):
        batches = iter([np.array([0])] * 10)
        hot = presample_hotness(batches, 2, max_batches=3)
        assert hot[0] == pytest.approx(1.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            presample_hotness(iter([]), 3)


class TestDegreeHotness:
    def test_proportional_to_degree(self):
        hot = degree_hotness(np.array([10.0, 5.0, 5.0]))
        assert hot[0] == pytest.approx(2 * hot[1])

    def test_scales_to_budget(self):
        hot = degree_hotness(np.array([1.0, 1.0]), accesses_per_batch=10)
        assert hot.sum() == pytest.approx(10)

    def test_rejects_negative_degrees(self):
        with pytest.raises(ValueError):
            degree_hotness(np.array([-1.0, 2.0]))

    def test_rejects_edgeless_graph(self):
        with pytest.raises(ValueError):
            degree_hotness(np.zeros(3))


class TestSkewSummary:
    def test_uniform_has_low_skew(self):
        assert hotness_skew(np.ones(1000)) == pytest.approx(0.01, rel=0.2)

    def test_pointmass_has_full_skew(self):
        hot = np.zeros(1000)
        hot[0] = 1.0
        assert hotness_skew(hot) == pytest.approx(1.0)

    def test_zero_hotness(self):
        assert hotness_skew(np.zeros(10)) == 0.0


class TestStreamingEstimatorColdStart:
    """The zero-batch edge: loud for the base tracker, a prior for the
    streaming estimator (mirroring ``LatencyEstimator.estimator_prior``)."""

    def test_zero_batch_edge_is_loud_not_silent(self):
        # Silent zeros would tell the solver nothing is ever accessed;
        # the base tracker must refuse instead.
        tracker = HotnessTracker(8)
        assert tracker.batches_recorded == 0
        with pytest.raises(RuntimeError):
            tracker.hotness()
        tracker.record(np.array([], dtype=np.int64))
        # an empty batch IS a window — all-cold is now a valid answer.
        assert tracker.hotness().sum() == 0.0

    def test_streaming_prior_answers_before_first_batch(self):
        from repro.core.drift_adapt import StreamingHotnessEstimator

        est = StreamingHotnessEstimator(5, prior=0.25)
        np.testing.assert_allclose(est.hotness(), np.full(5, 0.25))
        est.record(np.array([0, 0, 1]))
        # after the first batch the prior is gone, not blended in.
        assert est.hotness()[0] == pytest.approx(2.0)

    def test_streaming_without_prior_keeps_loud_edge(self):
        from repro.core.drift_adapt import StreamingHotnessEstimator

        with pytest.raises(RuntimeError):
            StreamingHotnessEstimator(5).hotness()

    def test_decay_one_matches_plain_tracker(self):
        from repro.core.drift_adapt import StreamingHotnessEstimator

        plain = HotnessTracker(6)
        decayed = StreamingHotnessEstimator(6, decay=1.0)
        rng = np.random.default_rng(7)
        for _ in range(9):
            keys = rng.integers(0, 6, size=16)
            plain.record(keys)
            decayed.record(keys)
        np.testing.assert_allclose(decayed.hotness(), plain.hotness())
