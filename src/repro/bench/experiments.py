"""Per-figure/table experiment drivers (the paper's §2-§8 evaluation).

Each ``<exp>_experiment`` function regenerates one table or figure of the
paper and returns an :class:`~repro.bench.harness.ExperimentResult` whose
rows are the figure's series.  The ``benchmarks/`` scripts call these and
render them; ``EXPERIMENTS.md`` records paper-vs-measured per experiment.

Times reported here are *simulated* seconds on the modelled hardware, not
wall-clock on this machine (see DESIGN.md's substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import UnsupportedConfiguration, evaluate_system
from repro.baselines.systems import (
    DLR_SYSTEMS,
    GNN_SYSTEMS,
    GnnLabSystem,
    HpsSystem,
    PartUSystem,
    RepUSystem,
    SokSystem,
    UGacheSystem,
    WholeGraphSystem,
)
from repro.bench.contexts import (
    DLR_MODELS,
    GNN_MODES,
    dlr_cell,
    gnn_cell,
    platform_by_name,
)
from repro.bench.harness import ExperimentResult, speedup_summary
from repro.core.evaluate import evaluate_placement, hit_rates
from repro.core.optimal import approximation_gap, solve_optimal
from repro.core.policy import partition_policy, replication_policy
from repro.core.refresher import RefreshConfig, simulate_refresh_timeline
from repro.core.solver import SolverConfig, solve_policy
from repro.datasets.registry import all_dataset_summaries
from repro.hardware.bandwidth import tolerance_curves
from repro.hardware.platform import server_a, server_c, single_gpu
from repro.sim.engine import simulate_batch
from repro.sim.mechanisms import Mechanism
from repro.sim.utilization import batch_utilization
from repro.utils.units import seconds_to_ms

#: Solver knobs used across benchmark sweeps: slightly coarser blocking
#: than the paper's 0.5% keeps each LP solve ~1 s at our scales while
#: staying within ~2% of the finer solution (bench_misc_solver_scale
#: quantifies this).
BENCH_SOLVER = SolverConfig(coarse_block_frac=0.01)


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds_to_ms(seconds)


# ----------------------------------------------------------------------
# Table 1 — single-GPU breakdown
# ----------------------------------------------------------------------
def table1_breakdown() -> ExperimentResult:
    """Runtime/data breakdown of unsupervised GraphSAGE on one A100 (Table 1).

    EMT time without cache (all host traffic) vs with a single-GPU
    replication cache; MLP time from the dense cost model.
    """
    platform = single_gpu()
    cell = gnn_cell(platform, "mag", "sage-unsup")
    ctx = cell.context

    no_cache = replication_policy(ctx.hotness, 0, 1)
    emt_plain = evaluate_placement(
        platform, no_cache, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
    )
    cached = replication_policy(ctx.hotness, ctx.capacity_entries, 1)
    emt_cached = evaluate_placement(
        platform, cached, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
    )
    hit = hit_rates(platform, cached, ctx.hotness)
    mlp = ctx.dense_time + ctx.sampling_time
    batch_bytes = ctx.batch_keys * ctx.entry_bytes

    result = ExperimentResult(
        "table1", "Single-GPU breakdown: unsup. GraphSAGE + MAG stand-in, 1×A100"
    )
    result.add(
        component="MLP (dense+sample)",
        time_ms=_ms(mlp),
        data_bytes_per_iter=0.0,
        gmem_access_ratio_pct=100.0,
    )
    result.add(
        component="EMT (no cache)",
        time_ms=_ms(emt_plain.time),
        data_bytes_per_iter=batch_bytes,
        gmem_access_ratio_pct=0.0,
    )
    result.add(
        component="EMT (w/ cache)",
        time_ms=_ms(emt_cached.time),
        data_bytes_per_iter=batch_bytes,
        gmem_access_ratio_pct=100.0 * hit.local,
    )
    result.add(
        component="Total (w/ cache)",
        time_ms=_ms(mlp + emt_cached.time),
        data_bytes_per_iter=batch_bytes,
        gmem_access_ratio_pct=100.0 * hit.local,
    )
    result.notes.append(
        f"EMT dominates: {emt_plain.time / mlp:.1f}x MLP without cache, "
        f"{emt_cached.time / mlp:.1f}x with cache "
        f"(paper: 113.3/10.6 ≈ 10.7x and 20.7/10.6 ≈ 2.0x)"
    )
    return result


# ----------------------------------------------------------------------
# Figure 2 — replication vs partition motivation
# ----------------------------------------------------------------------
def fig2_policy_motivation(
    ratios: tuple[float, ...] = (0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25),
) -> ExperimentResult:
    """Hit rate and extraction time of replication vs partition (Figure 2).

    Supervised GraphSAGE + PA stand-in on 8×A100, sweeping per-GPU cache
    ratio; partition shows the marginal-utility plateau, replication the
    PCIe bottleneck, UGache tracks the better of both.
    """
    platform = server_c()
    result = ExperimentResult(
        "fig2", "Replication vs partition vs UGache (SAGE sup. + PA, 8×A100)"
    )
    for ratio in ratios:
        cell = gnn_cell(platform, "pa", "sage-sup", cache_ratio=ratio)
        ctx = cell.context
        rep = replication_policy(ctx.hotness, ctx.capacity_entries, 8)
        part = partition_policy(ctx.hotness, ctx.capacity_entries, 8)
        rep_hits = hit_rates(platform, rep, ctx.hotness)
        part_hits = hit_rates(platform, part, ctx.hotness)
        rep_time = evaluate_placement(
            platform, rep, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
        ).time
        part_time = evaluate_placement(
            platform, part, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
        ).time
        ug = solve_policy(
            platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
        ).realize()
        ug_time = evaluate_placement(
            platform, ug, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
        ).time
        result.add(
            cache_ratio_pct=100 * ratio,
            rep_local_hit_pct=100 * rep_hits.local,
            part_local_hit_pct=100 * part_hits.local,
            part_global_hit_pct=100 * part_hits.global_hit,
            rep_time_ms=_ms(rep_time),
            part_time_ms=_ms(part_time),
            ugache_time_ms=_ms(ug_time),
        )
    return result


# ----------------------------------------------------------------------
# Figure 4 — extraction mechanism motivation
# ----------------------------------------------------------------------
def fig4_mechanism_motivation() -> ExperimentResult:
    """Message vs naive peer vs UGache extraction time (Figure 4).

    DLR inference with the CR stand-in and the Zipf(1.2) synthetic on
    4×V100 and 8×A100.  Message/peer run the partition policy the source
    systems use; UGache runs its solved policy with FEM.
    """
    result = ExperimentResult(
        "fig4", "Extraction mechanism comparison (DLR inference)"
    )
    for platform in (server_a(), server_c()):
        for dataset in ("cr", "syn-a"):
            cell = dlr_cell(platform, dataset, "dlrm")
            ctx = cell.context
            part = partition_policy(
                ctx.hotness, ctx.capacity_entries, platform.num_gpus
            )
            message = evaluate_placement(
                platform, part, ctx.hotness, ctx.entry_bytes, Mechanism.MESSAGE
            ).time
            peer = evaluate_placement(
                platform, part, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
            ).time
            ug = solve_policy(
                platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
            ).realize()
            ugache = evaluate_placement(
                platform, ug, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
            ).time
            result.add(
                platform=platform.name,
                dataset=dataset,
                message_ms=_ms(message),
                peer_ms=_ms(peer),
                ugache_ms=_ms(ugache),
            )
    return result


# ----------------------------------------------------------------------
# Figure 6 — link tolerance microbenchmark
# ----------------------------------------------------------------------
def fig6_core_tolerance() -> ExperimentResult:
    """Bandwidth vs participating SMs per source (Figure 6)."""
    result = ExperimentResult(
        "fig6", "Per-source bandwidth vs number of cores (Servers A and C)"
    )
    for platform in (server_a(), server_c()):
        for curve in tolerance_curves(platform, dst=0):
            result.add(
                platform=platform.name,
                source=curve.source_label,
                plateau_gbps=curve.plateau_bandwidth / 1e9,
                saturation_cores=curve.saturation_cores,
                total_cores=platform.gpu.num_cores,
            )
        # Right half of Fig. 6(b): collisions on a switch platform.
        if platform.topology.kind.value == "switch":
            for readers in (1, 2, 4, 7):
                curves = tolerance_curves(platform, dst=0, concurrent_readers=readers)
                remote = [c for c in curves if c.source_label.startswith("Remote")][0]
                result.add(
                    platform=platform.name,
                    source=f"Remote({readers} concurrent readers)",
                    plateau_gbps=remote.plateau_bandwidth / 1e9,
                    saturation_cores=remote.saturation_cores,
                    total_cores=platform.gpu.num_cores,
                )
    return result


# ----------------------------------------------------------------------
# Figures 10/11 — overall performance
# ----------------------------------------------------------------------
def fig10_end_to_end(
    servers: tuple[str, ...] = ("server-a", "server-b", "server-c"),
) -> ExperimentResult:
    """End-to-end epoch (GNN) / iteration (DLR) time, all systems (Fig. 10)."""
    result = ExperimentResult(
        "fig10", "End-to-end time: GNN epoch (s) and DLR iteration (ms)"
    )
    ugache = UGacheSystem(BENCH_SOLVER)
    gnn_systems = (GnnLabSystem(), WholeGraphSystem(), PartUSystem(), ugache)
    dlr_systems = (HpsSystem(), SokSystem(), ugache)
    for server in servers:
        platform = platform_by_name(server)
        for mode in GNN_MODES:
            for dataset in ("pa", "cf", "mag"):
                cell = gnn_cell(platform, dataset, mode)
                row: dict = {
                    "server": server,
                    "app": mode,
                    "dataset": dataset,
                    "unit": "s/epoch",
                }
                for system in gnn_systems:
                    try:
                        res = evaluate_system(system, cell.context)
                        row[system.name] = res.epoch_time(cell.iterations_per_epoch)
                    except UnsupportedConfiguration:
                        row[system.name] = None
                result.rows.append(row)
        for model in DLR_MODELS:
            for dataset in ("cr", "syn-a", "syn-b"):
                cell = dlr_cell(platform, dataset, model)
                row = {
                    "server": server,
                    "app": model,
                    "dataset": dataset,
                    "unit": "ms/iter",
                }
                for system in dlr_systems:
                    try:
                        res = evaluate_system(system, cell.context)
                        row[system.name] = _ms(res.iteration_time)
                    except UnsupportedConfiguration:
                        row[system.name] = None
                result.rows.append(row)

    for base in ("GNNLab", "PartU", "HPS", "SOK"):
        summary = speedup_summary(result.rows, base, "UGache")
        if summary["count"]:
            result.notes.append(
                f"UGache vs {base}: geomean {summary['geomean']:.2f}x, "
                f"max {summary['max']:.2f}x over {summary['count']} configs"
            )
    return result


def fig11_extraction_time(
    servers: tuple[str, ...] = ("server-a", "server-b", "server-c"),
) -> ExperimentResult:
    """Embedding extraction time per iteration, all systems (Figure 11).

    Adds RepU/PartU to the DLR side, as the paper does to isolate the
    contribution of UGache's techniques from engineering differences.
    """
    result = ExperimentResult("fig11", "Embedding extraction time (ms/iteration)")
    ugache = UGacheSystem(BENCH_SOLVER)
    gnn_systems = (GnnLabSystem(), WholeGraphSystem(), PartUSystem(), ugache)
    dlr_systems = (HpsSystem(), SokSystem(), RepUSystem(), PartUSystem(), ugache)
    for server in servers:
        platform = platform_by_name(server)
        for mode in GNN_MODES:
            for dataset in ("pa", "cf", "mag"):
                cell = gnn_cell(platform, dataset, mode)
                row: dict = {"server": server, "app": mode, "dataset": dataset}
                for system in gnn_systems:
                    try:
                        res = evaluate_system(system, cell.context)
                        row[system.name] = _ms(res.extraction_time)
                    except UnsupportedConfiguration:
                        row[system.name] = None
                result.rows.append(row)
        for dataset in ("cr", "syn-a", "syn-b"):
            cell = dlr_cell(platform, dataset, "dlrm")
            row = {"server": server, "app": "dlrm", "dataset": dataset}
            for system in dlr_systems:
                try:
                    res = evaluate_system(system, cell.context)
                    row[system.name] = _ms(res.extraction_time)
                except UnsupportedConfiguration:
                    row[system.name] = None
            result.rows.append(row)

    for base in ("GNNLab", "WholeGraph", "RepU", "PartU"):
        summary = speedup_summary(result.rows, base, "UGache")
        if summary["count"]:
            result.notes.append(
                f"UGache vs {base} (extraction): geomean {summary['geomean']:.2f}x, "
                f"max {summary['max']:.2f}x over {summary['count']} configs"
            )
    return result


# ----------------------------------------------------------------------
# Figure 12 — incremental technique breakdown
# ----------------------------------------------------------------------
def fig12_incremental(
    datasets: tuple[str, ...] = ("pa", "cf"),
    ratios: tuple[float, ...] = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25),
) -> ExperimentResult:
    """Apply UGache's techniques incrementally (Figure 12, Server C).

    RepU / PartU → ``+Policy`` (solved placement, naive extraction) →
    UGache (solved placement + FEM).
    """
    platform = server_c()
    result = ExperimentResult(
        "fig12", "Incremental techniques: extraction time (SAGE sup., Server C)"
    )
    for dataset in datasets:
        for ratio in ratios:
            cell = gnn_cell(platform, dataset, "sage-sup", cache_ratio=ratio)
            ctx = cell.context
            rep = replication_policy(ctx.hotness, ctx.capacity_entries, 8)
            part = partition_policy(ctx.hotness, ctx.capacity_entries, 8)
            solved = solve_policy(
                platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
            ).realize()
            rep_t = evaluate_placement(
                platform, rep, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
            ).time
            part_t = evaluate_placement(
                platform, part, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
            ).time
            policy_t = evaluate_placement(
                platform, solved, ctx.hotness, ctx.entry_bytes, Mechanism.PEER_NAIVE
            ).time
            ugache_t = evaluate_placement(
                platform, solved, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
            ).time
            result.add(
                dataset=dataset,
                cache_ratio_pct=100 * ratio,
                RepU_ms=_ms(rep_t),
                PartU_ms=_ms(part_t),
                plus_policy_ms=_ms(policy_t),
                UGache_ms=_ms(ugache_t),
            )
    return result


# ----------------------------------------------------------------------
# Figure 13 — link utilization with/without FEM
# ----------------------------------------------------------------------
def fig13_link_utilization() -> ExperimentResult:
    """PCIe/NVLink utilization during extraction w/ and w/o FEM (Fig. 13).

    Same solved placement, both mechanisms, Server C; locally hit keys
    are excluded as in the paper's measurement.
    """
    platform = server_c()
    cells = [
        ("gcn", "cf", gnn_cell(platform, "cf", "gcn")),
        ("gcn", "mag", gnn_cell(platform, "mag", "gcn")),
        ("dlrm", "cr", dlr_cell(platform, "cr", "dlrm")),
        ("dlrm", "syn-a", dlr_cell(platform, "syn-a", "dlrm")),
    ]
    result = ExperimentResult(
        "fig13", "Link utilization during extraction (Server C)"
    )
    for app, dataset, cell in cells:
        ctx = cell.context
        solved = solve_policy(
            platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
        ).realize()
        from repro.core.evaluate import expected_demands
        from repro.sim.mechanisms import GpuDemand

        demands = expected_demands(platform, solved, ctx.hotness, ctx.entry_bytes)
        # Remove locally hit traffic, as the paper does for a fair probe.
        demands = [
            GpuDemand(
                dst=d.dst,
                volumes={s: v for s, v in d.volumes.items() if s != d.dst},
            )
            for d in demands
        ]
        naive = simulate_batch(platform, demands, Mechanism.PEER_NAIVE)
        fem = simulate_batch(platform, demands, Mechanism.FACTORED)
        u_naive = batch_utilization(platform, naive)
        u_fem = batch_utilization(platform, fem)
        result.add(
            app=app,
            dataset=dataset,
            pcie_wo_fem_pct=100 * u_naive.pcie,
            pcie_w_fem_pct=100 * u_fem.pcie,
            nvlink_wo_fem_pct=100 * u_naive.nvlink,
            nvlink_w_fem_pct=100 * u_fem.nvlink,
        )
    return result


# ----------------------------------------------------------------------
# Figures 14/15 — cache policy: access and time split
# ----------------------------------------------------------------------
def fig14_access_split(
    datasets: tuple[str, ...] = ("pa", "cf"),
    ratios: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
) -> ExperimentResult:
    """Local/remote/host access split per policy vs cache ratio (Fig. 14)."""
    platform = server_c()
    result = ExperimentResult(
        "fig14", "Access split by source (SAGE sup., Server C)"
    )
    for dataset in datasets:
        for ratio in ratios:
            cell = gnn_cell(platform, dataset, "sage-sup", cache_ratio=ratio)
            ctx = cell.context
            policies = {
                "RepU": replication_policy(ctx.hotness, ctx.capacity_entries, 8),
                "PartU": partition_policy(ctx.hotness, ctx.capacity_entries, 8),
                "UGache": solve_policy(
                    platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
                ).realize(),
            }
            for name, placement in policies.items():
                hits = hit_rates(platform, placement, ctx.hotness)
                result.add(
                    dataset=dataset,
                    cache_ratio_pct=100 * ratio,
                    policy=name,
                    local_pct=100 * hits.local,
                    remote_pct=100 * hits.remote,
                    host_pct=100 * hits.host,
                )
    return result


def fig15_time_split(
    datasets: tuple[str, ...] = ("pa", "cf"),
    ratios: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
) -> ExperimentResult:
    """Per-source extraction time per policy vs cache ratio (Figure 15).

    All policies use UGache's factored extraction, as in the paper.
    """
    platform = server_c()
    result = ExperimentResult(
        "fig15", "Extraction time split by source (SAGE sup., Server C)"
    )
    for dataset in datasets:
        for ratio in ratios:
            cell = gnn_cell(platform, dataset, "sage-sup", cache_ratio=ratio)
            ctx = cell.context
            policies = {
                "RepU": replication_policy(ctx.hotness, ctx.capacity_entries, 8),
                "PartU": partition_policy(ctx.hotness, ctx.capacity_entries, 8),
                "UGache": solve_policy(
                    platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
                ).realize(),
            }
            for name, placement in policies.items():
                report = evaluate_placement(
                    platform, placement, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
                )
                split = report.time_split()
                result.add(
                    dataset=dataset,
                    cache_ratio_pct=100 * ratio,
                    policy=name,
                    total_ms=_ms(report.time),
                    local_ms=_ms(split["local"]),
                    remote_ms=_ms(split["remote"]),
                    host_ms=_ms(split["host"]),
                )
    return result


# ----------------------------------------------------------------------
# Figure 16 — UGache vs theoretically optimal policy
# ----------------------------------------------------------------------
def fig16_vs_optimal() -> ExperimentResult:
    """Blocked solve vs per-entry optimal reference (Figure 16).

    Per-entry solves are only tractable on reduced universes, exactly as
    in the paper (SYN-As/Bs); GNN hotness is subsampled to a reduced
    universe for the same reason (documented in EXPERIMENTS.md).
    """
    result = ExperimentResult(
        "fig16", "UGache vs theoretically optimal cache policy"
    )
    #: Reduced universe for per-entry tractability (the paper shrinks the
    #: dataset to SYN-As/Bs for the same reason; §8.5).  600 entries keeps
    #: every per-entry HiGHS solve under ~15 s on one core.
    # The reduction is *stratified*: every k-th entry of the hotness-
    # descending order, so the reduced instance keeps the distribution's
    # shape and the blocked-vs-optimal gap is measured in the same regime.
    reduced = 600

    def _compare(platform, workload, hotness, capacity, entry_bytes):
        if len(hotness) > reduced:
            order = np.argsort(-hotness)
            stride = len(order) // reduced
            idx = order[::stride][:reduced]
            capacity = max(1, int(capacity * reduced / len(hotness)))
            hotness = hotness[idx]
        fine = SolverConfig(coarse_block_frac=0.005)
        ug = solve_policy(platform, hotness, capacity, entry_bytes, fine)
        opt = solve_optimal(platform, hotness, capacity, entry_bytes)
        result.add(
            platform=platform.name,
            workload=workload,
            optimal_ms=_ms(opt.est_time),
            ugache_ms=_ms(ug.est_time),
            gap_pct=100 * approximation_gap(ug, opt),
        )

    # DLR on Servers A and B with the reduced synthetic datasets.
    from repro.hardware.platform import server_b

    for platform in (server_a(), server_b()):
        for dataset in ("syn-as", "syn-bs"):
            cell = dlr_cell(platform, dataset, "dlrm", cache_ratio=0.10)
            ctx = cell.context
            _compare(
                platform,
                f"dlrm/{dataset}",
                ctx.hotness,
                ctx.capacity_entries,
                ctx.entry_bytes,
            )
    # GNN on Server C, hotness subsampled to the reduced universe.  The
    # cache ratio is pinned at a regime with meaningful host/remote
    # traffic — at the platform-derived ratios the reduced instances are
    # fully cacheable and both times collapse to ~zero, making relative
    # gaps noise.
    platform = server_c()
    for mode in GNN_MODES:
        for dataset in ("pa", "cf", "mag"):
            cell = gnn_cell(platform, dataset, mode, cache_ratio=0.08)
            ctx = cell.context
            _compare(
                platform,
                f"{mode}/{dataset}",
                ctx.hotness,
                ctx.capacity_entries,
                ctx.entry_bytes,
            )
    gaps = [row["gap_pct"] for row in result.rows]
    result.notes.append(
        f"mean gap {np.mean(gaps):.2f}% (paper: 1.9% average, <2% claimed)"
    )
    return result


# ----------------------------------------------------------------------
# Figure 17 — refresh timeline
# ----------------------------------------------------------------------
def fig17_refresh() -> ExperimentResult:
    """DLRM inference latency while refreshes run (Figure 17)."""
    platform = server_c()
    cell = dlr_cell(platform, "cr", "dlrm")
    ctx = cell.context
    solved = solve_policy(
        platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
    ).realize()
    baseline = (
        evaluate_placement(
            platform, solved, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
        ).time
        + ctx.dense_time
    )
    config = RefreshConfig()
    # Entries a refresh moves: roughly one GPU cache's worth across GPUs.
    entries_moved = ctx.capacity_entries * platform.num_gpus // 2
    timeline = simulate_refresh_timeline(
        baseline_latency=baseline,
        total_duration=200.0,
        refresh_starts=(40.0, 150.0),
        entries_to_move=entries_moved,
        config=config,
    )
    result = ExperimentResult(
        "fig17", "Inference latency during cache refresh (DLRM + CR, Server C)"
    )
    for start, stop in timeline.refresh_windows:
        inside = timeline.mean_latency(start, stop)
        before = timeline.mean_latency(max(0.0, start - 20.0), start)
        result.add(
            refresh_start_s=start,
            refresh_stop_s=stop,
            duration_s=stop - start,
            latency_before_ms=_ms(before),
            latency_during_ms=_ms(inside),
            impact_pct=100 * (inside / before - 1) if before else 0.0,
        )
    result.notes.append(
        "paper: refresh takes 28.69 s on average with <10% foreground impact"
    )
    return result


# ----------------------------------------------------------------------
# Table 3 — datasets
# ----------------------------------------------------------------------
def table3_datasets() -> ExperimentResult:
    """The dataset inventory with stand-in scales (Table 3)."""
    result = ExperimentResult("table3", "Dataset stand-ins (scaled)")
    for summary in all_dataset_summaries():
        result.add(
            dataset=summary.key,
            paper_name=summary.paper_name,
            kind=summary.kind,
            entries=summary.num_entries,
            dim=summary.dim,
            volume_mb=summary.volume_bytes / 1e6,
            scale=summary.scale,
        )
    return result


# ----------------------------------------------------------------------
# Beyond-the-paper ablations (DESIGN.md §6)
# ----------------------------------------------------------------------
def misc_solver_scale() -> ExperimentResult:
    """§6.3's scale claims: block counts, problem size, solve time, and the
    LP-relaxation vs binary-MILP gap on a small instance."""
    result = ExperimentResult(
        "solver-scale", "Blocking keeps the MILP small (§6.3)"
    )
    platform = server_c()
    for dataset, kind in (("pa", "gnn"), ("cf", "gnn"), ("syn-a", "dlr")):
        if kind == "gnn":
            ctx = gnn_cell(platform, dataset, "sage-sup").context
        else:
            ctx = dlr_cell(platform, dataset, "dlrm").context
        solved = solve_policy(
            platform,
            ctx.hotness,
            ctx.capacity_entries,
            ctx.entry_bytes,
            SolverConfig(coarse_block_frac=0.005),
        )
        result.add(
            dataset=dataset,
            entries=ctx.num_entries,
            blocks=solved.blocks.num_blocks,
            variables=solved.num_variables,
            constraints=solved.num_constraints,
            solve_s=solved.solve_seconds,
            est_ms=_ms(solved.est_time),
        )
    result.notes.append(
        "paper: blocking reduces E from billions to <1k blocks, ~10 s solves"
    )

    # LP relaxation vs true binary MILP on a small instance.
    from repro.utils.stats import zipf_pmf

    hot = zipf_pmf(400, 1.2) * 5000
    platform = server_a()
    relaxed = solve_policy(platform, hot, 40, 512, SolverConfig(coarse_block_frac=0.05))
    integral = solve_policy(
        platform, hot, 40, 512, SolverConfig(coarse_block_frac=0.05, integral=True)
    )
    gap = (integral.est_time - relaxed.est_time) / max(relaxed.est_time, 1e-12)
    result.add(
        dataset="zipf-400 (LP vs binary MILP)",
        entries=400,
        blocks=relaxed.blocks.num_blocks,
        variables=relaxed.num_variables,
        constraints=relaxed.num_constraints,
        solve_s=integral.solve_seconds,
        est_ms=_ms(integral.est_time),
    )
    result.notes.append(f"binary-MILP vs LP-relaxation objective gap: {100*gap:.2f}%")
    return result


def ablation_padding() -> ExperimentResult:
    """FEM's local-extraction padding (§5.3) switched off."""
    platform = server_c()
    result = ExperimentResult(
        "ablation-padding", "FEM with vs without local-extraction padding"
    )
    for dataset, mode in (("pa", "sage-sup"), ("cf", "gcn"), ("mag", "sage-unsup")):
        ctx = gnn_cell(platform, dataset, mode).context
        solved = solve_policy(
            platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
        ).realize()
        padded = evaluate_placement(
            platform, solved, ctx.hotness, ctx.entry_bytes,
            Mechanism.FACTORED, local_padding=True,
        ).time
        serial = evaluate_placement(
            platform, solved, ctx.hotness, ctx.entry_bytes,
            Mechanism.FACTORED, local_padding=False,
        ).time
        result.add(
            workload=f"{mode}/{dataset}",
            with_padding_ms=_ms(padded),
            without_padding_ms=_ms(serial),
            speedup=serial / padded if padded > 0 else None,
        )
    return result


def ablation_blocking() -> ExperimentResult:
    """Log-scale coarse/fine blocking (Fig. 9) vs uniform blocking."""
    from repro.core.blocks import build_blocks, build_uniform_blocks

    platform = server_c()
    ctx = gnn_cell(platform, "pa", "sage-sup", cache_ratio=0.04).context
    result = ExperimentResult(
        "ablation-blocking", "Blocking strategy vs solution quality (PA, 4% ratio)"
    )
    strategies = {
        "log-scale coarse/fine (paper)": build_blocks(
            ctx.hotness, num_gpus=8, coarse_frac=0.005
        ),
        "log-scale, coarse only": build_blocks(
            ctx.hotness, num_gpus=1, coarse_frac=0.005
        ),
        "uniform 64 blocks": build_uniform_blocks(ctx.hotness, 64),
        "uniform 512 blocks": build_uniform_blocks(ctx.hotness, 512),
    }
    for label, blocks in strategies.items():
        solved = solve_policy(
            platform,
            ctx.hotness,
            ctx.capacity_entries,
            ctx.entry_bytes,
            SolverConfig(),
            blocks=blocks,
        )
        simulated = evaluate_placement(
            platform, solved.realize(), ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
        ).time
        result.add(
            strategy=label,
            blocks=blocks.num_blocks,
            solve_s=solved.solve_seconds,
            est_ms=_ms(solved.est_time),
            simulated_ms=_ms(simulated),
        )
    return result


def misc_heuristic_vs_solver() -> ExperimentResult:
    """The hot-replicate/warm-partition heuristic [39] vs the MILP (§6.3).

    The heuristic searches one split point (replicate the hottest prefix
    everywhere, partition the warm band).  §6.3 notes it matches well on
    uniform fully-connected platforms but "cannot be generalized to
    non-uniform platforms" — so we compare on Server A (uniform) and
    Server B (DGX-1, non-uniform with unconnected pairs).
    """
    from repro.core.policy import hot_replicate_warm_partition_policy
    from repro.hardware.platform import server_b

    result = ExperimentResult(
        "heuristic-vs-solver",
        "Hot-replicate/warm-partition heuristic [39] vs UGache's MILP",
    )
    for platform in (server_a(), server_b()):
        for dataset in ("pa", "cf"):
            ctx = gnn_cell(platform, dataset, "sage-sup", cache_ratio=0.08).context
            best_heuristic = np.inf
            best_frac = 0.0
            for frac in np.linspace(0.0, 1.0, 11):
                placement = hot_replicate_warm_partition_policy(
                    ctx.hotness, ctx.capacity_entries, platform.num_gpus, float(frac)
                )
                t = evaluate_placement(
                    platform, placement, ctx.hotness, ctx.entry_bytes,
                    Mechanism.FACTORED,
                ).time
                if t < best_heuristic:
                    best_heuristic, best_frac = t, float(frac)
            solved = solve_policy(
                platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes,
                BENCH_SOLVER,
            ).realize()
            solver_time = evaluate_placement(
                platform, solved, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
            ).time
            result.add(
                platform=platform.name,
                dataset=dataset,
                heuristic_best_ms=_ms(best_heuristic),
                heuristic_replicate_frac=best_frac,
                ugache_ms=_ms(solver_time),
                solver_advantage=best_heuristic / solver_time
                if solver_time > 0 else None,
            )
    result.notes.append(
        "the heuristic needs a uniform fully-connected platform; the MILP "
        "adapts to DGX-1's non-uniform links and unconnected pairs (§6.3)"
    )
    return result


def misc_generalization() -> ExperimentResult:
    """UGache beyond the paper's testbeds: DGX-2 (16 GPU) and PCIe-only.

    §8.1 frames the three servers as a generalization study; this
    extension pushes further: a 16-GPU switch box (thin 1/15 fair shares)
    and a commodity box with no NVLink at all.  The solver must adapt its
    replication factor to each regime without any platform-specific code.
    """
    from repro.core.evaluate import hit_rates as _hit_rates
    from repro.hardware.platform import dgx2, pcie_only
    from repro.utils.stats import zipf_pmf

    result = ExperimentResult(
        "generalization", "Solved policies on out-of-paper platforms"
    )
    entries = 40_000
    hotness = zipf_pmf(entries, 1.2) * 200_000
    entry_bytes = 512
    # Coarser blocks + generous limit: the 16-GPU instance has ~4x the
    # variables of Server C and must never hit the time limit mid-suite.
    config = SolverConfig(coarse_block_frac=0.02, time_limit=300.0)
    for platform in (server_a(), server_c(), dgx2(), pcie_only()):
        capacity = int(0.06 * entries)
        solved = solve_policy(
            platform, hotness, capacity, entry_bytes, config
        )
        placement = solved.realize()
        hits = _hit_rates(platform, placement, hotness)
        ug_time = evaluate_placement(
            platform, placement, hotness, entry_bytes, Mechanism.FACTORED
        ).time
        rep_time = evaluate_placement(
            platform,
            replication_policy(hotness, capacity, platform.num_gpus),
            hotness,
            entry_bytes,
            Mechanism.FACTORED,
        ).time
        part_time = evaluate_placement(
            platform,
            partition_policy(hotness, capacity, platform.num_gpus),
            hotness,
            entry_bytes,
            Mechanism.FACTORED,
        ).time
        result.add(
            platform=platform.name,
            gpus=platform.num_gpus,
            replication_factor=placement.replication_factor(),
            local_hit_pct=100 * hits.local,
            global_hit_pct=100 * hits.global_hit,
            ugache_ms=_ms(ug_time),
            replication_ms=_ms(rep_time),
            partition_ms=_ms(part_time),
        )
    result.notes.append(
        "no NVLink -> the solver converges to pure replication; thin "
        "switch shares -> it replicates more than on Server C"
    )
    return result


def misc_model_agreement() -> ExperimentResult:
    """Solver estimate vs simulator across a randomized sweep."""
    from repro.bench.validation import validate_model_agreement

    report = validate_model_agreement(
        [server_a(), platform_by_name("server-b"), server_c()],
        num_entries=2000,
        solver=SolverConfig(coarse_block_frac=0.02),
    )
    result = ExperimentResult(
        "model-agreement", "Solver time estimate vs simulated extraction time"
    )
    for s in report.samples:
        result.add(
            platform=s.platform,
            alpha=s.alpha,
            cache_ratio=s.cache_ratio,
            estimated_ms=_ms(s.estimated_time),
            simulated_ms=_ms(s.simulated_time),
            rel_error_pct=100 * s.relative_error,
        )
    result.notes.append(
        f"mean |error| {100 * report.mean_abs_error:.1f}%, "
        f"worst {100 * report.worst_abs_error:.1f}%"
    )
    return result


def misc_measured_vs_expected() -> ExperimentResult:
    """Replayed batches vs the expected-value pricing used by the figures.

    Every figure prices placements from expected per-source volumes; this
    experiment replays actual sampled batches and compares the measured
    mean extraction time with the expectation, per workload type.
    """
    from repro.bench.contexts import GNN_BATCH_SIZE
    from repro.bench.runner import replay_workload
    from repro.datasets.gnn_datasets import build_gnn_dataset
    from repro.gnn.workload import GnnWorkload

    result = ExperimentResult(
        "measured-vs-expected",
        "Replayed batch timings vs expected-value pricing (Server C)",
    )
    platform = server_c()

    # GNN: supervised SAGE over the PA stand-in.
    cell = gnn_cell(platform, "pa", "sage-sup", cache_ratio=0.06)
    ctx = cell.context
    solved = solve_policy(
        platform, ctx.hotness, ctx.capacity_entries, ctx.entry_bytes, BENCH_SOLVER
    ).realize()
    expected = evaluate_placement(
        platform, solved, ctx.hotness, ctx.entry_bytes, Mechanism.FACTORED
    ).time
    ds = build_gnn_dataset("pa")
    workload = GnnWorkload(
        ds.graph, ds.train_ids, "sage-sup",
        batch_size=GNN_BATCH_SIZE, num_gpus=platform.num_gpus,
    )
    stats = replay_workload(
        platform, solved, workload.epoch(seed=123), ctx.entry_bytes,
        max_iterations=8,
    )
    result.add(
        workload="sage-sup/pa",
        iterations=stats.iterations,
        expected_ms=_ms(expected),
        measured_mean_ms=_ms(stats.mean_time),
        measured_p99_ms=_ms(stats.p99_time),
        bias_pct=100 * (stats.mean_time - expected) / expected,
    )

    # DLR: DLRM over SYN-A.
    dcell = dlr_cell(platform, "syn-a", "dlrm")
    dctx = dcell.context
    dsolved = solve_policy(
        platform, dctx.hotness, dctx.capacity_entries, dctx.entry_bytes, BENCH_SOLVER
    ).realize()
    dexpected = evaluate_placement(
        platform, dsolved, dctx.hotness, dctx.entry_bytes, Mechanism.FACTORED
    ).time
    from repro.datasets.dlr_datasets import dlr_spec as _dlr_spec

    dworkload = _dlr_spec("syn-a").workload(num_gpus=platform.num_gpus)
    dstats = replay_workload(
        platform, dsolved, dworkload.batches(seed=5), dctx.entry_bytes,
        max_iterations=8,
    )
    result.add(
        workload="dlrm/syn-a",
        iterations=dstats.iterations,
        expected_ms=_ms(dexpected),
        measured_mean_ms=_ms(dstats.mean_time),
        measured_p99_ms=_ms(dstats.p99_time),
        bias_pct=100 * (dstats.mean_time - dexpected) / dexpected,
    )
    result.notes.append(
        "DLR replay is unbiased (<1%); GNN replay runs hotter than the "
        "expectation because batch time is a max over 8 GPUs and GNN "
        "batches have high per-GPU variance (Jensen gap) — the figure "
        "drivers share this bias across all systems, so comparisons hold"
    )
    return result


def misc_event_sim_agreement() -> ExperimentResult:
    """Fluid analytic models vs the chunk-level discrete simulator.

    The §5 congestion fixed point and the factored padding estimate were
    both derived analytically; this experiment replays representative
    demands through an independent event-driven simulation and reports
    the relative differences.
    """
    from repro.sim.event_sim import (
        simulate_factored_event_driven,
        simulate_naive_event_driven,
    )
    from repro.sim.mechanisms import (
        GpuDemand,
        factored_extraction,
        naive_peer_extraction,
    )
    from repro.hardware.platform import HOST

    result = ExperimentResult(
        "event-sim", "Analytic extraction models vs discrete event simulation"
    )
    cases = {
        "balanced": {0: 40e6, 1: 20e6, 2: 10e6, HOST: 5e6},
        "host-heavy": {0: 10e6, HOST: 30e6},
        "remote-heavy": {0: 5e6, 1: 30e6, 2: 30e6, 3: 30e6},
        "local-only": {0: 100e6},
    }
    for platform in (server_a(), server_c()):
        for label, volumes in cases.items():
            demand = GpuDemand(dst=0, volumes=volumes)
            an_f = factored_extraction(platform, demand).time
            ev_f = simulate_factored_event_driven(
                platform, demand, chunk_bytes=16 * 1024
            ).total_time
            readers = {s: 1 for s in volumes if s not in (0, HOST)}
            an_n = naive_peer_extraction(platform, demand, readers).time
            ev_n = simulate_naive_event_driven(
                platform, demand, chunk_bytes=16 * 1024,
                readers_per_source=readers,
            ).total_time
            result.add(
                platform=platform.name,
                case=label,
                factored_analytic_ms=_ms(an_f),
                factored_event_ms=_ms(ev_f),
                factored_err_pct=100 * abs(ev_f - an_f) / max(an_f, 1e-12),
                naive_analytic_ms=_ms(an_n),
                naive_event_ms=_ms(ev_n),
                naive_err_pct=100 * abs(ev_n - an_n) / max(an_n, 1e-12),
            )
    return result
