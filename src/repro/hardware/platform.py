"""Multi-GPU platform model: GPUs + interconnect + host memory.

A :class:`Platform` is the single hardware object the rest of the library
consumes.  It answers three questions for any (destination GPU, source
location) pair:

* ``bandwidth(dst, src)`` — bytes/second the path sustains for one reader;
* ``tolerance(dst, src)`` — how many SMs can read concurrently before the
  link congests (Figure 6's plateau onset);
* ``cost_per_byte(dst, src)`` — the solver's ``T_{i←j}`` coefficient.

Source locations are integers: GPU ids ``0..G-1`` plus the sentinel
:data:`HOST` (= -1) for host DRAM reached over PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.spec import GPUSpec, a100_80gb, v100_16gb, v100_32gb
from repro.hardware.topology import (
    Topology,
    TopologyKind,
    dgx1_8gpu,
    hardwired_fully_connected,
    nvswitch,
)
from repro.utils.units import GIB, gbps

#: Sentinel source id for host DRAM (reached over PCIe).
HOST: int = -1

#: The one dtype every bulk source-location array uses (the location
#: table's lookup results, the cache's dense ``source_map``, the
#: extractor's replica search).  Must hold :data:`HOST` plus every GPU id
#: the packed location format supports (15-bit sources); widen it here —
#: and only here — if a platform ever exceeds that.
SOURCE_DTYPE = np.int16


@dataclass(frozen=True)
class Platform:
    """A single machine with ``G`` identical GPUs, an interconnect and host DRAM.

    Attributes:
        name: display name, e.g. ``"server-c"``.
        gpu: spec shared by all GPUs (the paper's testbeds are homogeneous).
        topology: inter-GPU fabric.
        host_memory_bytes: host DRAM capacity.
        pcie_bandwidth: sustained host→GPU extraction bandwidth over PCIe,
            bytes/second.  The paper's Figure 6 shows host extraction
            plateauing below 10% of SMs at roughly PCIe wire speed.
    """

    name: str
    gpu: GPUSpec
    topology: Topology
    host_memory_bytes: int = 512 * GIB
    pcie_bandwidth: float = gbps(16)

    def __post_init__(self) -> None:
        if self.pcie_bandwidth <= 0:
            raise ValueError("PCIe bandwidth must be positive")
        if self.host_memory_bytes <= 0:
            raise ValueError("host memory must be positive")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        return self.topology.num_gpus

    @property
    def gpu_ids(self) -> range:
        return range(self.num_gpus)

    def sources_for(self, dst: int) -> list[int]:
        """All source locations GPU ``dst`` can extract from.

        Order: local first, then NVLink-reachable peers, then host.
        Unconnected peers are excluded — reads to them are serviced from
        host instead (the paper drops the corresponding ``t^j_i`` terms).
        """
        self._check_gpu(dst)
        remote = [j for j in self.topology.peers(dst)]
        return [dst, *remote, HOST]

    def is_connected(self, dst: int, src: int) -> bool:
        """Whether ``dst`` can read ``src`` without falling back to PCIe."""
        self._check_gpu(dst)
        if src == HOST or src == dst:
            return True
        self._check_gpu(src)
        return self.topology.connected(dst, src)

    # ------------------------------------------------------------------
    # Bandwidth model
    # ------------------------------------------------------------------
    def bandwidth(self, dst: int, src: int) -> float:
        """Peak path bandwidth for GPU ``dst`` reading from ``src``, bytes/s.

        For a switch fabric this is the fair share ``outbound / (G - 1)``:
        UGache's factored extraction dedicates exactly that slice per
        reader so shares never overlap (§5.3); it is also the sustainable
        long-run rate when all GPUs extract simultaneously, which is the
        regime every experiment in §8 runs in.
        """
        self._check_gpu(dst)
        if src == dst:
            return self.gpu.local_bandwidth
        if src == HOST:
            return self.pcie_bandwidth
        self._check_gpu(src)
        if not self.topology.connected(dst, src):
            return 0.0
        if self.topology.kind is TopologyKind.SWITCH:
            return self.topology.outbound_bandwidth(src) / (self.num_gpus - 1)
        return self.topology.pair_bandwidth(dst, src)

    def peak_pair_bandwidth(self, dst: int, src: int) -> float:
        """Uncontended single-flow bandwidth (used by the congestion model).

        Unlike :meth:`bandwidth`, on a switch platform a *lone* reader can
        pull the source's full outbound bandwidth.
        """
        self._check_gpu(dst)
        if src == dst:
            return self.gpu.local_bandwidth
        if src == HOST:
            return self.pcie_bandwidth
        self._check_gpu(src)
        if not self.topology.connected(dst, src):
            return 0.0
        return self.topology.pair_bandwidth(dst, src)

    def tolerance(self, dst: int, src: int) -> int:
        """Number of SMs of ``dst`` that saturate the path to ``src``.

        This is the plateau onset of Figure 6: a link of bandwidth ``B``
        tolerates ``B / per_core_bandwidth`` concurrent SMs; additional
        SMs stall.  Local memory tolerates all SMs by construction.
        """
        bw = self.bandwidth(dst, src)
        if bw <= 0:
            return 0
        cores = int(round(bw / self.gpu.per_core_bandwidth))
        return max(1, min(cores, self.gpu.num_cores))

    def cost_per_byte(self, dst: int, src: int) -> float:
        """The solver coefficient ``T_{i←j}``: seconds per byte extracted.

        Infinite (``float('inf')``) for unconnected pairs; the solver drops
        those terms.
        """
        bw = self.bandwidth(dst, src)
        if bw <= 0:
            return float("inf")
        return 1.0 / bw

    # ------------------------------------------------------------------
    # Capacity helpers
    # ------------------------------------------------------------------
    def cache_capacity_entries(
        self, entry_bytes: int, cache_ratio: float, total_entries: int
    ) -> int:
        """Entries one GPU may cache at ``cache_ratio`` of the table.

        The paper sweeps "cache ratio per GPU" = fraction of all entries
        each GPU can hold; this converts it to a per-GPU entry budget.
        """
        if entry_bytes <= 0:
            raise ValueError("entry size must be positive")
        if not 0 <= cache_ratio <= 1:
            raise ValueError(f"cache ratio must be in [0, 1], got {cache_ratio}")
        return int(cache_ratio * total_entries)

    def max_cache_ratio(self, entry_bytes: int, total_entries: int, reserved_bytes: int = 0) -> float:
        """Largest per-GPU cache ratio that fits in GPU memory."""
        usable = self.gpu.memory_bytes - reserved_bytes
        if usable <= 0:
            return 0.0
        return min(1.0, usable / (entry_bytes * total_entries))

    def _check_gpu(self, i: int) -> None:
        if not 0 <= i < self.num_gpus:
            raise ValueError(f"GPU id {i} out of range for {self.num_gpus}-GPU platform")


# ----------------------------------------------------------------------
# Paper testbed presets (§8.1)
# ----------------------------------------------------------------------
def server_a() -> Platform:
    """Server A: 4×V100-16GB, hard-wired fully connected, 384 GB host."""
    return Platform(
        name="server-a",
        gpu=v100_16gb(),
        topology=hardwired_fully_connected(4, lanes_per_gpu=6),
        host_memory_bytes=384 * GIB,
        pcie_bandwidth=gbps(16),
    )


def server_b() -> Platform:
    """Server B: 8×V100-32GB on a DGX-1 board, 724 GB host."""
    return Platform(
        name="server-b",
        gpu=v100_32gb(),
        topology=dgx1_8gpu(),
        host_memory_bytes=724 * GIB,
        pcie_bandwidth=gbps(16),
    )


def server_c() -> Platform:
    """Server C: 8×A100-80GB behind NVSwitch, 1 TB host."""
    return Platform(
        name="server-c",
        gpu=a100_80gb(),
        topology=nvswitch(8, lanes_per_gpu=12),
        host_memory_bytes=1024 * GIB,
        pcie_bandwidth=gbps(24),
    )


def single_gpu(gpu: GPUSpec | None = None, pcie_bandwidth: float = gbps(24)) -> Platform:
    """A one-GPU platform (Table 1's testbed) — no interconnect.

    The topology is an empty 1×1 lane matrix: the only sources are local
    HBM and host DRAM over PCIe.
    """
    import numpy as np

    spec = gpu or a100_80gb()
    topo = Topology(
        kind=TopologyKind.HARDWIRED,
        lane_counts=np.zeros((1, 1), dtype=np.int64),
        lane_bandwidth=spec.nvlink_lane_bandwidth,
        outbound_lanes=0,
        name="single-gpu",
    )
    return Platform(
        name="single-gpu",
        gpu=spec,
        topology=topo,
        pcie_bandwidth=pcie_bandwidth,
    )


def dgx2() -> Platform:
    """A DGX-2-like box: 16×V100-32GB behind NVSwitch (beyond the paper's
    testbeds; used by the generalization benchmark)."""
    return Platform(
        name="dgx2",
        gpu=v100_32gb(),
        topology=nvswitch(16, lanes_per_gpu=6),
        host_memory_bytes=1536 * GIB,
        pcie_bandwidth=gbps(16),
    )


def pcie_only(num_gpus: int = 4) -> Platform:
    """A commodity multi-GPU box with no NVLink at all.

    Every GPU pair is unconnected, so the only sources are local HBM and
    host DRAM — the degenerate platform where any partition policy
    collapses and UGache must fall back to pure replication.
    """
    import numpy as np

    spec = v100_16gb()
    topo = Topology(
        kind=TopologyKind.HARDWIRED,
        lane_counts=np.zeros((num_gpus, num_gpus), dtype=np.int64),
        lane_bandwidth=spec.nvlink_lane_bandwidth,
        outbound_lanes=0,
        name=f"pcie-only-{num_gpus}gpu",
    )
    return Platform(
        name=f"pcie-only-{num_gpus}gpu",
        gpu=spec,
        topology=topo,
        pcie_bandwidth=gbps(16),
    )


#: Registry used by benchmarks to iterate the paper's testbeds.
PRESETS = {
    "server-a": server_a,
    "server-b": server_b,
    "server-c": server_c,
}

#: Extension platforms beyond the paper (generalization benchmark).
EXTRA_PLATFORMS = {
    "dgx2": dgx2,
    "pcie-only": pcie_only,
}
