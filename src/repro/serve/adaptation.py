"""Online drift adaptation: estimator → detector → re-solve → guarded swap.

:class:`DriftAdapter` closes the loop the paper leaves open (§2 assumes
daily hot sets are "highly alike"): a
:class:`~repro.core.drift_adapt.StreamingHotnessEstimator` is fed from
the serving hot path (with bounded per-request sampling overhead), a
:class:`~repro.core.drift_adapt.DriftDetector` periodically compares the
live estimate against the solved policy's snapshot, and when drift
crosses threshold the adapter triggers an *incremental* re-solve —
warm-starting :func:`~repro.core.solver.solve_policy_with_fallback` from
the last :class:`~repro.core.solver.SolvedPolicy` so only entries whose
hotness class changed move — and lands the result through the existing
:class:`~repro.serve.policy_manager.PolicyManager`
drain → verify → p99-guardrail path.

Everything the adapter did is kept on :attr:`DriftAdapter.events` (and
the detector's tape), which the soak report surfaces and the drift
golden fixture pins.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.drift_adapt import (
    DriftDetector,
    DriftDetectorConfig,
    StreamingHotnessEstimator,
)
from repro.core.solver import PolicyOutcome, SolvedPolicy
from repro.obs import get_registry
from repro.serve.policy_manager import PolicyManager, SwapReport
from repro.utils.logging import get_logger

logger = get_logger("serve.adaptation")

__all__ = ["AdaptationConfig", "AdaptationEvent", "DriftAdapter"]


@dataclass(frozen=True)
class AdaptationConfig:
    """Knobs of the online adaptation loop.

    Attributes:
        decay: estimator decay per recorded batch (window half-life
            ``log(0.5)/log(decay)`` batches).
        sample_every: record every Nth observed request — the bounded
            per-request overhead knob.  Skipped requests cost one
            counter increment; 1 records everything.
        check_every: detector cadence, in *recorded* (post-sampling)
            requests.  Between checks :meth:`DriftAdapter.maybe_adapt`
            is a cheap counter read.
        estimator_prior: cold-start hotness answered before the first
            recorded batch (see
            :class:`~repro.core.drift_adapt.StreamingHotnessEstimator`).
        hotness_scale: multiplier from the estimator's per-batch scale
            to the solver's per-iteration scale (the soak passes the GPU
            count: every GPU draws one batch per iteration).
        warm_max_profile_shift: forwarded to the solver's incremental
            rung; larger tolerates noisier live estimates.
        top_frac / jaccard_floor / corr_floor / hysteresis /
        cooldown_checks / min_batches: detector knobs, see
            :class:`~repro.core.drift_adapt.DriftDetectorConfig`.
    """

    decay: float = 0.95
    sample_every: int = 1
    check_every: int = 8
    estimator_prior: float | None = None
    hotness_scale: float = 1.0
    warm_max_profile_shift: float = 0.5
    top_frac: float = 0.01
    jaccard_floor: float = 0.5
    corr_floor: float = 0.2
    hysteresis: int = 2
    cooldown_checks: int = 8
    min_batches: int = 16

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        if self.check_every < 1:
            raise ValueError("check_every must be at least 1")
        if self.hotness_scale <= 0:
            raise ValueError("hotness scale must be positive")

    def detector_config(self) -> DriftDetectorConfig:
        return DriftDetectorConfig(
            top_frac=self.top_frac,
            jaccard_floor=self.jaccard_floor,
            corr_floor=self.corr_floor,
            hysteresis=self.hysteresis,
            cooldown_checks=self.cooldown_checks,
            min_batches=self.min_batches,
        )


@dataclass(frozen=True)
class AdaptationEvent:
    """One step of the adaptation loop, for the report and the golden."""

    at: float
    #: "detect" | "resolve" | "swap" | "rollback" | "skip"
    kind: str
    detail: str = ""
    version: int = 0

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "detail": self.detail,
            "version": self.version,
        }


class DriftAdapter:
    """Wires streaming hotness estimation into guarded policy re-solves.

    The adapter is attached to the :class:`~repro.serve.runtime.ServingRuntime`
    (``runtime.adapter``), which calls :meth:`observe` for every
    *offered* request at submit time — before admission control, so a
    drifted policy shedding most traffic cannot starve the estimator of
    the very evidence that would fix it; the soak loop calls
    :meth:`maybe_adapt` at event boundaries.  ``observe`` is hot-path
    safe (a lock-guarded counter
    plus, on sampled requests, one decayed ``bincount``) and is called
    concurrently from per-GPU workers; ``maybe_adapt`` must be called
    from the single control thread that owns policy swaps (the same
    thread that calls :meth:`PolicyManager.swap` today).
    """

    def __init__(
        self,
        manager: PolicyManager,
        capacity_entries: int | list[int],
        snapshot_hotness: np.ndarray,
        config: AdaptationConfig | None = None,
        warm: SolvedPolicy | None = None,
    ) -> None:
        self.config = config or AdaptationConfig()
        self._manager = manager
        self._capacity = capacity_entries
        snapshot = np.asarray(snapshot_hotness, dtype=np.float64)
        self.estimator = StreamingHotnessEstimator(
            len(snapshot),
            decay=self.config.decay,
            prior=self.config.estimator_prior,
        )
        self.detector = DriftDetector(snapshot, self.config.detector_config())
        #: last successful :class:`SolvedPolicy`, the warm-start seed for
        #: the next incremental re-solve.
        self.warm = warm
        self.events: list[AdaptationEvent] = []
        self.detections = 0
        self.resolves = 0
        self.swaps_landed = 0
        self.rollbacks = 0
        self._observed = 0
        self._recorded_since_check = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def observe(self, gpu: int, keys: np.ndarray, now: float) -> None:
        """Account one served request's key batch (sampled)."""
        with self._lock:
            self._observed += 1
            take = self._observed % self.config.sample_every == 0
            if take:
                self._recorded_since_check += 1
        if take:
            self.estimator.record(keys)

    @property
    def observed(self) -> int:
        with self._lock:
            return self._observed

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def _due(self) -> bool:
        with self._lock:
            if self._recorded_since_check < self.config.check_every:
                return False
            self._recorded_since_check = 0
            return True

    def live_hotness(self) -> np.ndarray:
        """The estimator's view at the solver's hotness scale."""
        return self.estimator.hotness() * self.config.hotness_scale

    def maybe_adapt(
        self, now: float, drain=None, probe=None
    ) -> SwapReport | None:
        """Check for drift and, when it fires, re-solve and swap.

        Cheap between cadence boundaries (one lock-guarded counter
        read).  Returns the :class:`SwapReport` when a swap was
        attempted, ``None`` otherwise.
        """
        if not self._due():
            return None
        hot, batches = self.estimator.snapshot()
        live = hot * self.config.hotness_scale
        score = self.detector.check(live, at=now, batches=batches)
        if not score.fired:
            return None

        reg = get_registry()
        self.detections += 1
        self.events.append(
            AdaptationEvent(
                at=now,
                kind="detect",
                detail=(
                    f"jaccard={score.jaccard:.3f} corr={score.rank_corr:.3f}"
                ),
                version=self._manager.version,
            )
        )

        outcome: PolicyOutcome = self._manager.solve(
            live,
            self._capacity,
            warm=self.warm,
            warm_max_profile_shift=self.config.warm_max_profile_shift,
        )
        self.resolves += 1
        if reg.enabled:
            reg.counter("adapt.resolves", source=outcome.source).inc()
        self.events.append(
            AdaptationEvent(
                at=now,
                kind="resolve",
                detail=outcome.source,
                version=self._manager.version,
            )
        )

        report = self._manager.swap(
            outcome, now=now, drain=drain, probe=probe, stale_baseline=True
        )
        if report.swapped:
            self.swaps_landed += 1
            if outcome.solved is not None:
                self.warm = outcome.solved
            # The swapped placement serves the live estimate — it is the
            # new normal the detector must measure divergence from.
            self.detector.rebase(live)
            kind = "swap"
        elif report.rolled_back:
            self.rollbacks += 1
            kind = "rollback"
        else:
            kind = "skip"
        if reg.enabled:
            reg.counter("adapt.swaps", result=kind).inc()
        self.events.append(
            AdaptationEvent(
                at=now, kind=kind, detail=report.reason, version=report.version
            )
        )
        logger.info(
            "drift adaptation at t=%.3f: %s (%s re-solve, v%d)",
            now, kind, outcome.source, report.version,
        )
        return report
