"""Smoke tests for the cheap experiment drivers.

The expensive sweeps (Figures 10-16) are exercised by ``pytest
benchmarks/``; here only the seconds-scale drivers run, to keep the unit
suite fast while guaranteeing every driver module stays importable and the
fast ones produce structurally valid results.
"""

import pytest

from repro.bench import experiments
from repro.bench.harness import render_table


def test_all_drivers_importable():
    drivers = [
        experiments.table1_breakdown,
        experiments.fig2_policy_motivation,
        experiments.fig4_mechanism_motivation,
        experiments.fig6_core_tolerance,
        experiments.fig10_end_to_end,
        experiments.fig11_extraction_time,
        experiments.fig12_incremental,
        experiments.fig13_link_utilization,
        experiments.fig14_access_split,
        experiments.fig15_time_split,
        experiments.fig16_vs_optimal,
        experiments.fig17_refresh,
        experiments.table3_datasets,
        experiments.misc_solver_scale,
        experiments.ablation_padding,
        experiments.ablation_blocking,
    ]
    assert all(callable(d) for d in drivers)


def test_table3_rows_render():
    result = experiments.table3_datasets()
    assert len(result.rows) == 6
    text = render_table(result)
    assert "Criteo-TB" in text


def test_fig6_curves():
    result = experiments.fig6_core_tolerance()
    platforms = {row["platform"] for row in result.rows}
    assert platforms == {"server-a", "server-c"}
    for row in result.rows:
        assert row["plateau_gbps"] > 0


def test_fig17_refresh_bounds():
    result = experiments.fig17_refresh()
    assert len(result.rows) == 2
    for row in result.rows:
        assert 0 < row["impact_pct"] <= 10.5
        assert row["latency_during_ms"] > row["latency_before_ms"]


@pytest.mark.slow
def test_table1_structure():
    result = experiments.table1_breakdown()
    components = [row["component"] for row in result.rows]
    assert components == [
        "MLP (dense+sample)",
        "EMT (no cache)",
        "EMT (w/ cache)",
        "Total (w/ cache)",
    ]
