"""DLR multi-table inference workloads."""

import numpy as np
import pytest

from repro.dlr.workload import DlrWorkload


@pytest.fixture
def workload():
    return DlrWorkload(
        table_sizes=(100, 200, 50), alpha=1.2, batch_size=64, num_gpus=2, seed=0
    )


class TestConstruction:
    def test_offsets(self, workload):
        assert workload.table_offsets == (0, 100, 300)
        assert workload.num_entries == 350
        assert workload.num_tables == 3

    def test_keys_per_request(self, workload):
        assert workload.keys_per_request == 3

    def test_rejects_empty_tables(self):
        with pytest.raises(ValueError):
            DlrWorkload(table_sizes=(), alpha=1.0)

    def test_rejects_zero_table(self):
        with pytest.raises(ValueError):
            DlrWorkload(table_sizes=(10, 0), alpha=1.0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            DlrWorkload(table_sizes=(10,), alpha=-1.0)


class TestBatches:
    def test_batch_shape(self, workload):
        batch = workload.take_batches(1)[0]
        assert len(batch) == 2  # one per GPU
        assert len(batch[0]) == 64 * 3  # batch × tables

    def test_keys_stay_in_their_table(self, workload):
        batch = workload.take_batches(1)[0][0].reshape(3, 64)
        for t, (lo, size) in enumerate(zip(workload.table_offsets, workload.table_sizes)):
            assert batch[t].min() >= lo
            assert batch[t].max() < lo + size

    def test_deterministic(self, workload):
        a = workload.take_batches(2, seed=3)
        b = workload.take_batches(2, seed=3)
        for ba, bb in zip(a, b):
            for ka, kb in zip(ba, bb):
                assert np.array_equal(ka, kb)

    def test_gpus_get_different_keys(self, workload):
        batch = workload.take_batches(1)[0]
        assert not np.array_equal(batch[0], batch[1])

    def test_batches_iterate_indefinitely(self, workload):
        assert len(workload.take_batches(5)) == 5


class TestHotness:
    def test_shape_and_mass(self, workload):
        hot = workload.hotness()
        assert hot.shape == (350,)
        # One key per table per request: expected accesses per batch =
        # batch_size per table.
        assert hot[:100].sum() == pytest.approx(64)
        assert hot.sum() == pytest.approx(64 * 3)

    def test_hot_entries_permuted(self):
        a = DlrWorkload(table_sizes=(1000,), alpha=1.3, batch_size=8, seed=0)
        b = DlrWorkload(table_sizes=(1000,), alpha=1.3, batch_size=8, seed=1)
        assert not np.array_equal(a.hotness(), b.hotness())

    def test_higher_alpha_more_skew(self):
        lo = DlrWorkload(table_sizes=(1000,), alpha=0.8, batch_size=8).hotness()
        hi = DlrWorkload(table_sizes=(1000,), alpha=1.4, batch_size=8).hotness()
        assert hi.max() > lo.max()

    def test_hotness_matches_empirical_frequency(self):
        wl = DlrWorkload(table_sizes=(50,), alpha=1.2, batch_size=512, num_gpus=1, seed=4)
        analytic = wl.hotness()
        counts = np.zeros(50)
        n_batches = 40
        for batch in wl.take_batches(n_batches, seed=9):
            counts += np.bincount(batch[0], minlength=50)
        empirical = counts / n_batches
        # Hot entries' empirical frequency tracks the analytic pmf.
        top = np.argsort(-analytic)[:5]
        assert np.allclose(empirical[top], analytic[top], rtol=0.2)
