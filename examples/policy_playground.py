"""Cache-policy playground: sweep skew, capacity and platform (mini Fig 2/12).

Shows how the solved policy morphs between partition-like and
replication-like as workload skew and cache capacity change — the central
trade-off UGache's MILP navigates (§6) — and prints the extraction-time
table for every (policy × mechanism) combination at one operating point.

Run:  python examples/policy_playground.py [num_entries]
"""

import sys

from repro import Mechanism, server_b, server_c, solve_policy
from repro.core.evaluate import evaluate_placement, hit_rates
from repro.core.policy import partition_policy, replication_policy
from repro.core.solver import SolverConfig
from repro.utils.stats import zipf_pmf

ENTRY_BYTES = 512
FAST = SolverConfig(coarse_block_frac=0.02)


def sweep(platform, num_entries: int) -> None:
    print(f"\n=== {platform.name}: how the solved policy adapts ===")
    print(f"{'skew α':>7} {'ratio':>6} {'replication factor':>19} "
          f"{'local hit':>10} {'global hit':>11}")
    for alpha in (0.6, 1.1, 1.6):
        hotness = zipf_pmf(num_entries, alpha) * 100_000
        for ratio in (0.03, 0.10, 0.25):
            capacity = int(ratio * num_entries)
            placement = solve_policy(
                platform, hotness, capacity, ENTRY_BYTES, FAST
            ).realize()
            hits = hit_rates(platform, placement, hotness)
            print(f"{alpha:7.1f} {ratio:6.0%} "
                  f"{placement.replication_factor():19.2f} "
                  f"{hits.local:10.1%} {hits.global_hit:11.1%}")


def matrix(platform, num_entries: int) -> None:
    hotness = zipf_pmf(num_entries, 1.2) * 100_000
    capacity = int(0.08 * num_entries)
    policies = {
        "replication": replication_policy(hotness, capacity, platform.num_gpus),
        "partition": partition_policy(hotness, capacity, platform.num_gpus),
        "ugache": solve_policy(platform, hotness, capacity, ENTRY_BYTES, FAST).realize(),
    }
    print(f"\n=== {platform.name}: policy x mechanism extraction time "
          f"(zipf 1.2, 8% ratio, simulated ms) ===")
    header = f"{'policy':>12}" + "".join(f"{m.value:>12}" for m in Mechanism)
    print(header)
    for name, placement in policies.items():
        cells = []
        for mech in Mechanism:
            t = evaluate_placement(
                platform, placement, hotness, ENTRY_BYTES, mech
            ).time
            cells.append(f"{t * 1e3:12.3f}")
        print(f"{name:>12}" + "".join(cells))


def main() -> None:
    num_entries = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    for platform in (server_c(), server_b()):
        sweep(platform, num_entries)
        matrix(platform, num_entries)
    print("\nreading the tables: higher skew or more capacity -> the solver "
          "replicates more; low skew/capacity -> it partitions; and the "
          "factored mechanism dominates either naive peer access or "
          "message passing for every policy.")


if __name__ == "__main__":
    main()
