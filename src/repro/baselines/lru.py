"""An actual online LRU embedding cache — the HPS baseline's machinery.

HPS [43] maintains its per-GPU cache with LRU eviction updated on every
lookup.  The paper's comparison attributes part of UGache's win over HPS
to exactly this bookkeeping ("static design with no online eviction
cost"), so the baseline deserves a real implementation, not just a cost
constant:

* :class:`LruCache` — an O(1) LRU over embedding keys with hit/miss/evict
  accounting (doubly linked list over a dict, as the real cache does on
  GPU with a lock-free variant);
* :func:`steady_state_overlap` — measures how closely LRU steady-state
  content matches the frequency-top-K set under a static skewed workload,
  which is the modelling assumption behind
  :class:`repro.baselines.systems.HpsSystem` using a replication placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: int) -> None:
        self.key = key
        self.prev: _Node | None = None
        self.next: _Node | None = None


@dataclass
class LruStats:
    """Counters accumulated by an :class:`LruCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LruCache:
    """Least-recently-used cache over integer keys with O(1) operations."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        self._nodes: dict[int, _Node] = {}
        self._head: _Node | None = None  # most recently used
        self._tail: _Node | None = None  # least recently used
        self.stats = LruStats()

    # ------------------------------------------------------------------
    # Intrusive list plumbing
    # ------------------------------------------------------------------
    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _push_front(self, node: _Node) -> None:
        node.next = self._head
        node.prev = None
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: int) -> bool:
        return key in self._nodes

    def access(self, key: int) -> bool:
        """Touch one key; returns True on hit.

        A miss inserts the key, evicting the LRU entry when full (the
        real cache simultaneously fetches the entry from host memory).
        """
        node = self._nodes.get(key)
        if node is not None:
            self.stats.hits += 1
            if node is not self._head:
                self._unlink(node)
                self._push_front(node)
            return True
        self.stats.misses += 1
        if self._capacity == 0:
            return False
        if len(self._nodes) >= self._capacity:
            lru = self._tail
            assert lru is not None
            self._unlink(lru)
            del self._nodes[lru.key]
            self.stats.evictions += 1
        node = _Node(key)
        self._nodes[key] = node
        self._push_front(node)
        return False

    def access_batch(self, keys: np.ndarray) -> int:
        """Touch a key batch in order; returns the number of hits."""
        hits = 0
        for key in np.asarray(keys).ravel():
            if self.access(int(key)):
                hits += 1
        return hits

    def contents(self) -> np.ndarray:
        """Currently cached keys, most recently used first."""
        out = np.empty(len(self._nodes), dtype=np.int64)
        node = self._head
        i = 0
        while node is not None:
            out[i] = node.key
            node = node.next
            i += 1
        return out

    def recency_order(self) -> list[int]:
        return self.contents().tolist()


def steady_state_overlap(
    cache: LruCache,
    hotness: np.ndarray,
    batch_size: int,
    warmup_batches: int,
    seed: int = 0,
) -> float:
    """Fraction of the LRU's steady-state content in the frequency top-K.

    Drives ``warmup_batches`` of iid draws from the (normalized) hotness
    distribution through the cache, then compares its content against the
    hottest ``capacity`` entries.  Under a static skewed distribution this
    overlap is high — the justification for modelling HPS's placement as
    a frequency-based replication cache (§8.1).
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    if hotness.size == 0:
        raise ValueError("hotness must be non-empty")
    if (hotness < 0).any():
        raise ValueError("hotness must be non-negative")
    total = hotness.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("hotness must have positive total mass")
    probs = hotness / total
    rng = np.random.default_rng(seed)
    for _ in range(warmup_batches):
        cache.access_batch(rng.choice(len(probs), size=batch_size, p=probs))
    content = set(cache.contents().tolist())
    if not content:
        return 0.0
    top = set(np.argsort(-hotness)[: cache.capacity].tolist())
    return len(content & top) / len(content)
