"""Shared utilities: unit conversions, deterministic RNG helpers, statistics."""

from repro.utils.units import (
    GB,
    GIB,
    KB,
    MB,
    MS,
    US,
    bytes_to_gb,
    gb_to_bytes,
    gbps,
    seconds_to_ms,
    seconds_to_us,
)
from repro.utils.concurrency import ReadWriteLock
from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.retry import (
    Deadline,
    RetriesExhausted,
    RetryPolicy,
    retry_call,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import (
    geometric_mean,
    normalize,
    weighted_percentile,
    zipf_pmf,
)

__all__ = [
    "ReadWriteLock",
    "GB",
    "GIB",
    "KB",
    "MB",
    "MS",
    "US",
    "bytes_to_gb",
    "gb_to_bytes",
    "gbps",
    "seconds_to_ms",
    "seconds_to_us",
    "enable_console_logging",
    "get_logger",
    "Deadline",
    "RetriesExhausted",
    "RetryPolicy",
    "retry_call",
    "make_rng",
    "spawn_rngs",
    "geometric_mean",
    "normalize",
    "weighted_percentile",
    "zipf_pmf",
]
