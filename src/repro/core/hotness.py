"""Hotness metric (§6.1): per-entry access-frequency estimation.

Hotness of entry ``e`` is the expected number of times one GPU's batch
accesses ``e`` per iteration.  The solver multiplies it by per-byte access
cost to estimate extraction time, so the *scale* matters, not only the
ranking.

Three estimators mirror the paper's options:

* :class:`HotnessTracker` — online counting of sampled requests (what the
  foreground Refresher feeds on, §7.2);
* :func:`presample_hotness` — profile the first epoch / first k batches of
  a workload (GNNLab's pre-sampling, adopted for training workloads);
* :func:`degree_hotness` — approximate GNN access frequency by vertex
  degree (PaGraph's estimator for graph workloads).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class HotnessTracker:
    """Streaming access counter over a fixed entry universe.

    ``record`` accepts raw key batches (duplicates count, as in the
    paper's extraction cost model); ``hotness()`` normalizes to expected
    accesses per recorded batch.
    """

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("entry universe must be non-empty")
        self._counts = np.zeros(num_entries, dtype=np.float64)
        self._batches = 0

    @property
    def num_entries(self) -> int:
        return len(self._counts)

    @property
    def batches_recorded(self) -> int:
        return self._batches

    def record(self, keys: np.ndarray) -> None:
        """Account one batch of accesses (a 1-D integer key array)."""
        keys = np.asarray(keys)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_entries):
            raise ValueError("keys out of range for this tracker")
        self._counts += np.bincount(keys, minlength=self.num_entries)
        self._batches += 1

    def record_many(self, batches: Iterable[np.ndarray]) -> None:
        for keys in batches:
            self.record(keys)

    def counts(self) -> np.ndarray:
        """Raw access counts (copy)."""
        return self._counts.copy()

    def hotness(self) -> np.ndarray:
        """Expected accesses per entry per batch.

        Normalizes the raw counts by ``batches_recorded``.  The
        zero-batch edge is deliberately *loud*: before any batch is
        recorded there is no window to normalize by, and silently
        answering zeros (or ``0/0`` NaNs) would feed the solver a
        hotness vector claiming nothing is ever accessed.  Callers that
        poll on a schedule and may race the first batch should use
        :class:`~repro.core.drift_adapt.StreamingHotnessEstimator` with
        an explicit cold-start ``prior`` (mirroring
        :class:`~repro.serve.queueing.LatencyEstimator`'s
        ``estimator_prior``) instead of catching this.

        Raises:
            RuntimeError: when no batch has been recorded yet.
        """
        if self._batches == 0:
            raise RuntimeError("no batches recorded yet")
        return self._counts / self._batches

    def merge(self, other: "HotnessTracker") -> None:
        """Fold another tracker's counts in (e.g. per-GPU samplers)."""
        if other.num_entries != self.num_entries:
            raise ValueError("trackers cover different entry universes")
        self._counts += other._counts
        self._batches += other._batches

    def reset(self) -> None:
        self._counts[:] = 0.0
        self._batches = 0


def presample_hotness(
    batches: Iterator[np.ndarray], num_entries: int, max_batches: int | None = None
) -> np.ndarray:
    """Estimate hotness by replaying the first batches of a workload.

    The paper (following GNNLab) observes that one profiled epoch predicts
    subsequent epochs; DLR daily traces are likewise stable (§2).
    """
    tracker = HotnessTracker(num_entries)
    for i, keys in enumerate(batches):
        if max_batches is not None and i >= max_batches:
            break
        tracker.record(keys)
    if tracker.batches_recorded == 0:
        raise ValueError("workload produced no batches to presample")
    return tracker.hotness()


def degree_hotness(degrees: np.ndarray, accesses_per_batch: float = 1.0) -> np.ndarray:
    """Degree-proportional hotness for GNN embeddings (§6.1).

    High-degree vertices are proportionally more likely to appear in
    sampled k-hop neighbourhoods; scale so the total expected accesses per
    batch is ``accesses_per_batch`` × number of entries accessed.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if (degrees < 0).any():
        raise ValueError("degrees must be non-negative")
    total = degrees.sum()
    if total <= 0:
        raise ValueError("graph has no edges; degree hotness undefined")
    return degrees / total * accesses_per_batch


def hotness_skew(hotness: np.ndarray) -> float:
    """A scalar skew summary: fraction of accesses covered by the top 1%.

    Used by reports to label datasets "high skew" (PA) vs "low skew" (CF)
    as the paper does in Figure 14.
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    total = hotness.sum()
    if total <= 0:
        return 0.0
    k = max(1, int(0.01 * len(hotness)))
    top = np.sort(hotness)[::-1][:k].sum()
    return float(top / total)
