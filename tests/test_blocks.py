"""Hotness blocking (§6.3, Figure 9)."""

import numpy as np
import pytest

from repro.core.blocks import (
    build_blocks,
    build_uniform_blocks,
    per_entry_blocks,
)
from repro.utils.stats import zipf_pmf


@pytest.fixture
def zipf_hotness():
    return zipf_pmf(10_000, 1.2) * 1000


class TestBuildBlocks:
    def test_blocks_partition_all_entries(self, zipf_hotness):
        blocks = build_blocks(zipf_hotness, num_gpus=8)
        assert blocks.sizes.sum() == len(zipf_hotness)
        assert len(np.unique(blocks.order)) == len(zipf_hotness)

    def test_block_count_stays_small(self, zipf_hotness):
        # §6.3: "UGache decreases E ... to less than one thousand".
        blocks = build_blocks(zipf_hotness, num_gpus=8)
        assert blocks.num_blocks < 1000

    def test_blocks_are_hotness_sorted(self, zipf_hotness):
        blocks = build_blocks(zipf_hotness, num_gpus=4)
        means = blocks.mean_hotness()
        assert (np.diff(means) <= 1e-12).all()

    def test_coarse_cap_respected(self, zipf_hotness):
        frac = 0.005
        blocks = build_blocks(zipf_hotness, num_gpus=4, coarse_frac=frac)
        cap = int(np.ceil(frac * len(zipf_hotness)))
        # Allow +1 for rounding at level boundaries.
        assert blocks.sizes.max() <= cap + 1

    def test_levels_split_into_at_least_n_blocks(self):
        # One hotness level with many entries must yield >= num_gpus blocks.
        hot = np.ones(1000)
        blocks = build_blocks(hot, num_gpus=8, coarse_frac=1.0)
        assert blocks.num_blocks >= 8

    def test_hotness_sums_match(self, zipf_hotness):
        blocks = build_blocks(zipf_hotness, num_gpus=8)
        assert blocks.hotness_sum.sum() == pytest.approx(zipf_hotness.sum())

    def test_zero_hotness_entries_grouped(self):
        hot = np.concatenate([zipf_pmf(100, 1.0), np.zeros(900)])
        blocks = build_blocks(hot, num_gpus=4)
        assert blocks.sizes.sum() == 1000
        # Cold entries land in the final blocks.
        assert blocks.hotness_sum[-1] == 0.0

    def test_entries_accessor(self, zipf_hotness):
        blocks = build_blocks(zipf_hotness, num_gpus=4)
        first = blocks.entries(0)
        assert zipf_hotness[first].min() >= zipf_hotness[blocks.entries(1)].max() - 1e-12

    def test_block_of_inverse(self, zipf_hotness):
        blocks = build_blocks(zipf_hotness, num_gpus=4)
        inverse = blocks.block_of()
        for b in (0, blocks.num_blocks // 2, blocks.num_blocks - 1):
            assert (inverse[blocks.entries(b)] == b).all()

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            build_blocks(np.array([]), 4)
        with pytest.raises(ValueError):
            build_blocks(np.array([-1.0]), 4)
        with pytest.raises(ValueError):
            build_blocks(np.ones(10), 0)
        with pytest.raises(ValueError):
            build_blocks(np.ones(10), 4, coarse_frac=0)


class TestUniformBlocks:
    def test_equal_sizes(self):
        blocks = build_uniform_blocks(zipf_pmf(1000, 1.0), 10)
        assert set(blocks.sizes) == {100}

    def test_single_block(self):
        blocks = build_uniform_blocks(zipf_pmf(100, 1.0), 1)
        assert blocks.num_blocks == 1

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            build_uniform_blocks(np.ones(5), 6)


class TestPerEntryBlocks:
    def test_one_block_per_entry(self):
        hot = zipf_pmf(50, 1.0)
        blocks = per_entry_blocks(hot)
        assert blocks.num_blocks == 50
        assert (blocks.sizes == 1).all()

    def test_hotness_preserved(self):
        hot = zipf_pmf(50, 1.3)
        blocks = per_entry_blocks(hot)
        assert blocks.hotness_sum.sum() == pytest.approx(hot.sum())
