"""Ablation: log-scale coarse/fine blocking vs uniform blocking."""

from repro.bench.experiments import ablation_blocking


def bench_misc_ablation_blocking(run_experiment):
    result = run_experiment(ablation_blocking)
    rows = {r["strategy"]: r for r in result.rows}
    paper = rows["log-scale coarse/fine (paper)"]
    uniform = rows["uniform 64 blocks"]
    # The paper's blocking must not lose to coarse uniform blocking, while
    # staying comfortably under the §6.3 block budget.
    assert paper["est_ms"] <= uniform["est_ms"] * 1.02
    assert paper["blocks"] < 1000
