"""Dense-layer cost models for the GNN applications (GCN / GraphSAGE).

The paper treats the dense portion (message passing + MLP) as a fixed
per-iteration term — Table 1 measures 10.6 ms of MLP time against 113 ms of
embedding extraction — and varies only the embedding side.  We model dense
time from FLOP counts and per-GPU throughput so the end-to-end figures keep
the right extraction-vs-compute proportions on every testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import Platform

#: Sustained mixed-precision training throughput (FLOP/s) by GPU model.
#: Calibrated against Table 1: the paper's 10.6 ms MLP time at ~800k
#: sampled vertices of dim 768 implies tensor-core-class throughput, not
#: fp32 CUDA-core rates.
_GPU_THROUGHPUT = {
    "V100-16GB": 40.0e12,
    "V100-32GB": 40.0e12,
    "A100-80GB": 100.0e12,
}

#: Fixed per-iteration overhead (kernel launches, optimizer step, allreduce
#: of the small dense model), seconds.  The real value is ~2 ms at the
#: paper's batch 8K; our GNN stand-ins are ~1000× scaled, so the constant
#: is scaled accordingly to preserve the extraction-vs-compute proportions
#: of Table 1.
_ITERATION_OVERHEAD = 2.0e-6


@dataclass(frozen=True)
class GnnModelSpec:
    """Compute shape of one GNN model.

    ``hidden`` is the per-layer width; ``layers`` the number of
    message-passing layers (= hops).  The FLOP estimate covers forward and
    backward over the sampled neighbourhood.
    """

    name: str
    hidden: int = 256
    layers: int = 2

    def flops_per_iteration(self, sampled_vertices: int, input_dim: int) -> float:
        """Approximate training FLOPs for one iteration on one GPU."""
        # First layer projects input_dim -> hidden over every sampled
        # vertex; deeper layers shrink the frontier roughly geometrically.
        flops = 0.0
        width_in = input_dim
        vertices = float(sampled_vertices)
        for _ in range(self.layers):
            flops += 2.0 * vertices * width_in * self.hidden
            width_in = self.hidden
            vertices = max(vertices / 8.0, 1.0)
        return 3.0 * flops  # forward + backward ≈ 3× forward


GCN = GnnModelSpec(name="gcn", hidden=256, layers=3)
GRAPHSAGE = GnnModelSpec(name="graphsage", hidden=256, layers=2)


def model_for_mode(mode: str) -> GnnModelSpec:
    """Map a workload mode (§8.1) to its model spec."""
    if mode == "gcn":
        return GCN
    if mode in ("sage-sup", "sage-unsup"):
        return GRAPHSAGE
    raise ValueError(f"unknown GNN mode {mode!r}")


def dense_time_per_iteration(
    platform: Platform,
    model: GnnModelSpec,
    sampled_vertices: int,
    input_dim: int,
) -> float:
    """Seconds of dense compute per training iteration on this platform."""
    throughput = _GPU_THROUGHPUT.get(platform.gpu.name)
    if throughput is None:
        raise ValueError(f"no throughput calibration for {platform.gpu.name}")
    flops = model.flops_per_iteration(sampled_vertices, input_dim)
    return flops / throughput + _ITERATION_OVERHEAD


def sampling_time_per_iteration(
    platform: Platform, sampled_vertices: int
) -> float:
    """Seconds of GPU-based graph sampling per iteration.

    Sampling is a memory-bound random gather over the topology; we charge
    two 8-byte reads per sampled vertex at local HBM bandwidth plus a
    launch overhead.  This keeps sampling a visible but non-dominant term,
    as in the paper's breakdowns.
    """
    bytes_read = 16.0 * sampled_vertices
    return bytes_read / platform.gpu.local_bandwidth + 0.5e-6
