"""GPU specifications."""

import pytest

from repro.hardware.spec import GPUSpec, a100_80gb, v100_16gb, v100_32gb
from repro.utils.units import GIB


class TestPresets:
    def test_v100_16_memory(self):
        assert v100_16gb().memory_bytes == 16 * GIB

    def test_v100_32_memory(self):
        assert v100_32gb().memory_bytes == 32 * GIB

    def test_a100_memory(self):
        assert a100_80gb().memory_bytes == 80 * GIB

    def test_v100_outbound_is_150gbps(self):
        # 6 NVLink lanes × 25 GB/s (§8.1).
        assert v100_16gb().outbound_bandwidth == pytest.approx(150e9)

    def test_a100_outbound_is_300gbps(self):
        assert a100_80gb().outbound_bandwidth == pytest.approx(300e9)

    def test_sm_counts(self):
        assert v100_16gb().num_cores == 80
        assert a100_80gb().num_cores == 108


class TestPerCoreBandwidth:
    def test_all_cores_reach_local_bandwidth(self):
        spec = a100_80gb()
        assert spec.per_core_bandwidth * spec.num_cores == pytest.approx(
            spec.local_bandwidth
        )

    def test_positive(self):
        assert v100_32gb().per_core_bandwidth > 0


class TestValidation:
    def _spec(self, **overrides):
        base = dict(
            name="test",
            memory_bytes=GIB,
            num_cores=10,
            local_bandwidth=1e11,
            nvlink_lanes=4,
        )
        base.update(overrides)
        return GPUSpec(**base)

    def test_rejects_zero_memory(self):
        with pytest.raises(ValueError):
            self._spec(memory_bytes=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            self._spec(num_cores=0)

    def test_rejects_negative_lanes(self):
        with pytest.raises(ValueError):
            self._spec(nvlink_lanes=-1)

    def test_zero_lanes_allowed(self):
        assert self._spec(nvlink_lanes=0).outbound_bandwidth == 0
