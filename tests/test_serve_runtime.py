"""ServingRuntime: admission → degraded planning → hedging → breakers."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import hot_replicate_warm_partition_policy, partition_policy
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.hardware.platform import server_a
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    AdmissionConfig,
    BreakerConfig,
    QueuePolicy,
    RequestStatus,
    ServeConfig,
    ServingRuntime,
)
from repro.sim.event_sim import simulate_hedged_extraction
from repro.sim.mechanisms import GpuDemand
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.serve

N, D = 1200, 8


def _stack(plan=None, replicate=0.5):
    platform = server_a()
    rng = make_rng(0)
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.1) * 1000
    placement = hot_replicate_warm_partition_policy(
        hotness, N // 8, platform.num_gpus, replicate
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    injector = FaultInjector(plan, cache=cache) if plan is not None else None
    extractor = FactoredExtractor(cache, injector=injector)
    return platform, table, cache, extractor, injector


def _keys(n=256, seed=1):
    return make_rng(seed).integers(0, N, size=n)


class TestServeRequest:
    def test_healthy_request_is_exact_and_ok(self):
        _platform, table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(extractor)
        keys = _keys()
        request = runtime.make_request(0, keys, now=0.0)
        response = runtime.serve_request(request, now=0.0)
        assert response.ok
        assert response.service_time > 0
        assert np.array_equal(response.values, table[keys])

    def test_expired_request_is_dropped_without_work(self):
        _platform, _table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(extractor)
        request = runtime.make_request(0, _keys(), now=0.0, deadline=1.0)
        response = runtime.serve_request(request, now=2.0)
        assert response.status is RequestStatus.EXPIRED
        assert response.values is None

    def test_submit_then_poll_round_trip(self):
        _platform, table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(extractor)
        keys = _keys()
        assert runtime.submit(runtime.make_request(0, keys, 0.0), 0.0) is None
        response = runtime.poll(0, now=0.0)
        assert response.ok
        assert np.array_equal(response.values, table[keys])
        assert runtime.poll(0, now=0.0) is None

    def test_drain_serves_every_queue(self):
        platform, _table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(extractor)
        for g in range(platform.num_gpus):
            for i in range(3):
                runtime.submit(runtime.make_request(g, _keys(seed=i), 0.0), 0.0)
        responses = runtime.drain(now=0.0)
        assert len(responses) == 3 * platform.num_gpus
        assert runtime.admission.total_depth == 0
        assert runtime.clock.now > 0  # drain advanced the virtual clock

    def test_full_queue_reject_policy_surfaces_response(self):
        _platform, _table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(
            extractor,
            config=ServeConfig(
                admission=AdmissionConfig(
                    capacity=1, policy=QueuePolicy.REJECT
                )
            ),
        )
        assert runtime.submit(runtime.make_request(0, _keys(), 0.0), 0.0) is None
        rejected = runtime.submit(runtime.make_request(0, _keys(), 0.0), 0.0)
        assert rejected is not None
        assert rejected.status is RequestStatus.REJECTED

    def test_shed_oldest_records_victim_response(self):
        _platform, _table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(
            extractor,
            config=ServeConfig(
                admission=AdmissionConfig(
                    capacity=1, policy=QueuePolicy.SHED_OLDEST
                )
            ),
        )
        first = runtime.make_request(0, _keys(), 0.0)
        runtime.submit(first, 0.0)
        assert runtime.submit(runtime.make_request(0, _keys(), 0.0), 0.0) is None
        shed = [r for r in runtime.responses if r.status is RequestStatus.SHED]
        assert [r.request.request_id for r in shed] == [first.request_id]


class TestHedging:
    def _degraded_link_stack(self):
        # GPU 1's outbound link loses 99% of its bandwidth: any plan that
        # reads from it is slow enough that the host hedge wins the race.
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    FaultKind.LINK_DEGRADATION,
                    onset=0.0,
                    severity=0.99,
                    link=(0, 1),
                ),
            )
        )
        return _stack(plan=plan, replicate=0.0)

    def _remote_keys(self, cache, dst=0, src=1, n=192):
        owned = cache.placement.per_gpu[src]
        mask = cache.source_map[dst][owned] == src
        keys = owned[mask][:n]
        assert len(keys) > 0
        return keys

    def test_hedge_issued_and_wins_under_degraded_link(self):
        _platform, table, cache, extractor, injector = self._degraded_link_stack()
        runtime = ServingRuntime(
            extractor,
            config=ServeConfig(hedge_enabled=True, hedge_headroom=1.25),
            injector=injector,
        )
        keys = self._remote_keys(cache)
        request = runtime.make_request(0, keys, now=0.0, deadline=1e-6)
        response = runtime.serve_request(request, now=0.0)
        assert response.hedged
        assert response.hedge_won
        assert np.array_equal(response.values, table[keys])

    def test_no_hedge_without_deadline_pressure(self):
        _platform, _table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(extractor)
        request = runtime.make_request(0, _keys(), now=0.0)  # best-effort
        response = runtime.serve_request(request, now=0.0)
        assert not response.hedged

    def test_hedge_disabled_by_config(self):
        _platform, _table, cache, extractor, injector = self._degraded_link_stack()
        runtime = ServingRuntime(
            extractor,
            config=ServeConfig(hedge_enabled=False),
            injector=injector,
        )
        keys = self._remote_keys(cache)
        request = runtime.make_request(0, keys, now=0.0, deadline=1e-6)
        assert not runtime.serve_request(request, now=0.0).hedged

    def test_event_sim_prices_the_same_race(self):
        platform, _table, cache, _extractor, _inj = self._degraded_link_stack()
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    FaultKind.LINK_DEGRADATION,
                    onset=0.0,
                    severity=0.99,
                    link=(0, 1),
                ),
            )
        )
        keys = self._remote_keys(cache)
        volume = float(len(keys) * cache.entry_bytes)
        demand = GpuDemand(dst=0, volumes={1: volume})
        result = simulate_hedged_extraction(platform, demand, faults=plan, now=0.0)
        assert result.hedge_won
        assert result.total_time == result.hedge_time < result.primary_time
        # issuing the hedge later shifts its completion by exactly the delay
        delayed = simulate_hedged_extraction(
            platform, demand, hedge_issue_at=1e9, faults=plan, now=0.0
        )
        assert delayed.winner == "primary"
        with pytest.raises(ValueError):
            simulate_hedged_extraction(platform, demand, hedge_issue_at=-1.0)


class TestBreakerIntegration:
    def _failed_gpu_runtime(self, **cfg_kwargs):
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.GPU_FAILURE, onset=0.0, gpu=1),)
        )
        _platform, table, cache, extractor, injector = _stack(
            plan=plan, replicate=0.0
        )
        config = ServeConfig(
            breaker=BreakerConfig(failure_threshold=2, cooldown_seconds=100.0),
            **cfg_kwargs,
        )
        return table, cache, ServingRuntime(extractor, config=config, injector=injector)

    def test_dead_source_trips_breaker_then_plans_exclude_it(self):
        table, cache, runtime = self._failed_gpu_runtime()
        owned = cache.placement.per_gpu[1]
        keys = owned[cache.source_map[0][owned] == 1][:128]
        for i in range(2):
            request = runtime.make_request(0, keys, now=float(i))
            response = runtime.serve_request(request, now=float(i))
            assert response.ok  # degraded mode reroutes, never fails
            assert response.rerouted_keys > 0
            assert np.array_equal(response.values, table[keys])
        assert runtime.breakers.excluded_sources(2.0) == frozenset({1})
        # with the breaker open, the plan never touches source 1 at all
        plan = runtime._extractor.plan(
            0, keys, exclude_sources=runtime.breakers.excluded_sources(2.0)
        )
        assert all(g.source != 1 for g in plan.groups)

    def test_healthy_sources_record_successes(self):
        registry = MetricsRegistry("t")
        with use_registry(registry):
            _platform, _table, _cache, extractor, _inj = _stack()
            runtime = ServingRuntime(extractor)
            request = runtime.make_request(0, _keys(), now=0.0)
            runtime.serve_request(request, now=0.0)
            states = runtime.breakers.states()
        assert all(s.value == "closed" for s in states.values())
        assert registry.value("serve.requests", status="ok") == 1.0

    def test_source_timeout_counts_as_failure(self):
        # an absurdly tight per-source budget: every non-local group
        # "times out" and trips its breaker without any injected fault.
        _platform, _table, _cache, extractor, _inj = _stack()
        runtime = ServingRuntime(
            extractor,
            config=ServeConfig(
                breaker=BreakerConfig(failure_threshold=1, cooldown_seconds=1e9),
                source_timeout_seconds=1e-30,
            ),
        )
        request = runtime.make_request(0, _keys(), now=0.0)
        runtime.serve_request(request, now=0.0)
        assert runtime.breakers.excluded_sources(0.1)
