"""Admission control, bounded queues, breakers, and serving primitives."""

import math

import numpy as np
import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    BoundedRequestQueue,
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    LatencyEstimator,
    QueuePolicy,
    Request,
    RequestStatus,
    SimClock,
)

pytestmark = pytest.mark.serve


def _request(rid=1, gpu=0, arrival=0.0, deadline=math.inf):
    return Request(
        request_id=rid,
        gpu=gpu,
        keys=np.arange(4, dtype=np.int64),
        arrival=arrival,
        deadline=deadline,
    )


class TestSimClock:
    def test_advances(self):
        clock = SimClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock.now == 1.5
        clock.advance_to(1.0)  # no going back
        assert clock.now == 1.5
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)


class TestRequest:
    def test_deadline_budget(self):
        r = _request(arrival=1.0, deadline=3.0)
        assert r.remaining(1.0) == 2.0
        assert not r.expired(2.9)
        assert r.expired(3.0)

    def test_best_effort_never_expires(self):
        assert not _request().expired(1e9)


class TestAdmissionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(capacity=0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_seconds=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(estimator_alpha=0.0)


class TestLatencyEstimator:
    def test_ewma_and_histogram_agree(self):
        registry = MetricsRegistry("t")
        with use_registry(registry):
            est = LatencyEstimator(gpu=0, alpha=0.5)
            assert est.estimate() == 0.0
            est.observe(1.0)
            assert est.estimate() == 1.0
            est.observe(2.0)
            assert est.estimate() == pytest.approx(1.5)
            # the same observations back the shared obs histogram
            hist = registry.histogram("serve.batch.seconds", gpu=0)
            assert hist.count == 2
            assert est.percentile(99) == hist.percentile(99)

    def test_prior_answers_before_first_sample(self):
        # Regression: estimate() answered 0.0 cold, so SLO-margin
        # consumers (the micro-batcher's early flush) had zero
        # service-time margin for a run's first batches.
        est = LatencyEstimator(gpu=0, prior=0.25)
        assert est.estimate() == 0.25

    def test_first_observation_overrides_prior(self):
        registry = MetricsRegistry("t")
        with use_registry(registry):
            est = LatencyEstimator(gpu=0, alpha=0.5, prior=100.0)
            est.observe(1.0)
            # seeded directly from the sample, not averaged with the prior
            assert est.estimate() == 1.0

    def test_no_prior_keeps_learn_from_zero(self):
        est = LatencyEstimator(gpu=0)
        assert est.estimate() == 0.0

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            LatencyEstimator(gpu=0, prior=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(estimator_prior=-1.0)

    def test_queue_passes_config_prior_to_estimator(self):
        cfg = AdmissionConfig(estimator_prior=0.5)
        q = BoundedRequestQueue(0, cfg)
        assert q.estimator.estimate() == 0.5


class TestBoundedQueue:
    def _full_queue(self, policy, capacity=2):
        cfg = AdmissionConfig(capacity=capacity, policy=policy)
        q = BoundedRequestQueue(0, cfg)
        for i in range(capacity):
            assert q.offer(_request(rid=i), now=0.0).admitted
        return q

    def test_reject_when_full(self):
        q = self._full_queue(QueuePolicy.REJECT)
        result = q.offer(_request(rid=9), now=0.0)
        assert not result.admitted
        assert result.status is RequestStatus.REJECTED
        assert q.depth == 2

    def test_shed_oldest_displaces_head(self):
        q = self._full_queue(QueuePolicy.SHED_OLDEST)
        result = q.offer(_request(rid=9), now=0.0)
        assert result.admitted
        assert [r.request_id for r in result.displaced] == [0]
        assert [r.request_id for r in q._queue] == [1, 9]

    def test_block_parks_and_pumps(self):
        q = self._full_queue(QueuePolicy.BLOCK)
        result = q.offer(_request(rid=9), now=0.0)
        assert not result.admitted and result.blocked
        assert q.blocked_depth == 1
        # freeing a slot admits the parked request
        popped = q.pop(now=0.0)
        assert popped.request_id == 0
        assert q.blocked_depth == 0
        assert [r.request_id for r in q._queue] == [1, 9]

    def test_blocked_request_expires_while_parked(self):
        q = self._full_queue(QueuePolicy.BLOCK)
        q.offer(_request(rid=9, deadline=1.0), now=0.0)
        q.pop(now=5.0)  # far past the parked request's deadline
        assert q.depth == 1  # rid 9 was discarded, not admitted

    def test_expired_on_offer_is_shed(self):
        q = BoundedRequestQueue(0, AdmissionConfig())
        result = q.offer(_request(deadline=1.0), now=2.0)
        assert result.status is RequestStatus.SHED

    def test_slo_shedding_predicts_from_estimator(self):
        cfg = AdmissionConfig(capacity=8, slo_seconds=1.0)
        q = BoundedRequestQueue(0, cfg)
        # no samples yet: admit and learn
        assert q.offer(_request(rid=1), now=0.0).admitted
        q.estimator.observe(0.9)
        # depth 1 + newcomer → predicted 2 × 0.9 s > 1 s SLO → shed
        result = q.offer(_request(rid=2), now=0.0)
        assert result.status is RequestStatus.SHED
        # a request whose own deadline cannot be met is shed regardless
        q2 = BoundedRequestQueue(1, AdmissionConfig(capacity=8))
        q2.estimator.observe(5.0)
        assert (
            q2.offer(_request(rid=3, deadline=1.0), now=0.0).status
            is RequestStatus.SHED
        )

    def test_max_depth_tracks_high_water(self):
        q = BoundedRequestQueue(0, AdmissionConfig(capacity=4))
        for i in range(3):
            q.offer(_request(rid=i), now=0.0)
        q.pop(now=0.0)
        assert q.max_depth == 3
        assert q.depth == 2


class TestAdmissionController:
    def test_routes_by_gpu(self):
        ctl = AdmissionController(2, AdmissionConfig(capacity=1))
        assert ctl.submit(_request(rid=1, gpu=0), 0.0).admitted
        assert ctl.submit(_request(rid=2, gpu=1), 0.0).admitted
        assert ctl.total_depth == 2
        assert ctl.max_depth == 1
        with pytest.raises(ValueError):
            ctl.submit(_request(gpu=7), 0.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        b = CircuitBreaker(0, BreakerConfig(failure_threshold=3))
        b.record_failure(0.0)
        b.record_failure(0.1)
        assert b.state is BreakerState.CLOSED
        b.record_failure(0.2)
        assert b.state is BreakerState.OPEN
        assert not b.allow(0.3)

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(0, BreakerConfig(failure_threshold=2))
        b.record_failure(0.0)
        b.record_success(0.1)
        b.record_failure(0.2)
        assert b.state is BreakerState.CLOSED

    def test_half_open_probes_then_close(self):
        cfg = BreakerConfig(
            failure_threshold=1,
            cooldown_seconds=1.0,
            half_open_probes=2,
            success_threshold=2,
        )
        b = CircuitBreaker(0, cfg)
        b.record_failure(0.0)
        assert not b.allow(0.5)  # still cooling down
        assert b.allow(1.0)  # probe 1 admitted, now half-open
        assert b.state is BreakerState.HALF_OPEN
        assert b.allow(1.1)  # probe 2
        assert not b.allow(1.2)  # probes metered
        b.record_success(1.3)
        b.record_success(1.4)
        assert b.state is BreakerState.CLOSED
        assert [(frm.value, to.value) for _, frm, to in b.transitions] == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        cfg = BreakerConfig(failure_threshold=1, cooldown_seconds=1.0)
        b = CircuitBreaker(0, cfg)
        b.record_failure(0.0)
        assert b.allow(1.0)  # half-open probe
        b.record_failure(1.1)
        assert b.state is BreakerState.OPEN
        assert not b.allow(1.5)  # cooldown restarted at 1.1
        assert b.allow(2.2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)


class TestBreakerBoard:
    def test_excluded_sources_and_counts(self):
        board = BreakerBoard(
            [0, 1, 2], BreakerConfig(failure_threshold=1, cooldown_seconds=10.0)
        )
        board.record(1, ok=False, now=0.0)
        assert board.excluded_sources(1.0) == frozenset({1})
        board.record(0, ok=True, now=1.0)
        assert board.states()[0] is BreakerState.CLOSED
        assert board.transition_counts() == {"open": 1}
        # unknown sources are ignored (host without a host breaker)
        board.record(99, ok=False, now=1.0)

    def test_transitions_metered_into_registry(self):
        registry = MetricsRegistry("t")
        with use_registry(registry):
            board = BreakerBoard([0], BreakerConfig(failure_threshold=1))
            board.record(0, ok=False, now=0.0)
        assert (
            registry.value("serve.breaker.transitions", source=0, to="open")
            == 1.0
        )
        assert registry.value("serve.breaker.state", source=0) == 2.0
