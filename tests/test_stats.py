"""Statistics helpers: Zipf pmf, coverage curves, aggregation."""

import numpy as np
import pytest

from repro.utils.stats import (
    coverage_curve,
    geometric_mean,
    normalize,
    weighted_percentile,
    zipf_pmf,
)


class TestZipfPmf:
    def test_sums_to_one(self):
        assert zipf_pmf(1000, 1.2).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(100, 0.8)
        assert (np.diff(pmf) <= 0).all()

    def test_alpha_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_higher_alpha_more_skewed(self):
        low = zipf_pmf(1000, 0.9)
        high = zipf_pmf(1000, 1.4)
        assert high[0] > low[0]
        assert high[-1] < low[-1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.1)


class TestNormalize:
    def test_result_sums_to_one(self):
        assert normalize(np.array([1.0, 3.0])).sum() == pytest.approx(1.0)

    def test_preserves_ratios(self):
        out = normalize(np.array([1.0, 3.0]))
        assert out[1] / out[0] == pytest.approx(3.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize(np.array([1.0, -1.0]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize(np.zeros(3))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            normalize(np.ones((2, 2)))


class TestGeometricMean:
    def test_of_constant(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestWeightedPercentile:
    def test_median_uniform_weights(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        weights = np.ones(5)
        assert weighted_percentile(values, weights, 50) == pytest.approx(3.0)

    def test_skewed_weights_shift_percentile(self):
        values = np.array([1.0, 10.0])
        weights = np.array([0.99, 0.01])
        assert weighted_percentile(values, weights, 50) == pytest.approx(1.0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            weighted_percentile(np.ones(2), np.ones(2), 150)

    def test_rejects_empty_inputs(self):
        # Regression: the old code indexed cdf[-1] and crashed with
        # IndexError instead of explaining what was wrong.
        with pytest.raises(ValueError, match="empty"):
            weighted_percentile(np.array([]), np.array([]), 50)

    def test_rejects_zero_weight_sum(self):
        # Regression: all-zero weights used to divide the cdf by zero and
        # return NaN-driven garbage instead of raising.
        with pytest.raises(ValueError, match="positive finite"):
            weighted_percentile(np.array([1.0, 2.0]), np.zeros(2), 50)

    def test_rejects_non_finite_weight_sum(self):
        with pytest.raises(ValueError, match="positive finite"):
            weighted_percentile(
                np.array([1.0, 2.0]), np.array([1.0, np.inf]), 50
            )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            weighted_percentile(np.ones(3), np.ones(2), 50)


class TestCoverageCurve:
    def test_starts_at_zero_ends_at_one(self):
        curve = coverage_curve(zipf_pmf(50, 1.0))
        assert curve[0] == 0.0
        assert curve[-1] == pytest.approx(1.0)

    def test_monotone(self):
        curve = coverage_curve(zipf_pmf(50, 1.3))
        assert (np.diff(curve) >= 0).all()

    def test_concave_for_skewed_input(self):
        curve = coverage_curve(zipf_pmf(100, 1.2))
        # The first cached entry contributes more than the last.
        assert curve[1] - curve[0] > curve[-1] - curve[-2]

    @pytest.mark.slow
    def test_never_exceeds_one_on_large_catalog(self):
        # Regression: at 1e7 items the running np.cumsum drifts past 1.0
        # (zipf_pmf(1e7, 0.5) overshoots by ~2e-15 pre-fix), which
        # downstream hit-rate math would read as >100% hit rate.
        curve = coverage_curve(zipf_pmf(10**7, 0.5))
        assert curve.max() <= 1.0
        assert curve[-1] == pytest.approx(1.0)
