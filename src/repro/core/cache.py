"""The unified multi-GPU embedding cache (§4): storage + location hashtable.

:class:`MultiGpuEmbeddingCache` is the runtime object the embedding layer
wraps.  It owns:

* the host-resident embedding table (the fallback location);
* one :class:`~repro.core.filler.GpuCacheStore` per GPU;
* the per-GPU *location table* — the paper's hashtable mapping each entry
  to ``<GPU_i, Offset>`` — derived by
  :func:`~repro.core.evaluate.resolve_sources`.

Lookups are functionally exact (values are gathered from the actual stores,
never recomputed), and every lookup also yields the byte volumes the
simulator needs to price the extraction.  The location lookup itself is
the extraction pipeline's *resolve* stage
(:func:`repro.core.pipeline.resolve`), shared with the Extractor's
planner, and the integrity check reconciles the dense routing arrays
against the §4 hashtable via
:func:`~repro.core.pipeline.verify_resolution`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluate import demand_from_keys, resolve_sources
from repro.core.filler import GpuCacheStore, fill_all
from repro.core.policy import Placement
from repro.core.tiers import TierChain
from repro.hardware.platform import HOST, SOURCE_DTYPE, Platform
from repro.obs import get_registry
from repro.sim.congestion import CongestionModel
from repro.sim.engine import BatchReport, simulate_batch
from repro.sim.mechanisms import GpuDemand, Mechanism
from repro.utils.concurrency import ReadWriteLock


class CacheIntegrityError(RuntimeError):
    """The cache's cross-structure invariants are violated (see
    :meth:`MultiGpuEmbeddingCache.check_integrity`)."""


@dataclass(frozen=True)
class LookupResult:
    """Values plus provenance for one GPU's batch lookup."""

    values: np.ndarray
    demand: GpuDemand
    #: per-key source location (GPU id or HOST)
    sources: np.ndarray

    @property
    def local_fraction(self) -> float:
        if self.sources.size == 0:
            return 0.0
        return float((self.sources == self.demand.dst).mean())

    @property
    def host_fraction(self) -> float:
        """Fraction resolved to the backing chain (any tier id < 0)."""
        if self.sources.size == 0:
            return 0.0
        return float((self.sources < 0).mean())


class MultiGpuEmbeddingCache:
    """Read-only embedding cache unified across the platform's GPUs.

    **Thread-safety contract.**  The serving layer runs one worker thread
    per GPU against this object while the background
    :class:`~repro.core.refresher.Refresher` mutates it, so the cache owns
    a writer-preferring :class:`~repro.utils.concurrency.ReadWriteLock`:

    * *readers* — :meth:`lookup`, :meth:`host_gather`, extraction planning
      and execution (via :meth:`reading`), :meth:`verify_integrity`,
      :meth:`snapshot_location_state` — share the routing structures;
    * *writers* — :meth:`replace_placement`, :meth:`refresh_source_map`,
      :meth:`restore_location_state`, and every Refresher diff step (the
      refresher wraps them in :meth:`writing`) — get exclusive access.

    Consumers composing multi-step read sequences (e.g. the serving
    runtime's plan → execute → price) must hold :meth:`reading` across the
    whole sequence so a refresh cannot land between resolve and gather.
    The lock is reentrant per thread, and a writer may take the read side
    (integrity checks run inside refresh/rollback write sections).
    """

    def __init__(
        self,
        platform: Platform,
        table: np.ndarray,
        placement: Placement,
        capacity_entries: int | None = None,
        tier_hotness: np.ndarray | None = None,
    ) -> None:
        if table.ndim != 2:
            raise ValueError("embedding table must be 2-D (entries × dim)")
        if placement.num_entries != table.shape[0]:
            raise ValueError("placement does not cover the table")
        self._platform = platform
        self._table = table
        self._placement = placement
        self._capacity = capacity_entries
        self._stores: list[GpuCacheStore] = fill_all(table, placement, capacity_entries)
        # On a single-tier platform the backing chain degenerates to the
        # host table itself — no chain object, zero overhead, and the
        # resolve fallback stays the literal HOST constant (byte-identical
        # routing to the pre-tier cache).
        self._chain: TierChain | None = None
        if platform.num_tiers > 1:
            self._chain = TierChain(platform.tiers, table, tier_hotness)
        self._source_map = resolve_sources(
            platform,
            placement,
            backing=None if self._chain is None else self._chain.home,
        )
        self._rwlock = ReadWriteLock()
        # Host-table checksums are the scrubber's ground truth; the table
        # is immutable for the cache's lifetime, so compute them lazily
        # once on first use.
        self._host_checksums: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Concurrency
    # ------------------------------------------------------------------
    def reading(self):
        """Shared (reader) access to the routing structures and stores.

        Hold this across any multi-step read sequence (resolve → gather)
        run off the owning thread; single reads through :meth:`lookup` /
        :meth:`host_gather` take it themselves.
        """
        return self._rwlock.read_locked()

    def writing(self):
        """Exclusive (writer) access — placement swaps and refresh steps."""
        return self._rwlock.write_locked()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def platform(self) -> Platform:
        return self._platform

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def num_entries(self) -> int:
        return self._table.shape[0]

    @property
    def dim(self) -> int:
        return self._table.shape[1]

    @property
    def entry_bytes(self) -> int:
        return self.dim * self._table.itemsize

    @property
    def source_map(self) -> np.ndarray:
        """The location hashtable: ``(G, N)`` source per (GPU, entry)."""
        return self._source_map

    def store(self, gpu: int) -> GpuCacheStore:
        """One GPU's cache store (slot arena + entry→slot map)."""
        return self._stores[gpu]

    @property
    def host_table(self) -> np.ndarray:
        """The host-resident embedding table (the universal fallback)."""
        return self._table

    @property
    def host_checksums(self) -> np.ndarray:
        """Per-entry checksum of the host table: the repair ground truth.

        Computed lazily (one vectorized pass) and cached — the host table
        is immutable, so the checksums never go stale.
        """
        if self._host_checksums is None:
            from repro.core.checksum import row_checksums

            self._host_checksums = row_checksums(self._table)
        return self._host_checksums

    def host_gather(self, keys: np.ndarray) -> np.ndarray:
        """Gather rows straight from the host table (the miss path).

        The public form of what the Extractor's HOST group does: callers
        outside this class must never index the private table directly.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_entries):
            raise KeyError("host gather key out of range")
        with self._rwlock.read_locked():
            return self._table[keys]

    # ------------------------------------------------------------------
    # Backing-tier chain
    # ------------------------------------------------------------------
    @property
    def tier_chain(self) -> TierChain | None:
        """The backing-tier chain, or ``None`` on a single-tier platform."""
        return self._chain

    def backing_home(self, keys: np.ndarray) -> np.ndarray:
        """Per-key backing source: the tier each key falls back to.

        ``HOST`` for every key on a single-tier platform; the tier
        chain's home map otherwise.  This is what the pipeline's
        replica-reroute uses as its terminal fallback.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        with self._rwlock.read_locked():
            if self._chain is None:
                return np.full(len(keys), HOST, dtype=SOURCE_DTYPE)
            return self._chain.home[keys]

    def backing_gather(self, src: int, keys: np.ndarray) -> np.ndarray:
        """Gather rows from one backing tier (the generalized miss path).

        On a single-tier platform only ``src == HOST`` is legal and the
        read comes straight from the host table; with a chain the rows
        come out of that tier's store (bit-identical to the table by the
        chain's integrity invariant).
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_entries):
            raise KeyError("backing gather key out of range")
        with self._rwlock.read_locked():
            if self._chain is None:
                if src != HOST:
                    raise ValueError(
                        f"source {src} is not a backing tier of this platform"
                    )
                return self._table[keys]
            return self._chain.gather(src, keys)

    def backing_shares(self) -> dict[int, float]:
        """Fraction of the entry universe homed per backing tier."""
        with self._rwlock.read_locked():
            if self._chain is None:
                return {HOST: 1.0}
            return self._chain.shares()

    def move_backing(self, entries: np.ndarray, dst_src: int) -> int:
        """Demote/promote ``entries`` to tier ``dst_src`` (writer path).

        Serialized against lookups and refresh steps by the writer lock;
        the location table's backing cells are re-pointed in the same
        critical section so no reader ever sees a stale tier route.
        Returns entries actually moved (0 on a single-tier platform,
        where the only legal destination is ``HOST`` itself).
        """
        with self._rwlock.write_locked():
            if self._chain is None:
                if dst_src != HOST:
                    raise ValueError(
                        f"source {dst_src} is not a backing tier of this platform"
                    )
                return 0
            ids = np.unique(np.ascontiguousarray(entries, dtype=np.int64))
            moved = self._chain.move(ids, dst_src)
            if moved:
                sub = self._source_map[:, ids]
                homes = np.broadcast_to(self._chain.home[ids], sub.shape)
                self._source_map[:, ids] = np.where(sub < 0, homes, sub)
            return moved

    def rebalance_tiers(self, hotness: np.ndarray) -> int:
        """Re-run the hotness waterfall across tiers; returns entries moved."""
        with self._rwlock.write_locked():
            if self._chain is None:
                return 0
            moved = self._chain.rebalance(hotness)
            if moved:
                sm = self._source_map
                homes = np.broadcast_to(self._chain.home, sm.shape)
                self._source_map = np.where(sm < 0, homes, sm).astype(
                    SOURCE_DTYPE, copy=False
                )
            return moved

    # ------------------------------------------------------------------
    # Lookup path
    # ------------------------------------------------------------------
    def lookup(self, dst: int, keys: np.ndarray) -> LookupResult:
        """Gather embedding values for one GPU's key batch.

        Values come from the actual cache stores (local slot, remote GPU's
        slot, or the host table), so tests can verify byte-exactness
        against ``table[keys]``.
        """
        from repro.core.pipeline import resolve

        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_entries):
            raise KeyError("lookup key out of range")
        with self._rwlock.read_locked():
            keys, sources = resolve(self, dst, keys)
            values = np.empty((len(keys), self.dim), dtype=self._table.dtype)
            host_mask = sources < 0  # the whole backing chain
            if host_mask.any():
                if self._chain is None:
                    values[host_mask] = self._table[keys[host_mask]]
                else:
                    for src in self._platform.backing_ids:
                        mask = sources == src
                        if mask.any():
                            values[mask] = self._chain.gather(src, keys[mask])
            for gpu in self._platform.gpu_ids:
                mask = sources == gpu
                if mask.any():
                    values[mask] = self._stores[gpu].read(keys[mask])
            demand = demand_from_keys(
                self._platform, self._source_map, dst, keys, self.entry_bytes
            )
        reg = get_registry()
        if reg.enabled:
            local = int((sources == dst).sum())
            host = int(host_mask.sum())
            reg.counter("cache.lookup.calls").inc()
            reg.counter("cache.lookup.keys", source="local").inc(local)
            reg.counter("cache.lookup.keys", source="remote").inc(
                len(keys) - local - host
            )
            reg.counter("cache.lookup.keys", source="host").inc(host)
        return LookupResult(values=values, demand=demand, sources=sources)

    def extract_all(
        self,
        keys_per_gpu: list[np.ndarray],
        mechanism: Mechanism = Mechanism.FACTORED,
        congestion: CongestionModel | None = None,
    ) -> tuple[list[np.ndarray], BatchReport]:
        """Data-parallel batch extraction: values + simulated timing.

        ``keys_per_gpu[i]`` is GPU ``i``'s batch.  Returns gathered value
        arrays in the same order and the batch's :class:`BatchReport`.
        """
        if len(keys_per_gpu) != self._platform.num_gpus:
            raise ValueError(
                f"need one key batch per GPU ({self._platform.num_gpus})"
            )
        results = [self.lookup(i, keys) for i, keys in enumerate(keys_per_gpu)]
        report = simulate_batch(
            self._platform,
            [r.demand for r in results],
            mechanism=mechanism,
            congestion=congestion,
        )
        return [r.values for r in results], report

    # ------------------------------------------------------------------
    # Refresh support
    # ------------------------------------------------------------------
    def replace_placement(self, placement: Placement) -> None:
        """Atomically swap in a new placement (full refill).

        The incremental path lives in the Refresher; this is the simple
        fallback and the post-refresh consistency point: the location
        table is rebuilt only after all stores match the new placement,
        mirroring §7.2's update ordering.
        """
        if placement.num_entries != self.num_entries:
            raise ValueError("new placement does not cover the table")
        with self._rwlock.write_locked():
            self._stores = fill_all(self._table, placement, self._capacity)
            self._placement = placement
            self._source_map = resolve_sources(
                self._platform,
                placement,
                backing=None if self._chain is None else self._chain.home,
            )

    def refresh_source_map(self) -> None:
        """Rebuild the location table from the stores' current contents."""
        with self._rwlock.write_locked():
            per_gpu = tuple(store.cached_entries() for store in self._stores)
            self._placement = Placement(
                num_entries=self.num_entries, per_gpu=per_gpu
            )
            self._source_map = resolve_sources(
                self._platform,
                self._placement,
                backing=None if self._chain is None else self._chain.home,
            )

    def snapshot_location_state(self) -> tuple[Placement, np.ndarray]:
        """Copy of the current routing state: ``(placement, source_map)``.

        The counterpart of :meth:`restore_location_state`; the serving
        layer's :class:`~repro.serve.policy_manager.PolicyManager` takes
        one before a hot policy swap so a guardrail-triggered rollback
        has an exact pre-swap target.
        """
        with self._rwlock.read_locked():
            return self._placement, self._source_map.copy()

    def restore_location_state(
        self, placement: Placement, source_map: np.ndarray
    ) -> None:
        """Rollback hook: restore a snapshotted placement + location table.

        Used by the Refresher's transactional refresh to return the cache
        to its exact pre-refresh routing after an interrupted update (the
        stores must already hold ``placement``'s entries).
        """
        if placement.num_entries != self.num_entries:
            raise ValueError("snapshot placement does not cover the table")
        if source_map.shape != self._source_map.shape:
            raise ValueError("snapshot source map has the wrong shape")
        with self._rwlock.write_locked():
            self._placement = placement
            self._source_map = source_map.copy()

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------
    def verify_integrity(
        self, sample: float | None = None, seed: int = 0
    ) -> list[str]:
        """Cross-structure invariant check; returns violations (empty = ok).

        Checks, per GPU store: slot assignments are unique, arena
        occupancy matches the entry count, and cached values are
        bit-identical to the host table.  Across the location table:
        every source id is a real GPU (or HOST), and every routed read
        points at a GPU that actually holds the entry.  Finally the dense
        routing arrays are reconciled against the §4 hashtable form via
        the pipeline's :func:`~repro.core.pipeline.verify_resolution`.

        ``sample`` enables the cheap mode for hot paths (policy-swap
        drains): a seeded fraction in ``(0, 1]`` of each store's entries
        gets the byte-compare, and the expensive hashtable
        reconciliation is skipped; the structural checks (slot
        uniqueness, arena occupancy, routing ranges/holdings) always run
        in full.  Final gates (soak exit, rollback) must keep
        ``sample=None``.
        """
        from repro.core.pipeline import verify_resolution

        if sample is not None and not 0 < sample <= 1:
            raise ValueError("integrity sample must be in (0, 1]")
        with self._rwlock.read_locked():
            return self._verify_integrity_locked(verify_resolution, sample, seed)

    def _verify_integrity_locked(
        self, verify_resolution, sample: float | None = None, seed: int = 0
    ) -> list[str]:
        problems: list[str] = []
        G = self._platform.num_gpus
        sample_rng = None if sample is None else np.random.default_rng(seed)
        for gpu, store in enumerate(self._stores):
            cached = store.cached_entries()
            offsets = store.offset_of[cached]
            if len(np.unique(offsets)) != len(offsets):
                problems.append(f"GPU {gpu}: duplicate slot assignments")
            if store.arena.used_slots != len(cached):
                problems.append(
                    f"GPU {gpu}: arena holds {store.arena.used_slots} slots "
                    f"but {len(cached)} entries are mapped"
                )
            if sample_rng is not None and len(cached):
                k = max(1, int(np.ceil(sample * len(cached))))
                picks = sample_rng.choice(len(cached), size=k, replace=False)
                cached, offsets = cached[picks], offsets[picks]
            if len(cached) and not np.array_equal(
                store.data[offsets], self._table[cached]
            ):
                problems.append(f"GPU {gpu}: cached values diverge from host table")
        for dst in range(G):
            srcs = self._source_map[dst]
            bad = ~self._platform.valid_source_mask(srcs)
            if bad.any():
                problems.append(
                    f"GPU {dst}: {int(bad.sum())} out-of-range source ids"
                )
            if self._chain is not None:
                # Every backing route must agree with the chain's home map
                # (a disagreement means a demotion raced the hashtable).
                backing = srcs < 0
                stale = backing & (srcs != self._chain.home)
                if stale.any():
                    problems.append(
                        f"GPU {dst}: {int(stale.sum())} backing routes point "
                        "at a tier that is not the entry's home"
                    )
            for g in range(G):
                pointed = np.flatnonzero(srcs == g)
                if len(pointed) == 0:
                    continue
                missing = pointed[self._stores[g].offset_of[pointed] < 0]
                if len(missing):
                    problems.append(
                        f"GPU {dst}: {len(missing)} entries routed to GPU {g} "
                        "which does not hold them"
                    )
            if sample is None:
                problems.extend(verify_resolution(self, dst))
        if self._chain is not None and sample is None:
            problems.extend(self._chain.verify())
        return problems

    def check_integrity(
        self, sample: float | None = None, seed: int = 0
    ) -> None:
        """Raise :class:`CacheIntegrityError` if any invariant is violated."""
        problems = self.verify_integrity(sample=sample, seed=seed)
        if problems:
            raise CacheIntegrityError("; ".join(problems))
