"""Link-utilization accounting (Figure 13's probe)."""

import pytest

from repro.hardware.platform import HOST
from repro.sim.engine import simulate_batch
from repro.sim.mechanisms import GpuDemand, Mechanism
from repro.sim.utilization import batch_utilization


def _demands(platform, remote_each=5e6, host=2e6):
    demands = []
    for dst in platform.gpu_ids:
        vols = {HOST: host}
        for src in platform.topology.peers(dst):
            vols[src] = remote_each
        demands.append(GpuDemand(dst=dst, volumes=vols))
    return demands


def test_fem_utilization_higher_than_naive(platform_c):
    demands = _demands(platform_c)
    fem = simulate_batch(platform_c, demands, Mechanism.FACTORED)
    naive = simulate_batch(platform_c, demands, Mechanism.PEER_NAIVE)
    u_fem = batch_utilization(platform_c, fem)
    u_naive = batch_utilization(platform_c, naive)
    assert u_fem.pcie > u_naive.pcie
    assert u_fem.nvlink > u_naive.nvlink


def test_utilization_bounded(platform_a):
    demands = _demands(platform_a)
    for mech in (Mechanism.FACTORED, Mechanism.PEER_NAIVE, Mechanism.MESSAGE):
        util = batch_utilization(platform_a, simulate_batch(platform_a, demands, mech))
        assert 0.0 <= util.pcie <= 1.0
        assert 0.0 <= util.nvlink <= 1.0


def test_no_traffic_zero_utilization(platform_a):
    report = simulate_batch(platform_a, [], Mechanism.FACTORED)
    util = batch_utilization(platform_a, report)
    assert util.pcie == 0.0 and util.nvlink == 0.0


def test_host_only_traffic_pcie_only(platform_a):
    demands = [GpuDemand(dst=g, volumes={HOST: 4e6}) for g in platform_a.gpu_ids]
    report = simulate_batch(platform_a, demands, Mechanism.FACTORED)
    util = batch_utilization(platform_a, report)
    assert util.pcie > 0.5
    assert util.nvlink == 0.0


def test_as_percent(platform_a):
    demands = _demands(platform_a)
    report = simulate_batch(platform_a, demands, Mechanism.FACTORED)
    util = batch_utilization(platform_a, report)
    pct = util.as_percent()
    assert pct["pcie"] == pytest.approx(100 * util.pcie)
    assert pct["nvlink"] == pytest.approx(100 * util.nvlink)
