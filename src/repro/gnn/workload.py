"""GNN training workloads: batched embedding-key streams per GPU (§8.1).

A workload yields, per training iteration, one key batch per GPU (data
parallelism: the global batch is split evenly).  Three application modes
mirror the paper:

* ``gcn`` — supervised, 3-hop random sampling;
* ``sage-sup`` — supervised GraphSAGE, 2-hop;
* ``sage-unsup`` — unsupervised GraphSAGE for link prediction: seeds are
  edge endpoints plus uniform negative samples, which *reduces* access
  skew (the effect behind UGache's larger win over replication caches in
  unsupervised settings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.hotness import HotnessTracker
from repro.gnn.graph import CSRGraph
from repro.gnn.sampling import khop_sample, negative_sample
from repro.utils.rng import make_rng, spawn_rngs

#: Default fanouts per mode, following GNNLab's setup (§8.1): GCN uses
#: 3-hop, GraphSAGE 2-hop random neighbourhood sampling.
DEFAULT_FANOUTS: dict[str, tuple[int, ...]] = {
    "gcn": (10, 5, 3),
    "sage-sup": (10, 5),
    "sage-unsup": (10, 5),
}

#: Negative samples per positive edge in unsupervised training.
NEGATIVE_RATIO = 1


@dataclass(frozen=True)
class GnnWorkload:
    """A reproducible GNN embedding-access workload.

    Attributes:
        graph: the dataset graph.
        train_ids: labelled seed vertices (supervised modes).
        mode: ``"gcn"``, ``"sage-sup"`` or ``"sage-unsup"``.
        batch_size: seeds per GPU per iteration (paper default 8K).
        num_gpus: data-parallel width.
        fanouts: per-hop sample counts (defaults per mode).
    """

    graph: CSRGraph
    train_ids: np.ndarray
    mode: str
    batch_size: int = 8192
    num_gpus: int = 8
    fanouts: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.mode not in DEFAULT_FANOUTS:
            raise ValueError(f"unknown GNN mode {self.mode!r}")
        if self.batch_size <= 0 or self.num_gpus <= 0:
            raise ValueError("batch size and GPU count must be positive")
        train = np.asarray(self.train_ids, dtype=np.int64)
        if train.size == 0 and self.mode != "sage-unsup":
            raise ValueError("supervised modes need a training set")
        object.__setattr__(self, "train_ids", train)
        if not self.fanouts:
            object.__setattr__(self, "fanouts", DEFAULT_FANOUTS[self.mode])

    @property
    def num_entries(self) -> int:
        """Size of the embedding universe (one entry per vertex)."""
        return self.graph.num_nodes

    def iterations_per_epoch(self) -> int:
        seeds = self._epoch_seed_count()
        global_batch = self.batch_size * self.num_gpus
        return max(1, seeds // global_batch)

    def _epoch_seed_count(self) -> int:
        if self.mode == "sage-unsup":
            # Link prediction trains over sampled edges of the whole
            # graph, not a labelled subset — epochs are an order of
            # magnitude longer than supervised ones (§8.2's unsup rows).
            return self.graph.num_nodes
        return len(self.train_ids)

    # ------------------------------------------------------------------
    # Batch generation
    # ------------------------------------------------------------------
    def _seed_batches(
        self, rng: np.random.Generator
    ) -> Iterator[list[np.ndarray]]:
        """Yield per-iteration seed lists (one array per GPU)."""
        iters = self.iterations_per_epoch()
        if self.mode == "sage-unsup":
            for _ in range(iters):
                per_gpu = []
                for _gpu in range(self.num_gpus):
                    # Positive pairs: random edges; negatives: uniform.
                    pos = self.batch_size // (2 + NEGATIVE_RATIO)
                    eids = rng.integers(0, self.graph.num_edges, size=pos)
                    dsts = self.graph.indices[eids]
                    srcs = np.searchsorted(
                        self.graph.indptr, eids, side="right"
                    ) - 1
                    neg = negative_sample(
                        self.graph.num_nodes, pos * NEGATIVE_RATIO, rng
                    )
                    per_gpu.append(np.concatenate([srcs, dsts, neg]))
                yield per_gpu
        else:
            order = rng.permutation(self.train_ids)
            global_batch = self.batch_size * self.num_gpus
            for it in range(iters):
                chunk = order[it * global_batch : (it + 1) * global_batch]
                yield [
                    chunk[g * self.batch_size : (g + 1) * self.batch_size]
                    for g in range(self.num_gpus)
                ]

    def epoch(
        self, seed: int | np.random.Generator = 0, dedup: bool = False
    ) -> Iterator[list[np.ndarray]]:
        """Yield per-iteration embedding-key batches (one array per GPU).

        By default keys keep duplicates — the paper's ``extract`` reads
        one entry per key occurrence (§3.2), so hub multiplicity drives
        both hotness and extraction volume.  ``dedup=True`` gives the
        deduplicated loader variant for ablations.
        """
        rng = make_rng(seed)
        for per_gpu_seeds in self._seed_batches(rng):
            gpu_rngs = spawn_rngs(rng, self.num_gpus)
            batches = []
            for seeds, gpu_rng in zip(per_gpu_seeds, gpu_rngs):
                sampled = khop_sample(self.graph, seeds, self.fanouts, gpu_rng)
                batches.append(sampled.unique_nodes if dedup else sampled.all_nodes)
            yield batches

    # ------------------------------------------------------------------
    # Hotness estimation (§6.1)
    # ------------------------------------------------------------------
    def presampled_hotness(
        self, seed: int | np.random.Generator = 0, max_iterations: int | None = None
    ) -> np.ndarray:
        """Profile one epoch (GNNLab-style pre-sampling) into hotness."""
        tracker = HotnessTracker(self.num_entries)
        for it, batches in enumerate(self.epoch(seed)):
            if max_iterations is not None and it >= max_iterations:
                break
            for keys in batches:
                tracker.record(keys)
        counts = tracker.counts()
        # Normalize to expected accesses per batch *per GPU*.
        batches_seen = tracker.batches_recorded / self.num_gpus
        return counts / self.num_gpus / max(batches_seen, 1)

    def degree_hotness(self) -> np.ndarray:
        """PaGraph-style degree proxy, scaled to per-batch access counts."""
        degs = self.graph.degrees().astype(np.float64)
        total = degs.sum()
        if total <= 0:
            raise ValueError("graph has no edges")
        # Upper bound on sampled vertices per seed: 1 + f1 + f1·f2 + ...
        per_seed = 1 + int(np.sum(np.cumprod(self.fanouts)))
        expected_keys = self.batch_size * per_seed
        return degs / total * min(expected_keys, self.num_entries)
