"""Cluster soak: sustained traffic through the fan-out front-end under
node-level chaos.

``python -m repro soak --nodes N --replication R`` lands here (the
single-box path in :mod:`repro.serve.soak` is untouched — ``--nodes 1``
never enters this module, which is what keeps it byte-identical to the
pre-cluster harness).  The loop drives open-loop Poisson arrivals through
:class:`~repro.cluster.frontend.ClusterFrontend` on a simulated clock
while a node-kill/partition/flap fault plan takes whole nodes away
mid-run, and — the part the CI gate cares about — measures goodput
*during* the failover window, not just after recovery:

* requests are bucketed into steady time (no node fault active) and the
  failover window (some node fault active);
* ``failover_goodput_ratio`` is the OK-rate inside the window over the
  steady OK-rate; the report's ``ok`` gate requires ≥ 70%;
* every served value is checked bit-exact against the host table, and
  every node's cache is reconciled (``verify_integrity``) after recovery;
* a healed node re-stages its GPU caches from DRAM — the bytes show up
  as ``rebalance_bytes`` (and the ``cluster.rebalance.bytes`` counter).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.frontend import ClusterConfig, ClusterFrontend
from repro.cluster.node import CacheNode
from repro.faults.spec import HEALTHY, FaultKind
from repro.obs import get_registry
from repro.serve.soak import (
    SOAK_SCENARIOS,
    SoakConfig,
    SoakReport,
    build_soak_plan,
)
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import zipf_pmf

logger = get_logger("cluster.soak")

__all__ = ["FAILOVER_GOODPUT_FLOOR", "run_cluster_soak"]

#: Minimum fraction of steady-state goodput the failover window must keep
#: (the acceptance gate enforced by ``SoakReport.ok`` for cluster runs).
FAILOVER_GOODPUT_FLOOR = 0.70


def _node_fault_windows(plan) -> list[tuple[float, float]]:
    """(onset, clear) for every node-scoped fault in the plan."""
    if plan is None:
        return []
    kinds = (FaultKind.NODE_DOWN, FaultKind.NODE_SLOW, FaultKind.NODE_PARTITION)
    return [(f.onset, f.clears_at) for f in plan if f.kind in kinds]


def _in_any_window(t: float, windows: list[tuple[float, float]]) -> bool:
    return any(a <= t < b for a, b in windows)


def _node_counter_values(reg, name: str) -> dict[str, int]:
    """Per-``node``-label values of one counter (registry is cumulative
    across runs in a process, so callers diff two of these snapshots)."""
    series = getattr(reg, "series", None)
    if series is None:
        return {}
    return {
        str(dict(s.labels).get("node")): int(s.value)
        for s in series()
        if s.kind == "counter" and s.name == name
    }


def run_cluster_soak(cfg: SoakConfig) -> SoakReport:
    """Run one multi-node soak scenario end to end."""
    from repro.bench.contexts import platform_by_name

    platform_name, _desc = SOAK_SCENARIOS[cfg.scenario]
    platform = platform_by_name(platform_name)
    rng = make_rng(cfg.seed)
    dim = max(1, cfg.entry_bytes // 4)
    table = rng.standard_normal((cfg.num_entries, dim)).astype(np.float32)
    pmf = zipf_pmf(cfg.num_entries, cfg.alpha)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))

    cluster_cfg = ClusterConfig(
        nodes=cfg.nodes,
        replication=cfg.replication,
        placement=cfg.placement,
        seed=cfg.seed,
    )
    # The owner table comes first so each node knows its shard; the
    # front-end then adopts the very same table.
    placement = ClusterFrontend.build_placement(cluster_cfg, hotness)
    entries = np.arange(cfg.num_entries, dtype=np.int64)
    owners = placement.owners_for(entries)
    nodes = []
    for node_id in range(cfg.nodes):
        # Solver placements may wide-replicate a hot head beyond the
        # owner columns; membership comes from the placement when it can
        # say, from the owner table otherwise (the ring).
        member_mask = (
            placement.member_mask(node_id)
            if hasattr(placement, "member_mask")
            else (owners == node_id).any(axis=1)
        )
        nodes.append(
            CacheNode(
                node_id=node_id,
                platform=platform,
                table=table,
                hotness=hotness,
                member_mask=member_mask,
                capacity_entries=capacity,
                placement_mode=(
                    "solver" if cfg.placement == "solver" else "greedy"
                ),
            )
        )
    # Baseline node service time: one warm batch on node 0 (the ingress
    # round-robin pointer is restored so the probe leaves no trace).
    s0 = nodes[0].service_seconds(
        make_rng(cfg.seed + 3).choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
    )
    nodes[0]._next_gpu = 0
    rate = cfg.load * cfg.nodes / s0
    # One healthy leg = wire + extraction + payload reply; the request
    # deadline scales from it so the network tier never eats the whole
    # latency budget on CI-sized tables where the wire dominates.
    leg0 = cluster_cfg.rpc.healthy_leg(
        s0, cfg.batch_keys * nodes[0].cache.entry_bytes
    )
    deadline = cfg.deadline_factor * leg0
    # The breaker's cooldown has to live on the *simulated* clock: the
    # default wall-clock seconds would outlast the whole run, so an
    # ejected node could never re-admit probes.  ~50 mean inter-arrival
    # times keeps a few probe rounds inside even a quick soak's window.
    cluster_cfg = replace(
        cluster_cfg,
        breaker=replace(cluster_cfg.breaker, cooldown_seconds=50.0 / rate),
    )
    frontend = ClusterFrontend(
        nodes, cluster_cfg, baseline_service=s0,
        hotness=hotness, placement=placement,
    )

    arrival_rng, key_rng = spawn_rngs(cfg.seed + 17, 2)
    total_requests = cfg.requests_per_gpu * cfg.nodes
    duration = total_requests / rate
    plan = build_soak_plan(cfg.scenario, duration, cfg.seed)
    windows = _node_fault_windows(plan)

    reg = get_registry()
    node_requests_start = _node_counter_values(reg, "cluster.node.requests")
    served_ok = 0
    expired = 0
    failed = 0
    hedges = 0
    hedge_wins = 0
    failovers = 0
    replica_keys = 0
    served_keys = 0
    host_fallback_keys = 0
    partial_responses = 0
    rpc_retries = 0
    rpc_timeouts = 0
    latencies: list[float] = []
    steady_ok = steady_total = 0
    window_ok = window_total = 0
    rebalance_bytes = 0
    values_exact = True
    prev_down: frozenset[int] = frozenset()
    sim_end = duration
    t = 0.0
    for _ in range(total_requests):
        t += float(arrival_rng.exponential(1.0 / rate))
        health = plan.health_at(t) if plan is not None else HEALTHY
        healed = prev_down - health.down_nodes
        for node_id in healed:
            staged = frontend.nodes[node_id].cached_bytes
            rebalance_bytes += staged
            reg.counter("cluster.rebalance.bytes").inc(staged)
            logger.info(
                "node %d healed at t=%.3f: re-staged %d bytes",
                node_id, t, staged,
            )
        prev_down = health.down_nodes
        keys = key_rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
        resp = frontend.serve(keys, t, health=health, execute=True)
        sim_end = max(sim_end, t + resp.elapsed)
        hedges += resp.hedges
        hedge_wins += resp.hedge_wins
        failovers += resp.failovers
        replica_keys += resp.replica_keys
        served_keys += resp.served
        host_fallback_keys += resp.host_fallback_keys
        partial_responses += int(resp.partial)
        rpc_retries += resp.rpc_retries
        rpc_timeouts += resp.rpc_timeouts
        ok = resp.ok and resp.elapsed <= deadline
        if ok:
            served_ok += 1
            latencies.append(resp.elapsed)
            if resp.values is not None:
                served = np.ones(len(keys), dtype=bool)
                served[resp.failed_positions] = False
                if not np.array_equal(resp.values[served], table[keys[served]]):
                    values_exact = False
        elif resp.partial:
            failed += 1
        else:
            expired += 1
        if _in_any_window(t, windows):
            window_total += 1
            window_ok += int(ok)
        else:
            steady_total += 1
            steady_ok += int(ok)

    # Any node still down when arrivals stop heals during the drain.
    if prev_down:
        for node_id in prev_down:
            staged = frontend.nodes[node_id].cached_bytes
            rebalance_bytes += staged
            reg.counter("cluster.rebalance.bytes").inc(staged)

    violations = frontend.verify_integrity()
    integrity_failures = len(violations) + (0 if values_exact else 1)
    for v in violations:
        logger.error("cluster integrity: %s", v)

    steady_rate = steady_ok / steady_total if steady_total else 0.0
    if window_total == 0:
        ratio = 1.0
    elif steady_rate > 0:
        ratio = (window_ok / window_total) / steady_rate
    else:
        ratio = 0.0

    node_requests_end = _node_counter_values(reg, "cluster.node.requests")
    node_requests = {
        node: count - node_requests_start.get(node, 0)
        for node, count in node_requests_end.items()
        if count - node_requests_start.get(node, 0) > 0
    }
    lat = np.array(latencies) if latencies else np.array([0.0])
    report = SoakReport(
        scenario=cfg.scenario,
        requests=total_requests,
        served_ok=served_ok,
        expired=expired,
        failed=failed,
        goodput_rps=served_ok / sim_end if sim_end > 0 else 0.0,
        hedges=hedges,
        hedge_wins=hedge_wins,
        p50_latency=float(np.percentile(lat, 50)),
        p99_latency=float(np.percentile(lat, 99)),
        p999_latency=float(np.percentile(lat, 99.9)),
        max_queue_depth=0,
        queue_capacity=cfg.queue_capacity,
        breaker_transitions=frontend.breakers.transition_counts(),
        breaker_transitions_by_source=(
            frontend.breakers.transition_counts_by_source()
        ),
        breaker_time_in_state=frontend.breakers.time_in_state(sim_end),
        integrity_failures=integrity_failures,
        duration=sim_end,
        arrival_rate=rate,
        baseline_service=s0,
        nodes=cfg.nodes,
        replication=cfg.replication,
        failovers=failovers,
        replica_read_fraction=(
            replica_keys / served_keys if served_keys else 0.0
        ),
        host_fallback_keys=host_fallback_keys,
        partial_responses=partial_responses,
        rpc_retries=rpc_retries,
        rpc_timeouts=rpc_timeouts,
        failover_goodput_ratio=ratio,
        steady_goodput_rps=steady_rate * rate,
        rebalance_bytes=rebalance_bytes,
        node_requests=node_requests,
    )
    if reg.enabled:
        reg.gauge("cluster.failover_goodput_ratio").set(ratio)
        reg.gauge("cluster.replica_read_fraction").set(
            report.replica_read_fraction
        )
        for node, count in report.node_requests.items():
            reg.gauge("cluster.node.qps", node=node).set(
                count / sim_end if sim_end > 0 else 0.0
            )
    logger.info(
        "cluster soak %s: %d nodes R=%d, %d ok / %d requests, "
        "failover goodput %.0f%%, %d failovers, %d rebalanced bytes",
        cfg.scenario, cfg.nodes, cfg.replication,
        served_ok, total_requests, 100 * ratio,
        report.failovers, rebalance_bytes,
    )
    return report
