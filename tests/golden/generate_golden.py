"""Regenerate the golden extraction-plan/price fixture.

The golden file (``extraction_golden.json``) pins the exact plans, prices
and gathered values the extraction pipeline produces on seeded workloads,
across every consumer of the plan→price sequence: the factored extractor,
the batch engine, the event-driven simulators, the serving runtime, and
the cache lookup path.  ``tests/test_golden_pipeline.py`` replays the same
scenarios and asserts byte-identical results, so a refactor of the hot
path cannot silently change what is planned or how it is priced.

It was first generated from the pre-pipeline implementation (PR 3), which
is what makes the pipeline refactor's equivalence claim meaningful.  Only
regenerate it when an *intentional* behaviour change lands:

    PYTHONPATH=src python tests/golden/generate_golden.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import partition_policy
from repro.faults.spec import HealthView
from repro.hardware import server_a, server_c
from repro.serve.request import SimClock
from repro.serve.runtime import ServeConfig, ServingRuntime
from repro.sim.engine import simulate_batch
from repro.sim.event_sim import (
    simulate_factored_event_driven,
    simulate_hedged_extraction,
    simulate_naive_event_driven,
)
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

GOLDEN_PATH = pathlib.Path(__file__).parent / "extraction_golden.json"

N, D = 2000, 8


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _plan_record(plan) -> dict:
    return {
        "dst": int(plan.dst),
        "batch_size": int(plan.batch_size),
        "rerouted_keys": int(plan.rerouted_keys),
        "failed_sources": [int(s) for s in plan.failed_sources],
        "groups": [
            {
                "source": int(g.source),
                "dedicated_cores": int(g.dedicated_cores),
                "positions": _digest(np.asarray(g.batch_positions, dtype=np.int64)),
                "keys": _digest(np.asarray(g.keys, dtype=np.int64)),
                "offsets": _digest(np.asarray(g.offsets, dtype=np.int64)),
            }
            for g in plan.groups
        ],
    }


def _report_record(report) -> dict:
    return {
        "time": report.time,
        "time_by_source": {str(k): v for k, v in sorted(report.time_by_source.items())},
        "volumes": {str(k): v for k, v in sorted(report.volumes.items())},
    }


def _scenarios():
    """(name, platform, health, exclude) tuples the golden file covers."""
    yield "a_healthy", server_a(), None, None
    yield "a_gpu1_down", server_a(), HealthView(down_gpus=frozenset({1})), None
    yield (
        "a_slow_link_excl3",
        server_a(),
        HealthView(link_factors=((((0, 2)), 0.5),)),
        frozenset({3}),
    )
    yield "c_healthy", server_c(), None, None
    yield "c_gpu2_down", server_c(), HealthView(down_gpus=frozenset({2})), None


def build() -> dict:
    doc: dict = {"version": 1, "scenarios": {}}
    for name, platform, health, exclude in _scenarios():
        rng = np.random.default_rng(1234)
        table = rng.standard_normal((N, D)).astype(np.float32)
        hotness = zipf_pmf(N, 1.2) * 1000.0
        placement = partition_policy(hotness, 200, platform.num_gpus)
        cache = MultiGpuEmbeddingCache(platform, table, placement)
        extractor = FactoredExtractor(cache)
        keys_per_gpu = [
            rng.integers(0, N, size=256) for _ in range(platform.num_gpus)
        ]

        record: dict = {"plans": [], "prices": [], "lookups": []}

        # Consumer 1: the extractor — plan, execute, price.
        demands = []
        for dst, keys in enumerate(keys_per_gpu):
            plan = extractor.plan(
                dst, keys, health=health, exclude_sources=exclude
            )
            values, demand = extractor.execute(plan)
            demands.append(demand)
            entry = _plan_record(plan)
            entry["values"] = _digest(values)
            record["plans"].append(entry)
            record["prices"].append(
                _report_record(extractor.price(dst, keys, health=health))
            )

        # Consumer 2: the batch engine, over the executed demands.
        batch = simulate_batch(
            platform, demands, mechanism=Mechanism.FACTORED, health=health
        )
        record["batch"] = {
            "time": batch.time,
            "per_gpu": [_report_record(r) for r in batch.per_gpu],
            "volume_split": batch.volume_split(),
        }

        # Consumer 3: the event-driven simulators (incl. the hedge racer).
        ev = simulate_factored_event_driven(platform, demands[0])
        nv = simulate_naive_event_driven(platform, demands[0], seed=7)
        hedged = simulate_hedged_extraction(
            platform, demands[0], hedge_issue_at=ev.total_time * 0.5
        )
        record["event_sim"] = {
            "factored": [ev.total_time, ev.chunks_processed, ev.events],
            "naive": [nv.total_time, nv.chunks_processed, nv.events],
            "hedged": [
                hedged.total_time,
                hedged.primary_time,
                hedged.hedge_time,
                hedged.winner,
            ],
        }

        # Consumer 4: the serving runtime (pricing + hedging per request).
        runtime = ServingRuntime(
            extractor,
            ServeConfig(hedge_enabled=True, hedge_headroom=1e6),
            clock=SimClock(),
        )
        responses = []
        for dst, keys in enumerate(keys_per_gpu):
            request = runtime.make_request(dst, keys, now=0.0, deadline=10.0)
            # Sub-millisecond service times keep the serving hedge from
            # tripping even at huge headroom; the hedge race itself is
            # pinned by the event_sim section above.
            response = runtime.serve_request(request, now=0.0)
            responses.append(
                {
                    "status": response.status.value,
                    "service_time": response.service_time,
                    "hedged": response.hedged,
                    "hedge_won": response.hedge_won,
                    "rerouted_keys": response.rerouted_keys,
                    "values": _digest(response.values),
                }
            )
        record["serve"] = responses

        # Consumer 5: the cache's own lookup path (resolve + gather).
        for dst in (0, platform.num_gpus - 1):
            result = cache.lookup(dst, keys_per_gpu[dst])
            record["lookups"].append(
                {
                    "dst": dst,
                    "sources": _digest(
                        np.asarray(result.sources, dtype=np.int64)
                    ),
                    "values": _digest(result.values),
                    "volumes": {
                        str(k): v
                        for k, v in sorted(result.demand.volumes.items())
                    },
                }
            )

        doc["scenarios"][name] = record
    return doc


def main() -> None:
    doc = build()
    GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
