"""Property-based invariants of the drift-adaptation layer.

Four contracts, each the kind that silently rots without a property
suite pinning it:

* the streaming estimator *converges* on a stationary stream;
* the detector *never fires* on a stationary trace (false-positive
  bound over seeds);
* an incremental warm-started re-solve is identical in realized cost
  class to a cold solve on the same hotness snapshot;
* a drift soak with adaptation *off* is byte-identical to the same
  trace before the adaptation layer existed (same responses, same RNG
  consumption) — the new machinery must cost nothing when unused.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drift_adapt import (
    DriftDetector,
    DriftDetectorConfig,
    StreamingHotnessEstimator,
)
from repro.core.evaluate import evaluate_placement
from repro.core.solver import solve_policy_with_fallback, warm_start_policy
from repro.hardware.platform import server_a
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.drift

PLATFORM = server_a()


def _zipf_draws(rng, pmf, batch, batches):
    return [rng.choice(len(pmf), size=batch, p=pmf) for _ in range(batches)]


class TestEstimatorConvergence:
    @given(
        seed=st.integers(0, 2**31 - 1),
        decay=st.floats(min_value=0.8, max_value=1.0),
        alpha=st.floats(min_value=0.8, max_value=1.4),
    )
    @settings(max_examples=25, deadline=None)
    def test_converges_on_stationary_stream(self, seed, decay, alpha):
        """After enough batches the decayed estimate tracks the true
        per-batch expectation: total mass ≈ batch size, and the hot head
        ranks above the cold tail."""
        n, batch = 400, 256
        pmf = zipf_pmf(n, alpha)
        rng = np.random.default_rng(seed)
        est = StreamingHotnessEstimator(n, decay=decay)
        for keys in _zipf_draws(rng, pmf, batch, 80):
            est.record(keys)
        hot = est.hotness()
        # mass: expected accesses per batch sum to the batch size.
        assert hot.sum() == pytest.approx(batch, rel=0.05)
        # ranking: the true top decile out-scores the true bottom half.
        order = np.argsort(-pmf)
        head = hot[order[: n // 10]].mean()
        tail = hot[order[n // 2 :]].mean()
        assert head > tail

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_decayed_estimate_tracks_regime_change(self, seed):
        """With decay < 1 the estimate forgets the old regime; with
        decay == 1 it stays anchored to the lifetime average."""
        n, batch = 300, 256
        pmf_a = zipf_pmf(n, 1.2)
        pmf_b = np.roll(pmf_a, n // 2)
        rng = np.random.default_rng(seed)
        fast = StreamingHotnessEstimator(n, decay=0.9)
        slow = StreamingHotnessEstimator(n, decay=1.0)
        for keys in _zipf_draws(rng, pmf_a, batch, 40):
            fast.record(keys)
            slow.record(keys)
        for keys in _zipf_draws(rng, pmf_b, batch, 40):
            fast.record(keys)
            slow.record(keys)
        new_head = np.argsort(-pmf_b)[: n // 20]
        expected = pmf_b[new_head].sum() * batch
        fast_mass = fast.hotness()[new_head].sum()
        slow_mass = slow.hotness()[new_head].sum()
        # the decayed estimator is closer to the new regime's truth.
        assert abs(fast_mass - expected) < abs(slow_mass - expected)


class TestDetectorFalsePositives:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_fires_on_stationary_trace(self, seed):
        """Sampling noise alone must not trip the detector: zero fires
        across seeds on a stream drawn from the snapshot itself."""
        n, batch = 500, 256
        pmf = zipf_pmf(n, 1.1)
        snapshot = pmf * batch
        est = StreamingHotnessEstimator(n, decay=0.95)
        det = DriftDetector(snapshot, DriftDetectorConfig(min_batches=8))
        rng = np.random.default_rng(seed)
        for i, keys in enumerate(_zipf_draws(rng, pmf, batch, 120)):
            est.record(keys)
            if i % 8 == 7:
                score = det.check(
                    est.hotness(), at=float(i), batches=est.batches_recorded
                )
                assert not score.fired
        assert det.detections == 0

    def test_fires_on_genuine_rotation(self):
        """Sanity bound on the false-negative side: a full head rotation
        must fire within a few checks."""
        n, batch = 500, 256
        pmf = zipf_pmf(n, 1.1)
        rotated = np.roll(pmf, n // 2)
        est = StreamingHotnessEstimator(n, decay=0.9)
        det = DriftDetector(pmf * batch, DriftDetectorConfig(min_batches=8))
        rng = np.random.default_rng(0)
        fired = False
        for i, keys in enumerate(_zipf_draws(rng, rotated, batch, 80)):
            est.record(keys)
            if i % 8 == 7:
                s = det.check(
                    est.hotness(), at=float(i), batches=est.batches_recorded
                )
                fired = fired or s.fired
        assert fired


class TestIncrementalCostClass:
    @pytest.mark.parametrize("shift_frac", [0.25, 0.5])
    def test_warm_start_matches_cold_solve_cost(self, shift_frac):
        """On a pure rank permutation the incremental policy's realized
        placement costs the same (±10%) as a cold solve of the same
        snapshot — reusing the LP point loses nothing, because the §6.3
        block profile is rank-sliced, not identity-keyed."""
        n, cap, eb = 2000, 300, 128
        hot = zipf_pmf(n, 1.1) * 1024
        rng = np.random.default_rng(3)
        rng.shuffle(hot)
        cold0 = solve_policy_with_fallback(PLATFORM, hot, cap, eb)
        assert cold0.solved is not None

        order = np.argsort(-hot)
        rolled = np.roll(order, int(shift_frac * n))
        drifted = np.empty(n)
        drifted[rolled] = np.sort(hot)[::-1]

        warm = warm_start_policy(PLATFORM, drifted, cap, eb, cold0.solved)
        cold1 = solve_policy_with_fallback(PLATFORM, drifted, cap, eb)

        t_warm = evaluate_placement(PLATFORM, warm.realize(), drifted, eb).time
        t_cold = evaluate_placement(PLATFORM, cold1.placement, drifted, eb).time
        assert t_warm == pytest.approx(t_cold, rel=0.10)

    def test_warm_start_refuses_shape_change(self):
        """A flash crowd (second head appears) changes the hotness
        *profile*; reused fractions are no longer trustworthy and the
        guard must hand the solve back to the cold chain."""
        from repro.core.solver import PolicySolveError

        n, cap, eb = 2000, 300, 128
        hot = zipf_pmf(n, 1.1) * 1024
        cold = solve_policy_with_fallback(PLATFORM, hot, cap, eb)
        flat = np.full(n, hot.mean())
        with pytest.raises(PolicySolveError):
            warm_start_policy(PLATFORM, flat, cap, eb, cold.solved)
        out = solve_policy_with_fallback(PLATFORM, flat, cap, eb, warm=cold.solved)
        assert out.source != "incremental"


class TestAdaptOffByteIdentity:
    def test_drift_soak_with_adapt_off_is_deterministic(self):
        """Two adapt-off runs of the same drifting trace are identical
        response for response: the adaptation layer consumes no RNG and
        touches no serving state when disabled."""
        from repro.serve.soak import SoakConfig, run_soak

        cfg = SoakConfig.quick(
            seed=5, requests_per_gpu=40, drift="rotating-head"
        )
        a = run_soak(cfg)
        b = run_soak(cfg)
        assert a.to_dict() == b.to_dict()
        assert a.drift_detections == 0 and a.adapt_events == []

    def test_stationary_soak_unchanged_by_drift_layer(self):
        """The default (no-drift) path reports all-default drift fields
        and never builds a schedule — golden-pinned elsewhere, asserted
        cheaply here."""
        from repro.serve.soak import SoakConfig, run_soak

        r = run_soak(SoakConfig.quick(seed=2, requests_per_gpu=30))
        assert r.drift_scenario == ""
        assert not r.adapt_enabled
        assert r.drift_tape == [] and r.adapt_events == []
        assert r.transition_goodput_ratio == 1.0
