"""k-hop neighbourhood sampling."""

import numpy as np
import pytest

from repro.gnn.graph import power_law_graph
from repro.gnn.sampling import khop_sample, negative_sample, sample_neighbors
from repro.utils.rng import make_rng


@pytest.fixture
def graph():
    return power_law_graph(500, 3000, degree_alpha=0.8, seed=0)


class TestSampleNeighbors:
    def test_samples_are_neighbors(self, graph):
        frontier = np.array([0, 1, 2])
        out = sample_neighbors(graph, frontier, 5, make_rng(0))
        neighborhood = set()
        for u in frontier:
            neighborhood.update(graph.neighbors(int(u)).tolist())
        assert set(out.tolist()) <= neighborhood

    def test_fanout_respected(self, graph):
        frontier = np.array([0, 1])
        out = sample_neighbors(graph, frontier, 7, make_rng(0))
        assert len(out) == 14  # degree floor guarantees non-empty adjacency

    def test_zero_degree_nodes_skipped(self):
        from repro.gnn.graph import CSRGraph

        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]))
        out = sample_neighbors(g, np.array([2]), 4, make_rng(0))
        assert out.size == 0

    def test_empty_frontier(self, graph):
        out = sample_neighbors(graph, np.empty(0, dtype=np.int64), 3, make_rng(0))
        assert out.size == 0

    def test_rejects_bad_fanout(self, graph):
        with pytest.raises(ValueError):
            sample_neighbors(graph, np.array([0]), 0, make_rng(0))


class TestKhopSample:
    def test_includes_seeds(self, graph):
        seeds = np.array([5, 10, 15])
        batch = khop_sample(graph, seeds, (4, 2), seed=1)
        assert set(seeds.tolist()) <= set(batch.unique_nodes.tolist())
        assert np.array_equal(batch.all_nodes[:3], seeds)

    def test_all_nodes_counts_duplicates(self, graph):
        seeds = np.array([0] * 10)
        batch = khop_sample(graph, seeds, (5,), seed=1)
        # 10 seeds + 10×5 neighbour samples.
        assert batch.total_sampled == 60
        assert batch.num_keys == 60

    def test_unique_nodes_deduplicated(self, graph):
        seeds = np.array([0] * 10)
        batch = khop_sample(graph, seeds, (5,), seed=1)
        assert len(batch.unique_nodes) < batch.total_sampled
        assert len(np.unique(batch.unique_nodes)) == len(batch.unique_nodes)

    def test_deeper_fanouts_sample_more(self, graph):
        seeds = np.arange(20)
        one = khop_sample(graph, seeds, (5,), seed=2)
        two = khop_sample(graph, seeds, (5, 5), seed=2)
        assert two.total_sampled > one.total_sampled

    def test_deterministic(self, graph):
        seeds = np.arange(10)
        a = khop_sample(graph, seeds, (4, 3), seed=9)
        b = khop_sample(graph, seeds, (4, 3), seed=9)
        assert np.array_equal(a.all_nodes, b.all_nodes)

    def test_empty_seeds(self, graph):
        batch = khop_sample(graph, np.empty(0, dtype=np.int64), (4,), seed=0)
        assert batch.total_sampled == 0


class TestNegativeSample:
    def test_range(self):
        out = negative_sample(100, 1000, make_rng(0))
        assert out.min() >= 0 and out.max() < 100

    def test_count(self):
        assert len(negative_sample(100, 17, make_rng(0))) == 17

    def test_roughly_uniform(self):
        out = negative_sample(10, 100_000, make_rng(0))
        counts = np.bincount(out, minlength=10)
        assert counts.min() > 8000  # each value ~10k ± noise

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            negative_sample(10, -1, make_rng(0))
