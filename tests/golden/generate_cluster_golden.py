"""Regenerate ``soak_cluster.json``: the PR-7 cluster soak anchor.

The self-healing layer (scrubbing + staged recovery + watchdog) must
leave the repair-disabled cluster path untouched: a soak with
``--nodes 3 --replication 2`` and every repair knob at its default (off)
has to keep producing byte-for-byte the report the pre-repair code
produced.  This script pins two CI-sized runs — the fault-free
``steady`` scenario and the ``node-kill`` chaos scenario — at seed 0.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate_cluster_golden.py

The golden test compares only the keys present in the fixture, so later
PRs may *add* report fields but never change the pinned ones.
"""

from __future__ import annotations

import json
import pathlib

SCENARIOS = ("steady", "node-kill")


def build() -> dict:
    from repro.obs import MetricsRegistry, use_registry
    from repro.serve.soak import SoakConfig, run_soak

    scenarios = {}
    for scenario in SCENARIOS:
        cfg = SoakConfig.quick(
            seed=0, scenario=scenario, nodes=3, replication=2
        )
        with use_registry(MetricsRegistry(f"golden-cluster-{scenario}")):
            report = run_soak(cfg)
        scenarios[scenario] = report.to_dict()
    return {"scenarios": scenarios}


if __name__ == "__main__":
    out = pathlib.Path(__file__).parent / "soak_cluster.json"
    out.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
