"""Baseline systems of §8.1, plus UGache behind the same interface."""

from repro.baselines.lru import LruCache, LruStats, steady_state_overlap
from repro.baselines.base import (
    EmbCacheSystem,
    SystemContext,
    SystemResult,
    UnsupportedConfiguration,
    evaluate_system,
)
from repro.baselines.systems import (
    DLR_SYSTEMS,
    GNN_SYSTEMS,
    ISOLATION_SYSTEMS,
    GnnLabSystem,
    HpsSystem,
    PartUSystem,
    RepUSystem,
    SokSystem,
    UGacheSystem,
    WholeGraphSystem,
)

__all__ = [
    "LruCache",
    "LruStats",
    "steady_state_overlap",
    "EmbCacheSystem",
    "SystemContext",
    "SystemResult",
    "UnsupportedConfiguration",
    "evaluate_system",
    "DLR_SYSTEMS",
    "GNN_SYSTEMS",
    "ISOLATION_SYSTEMS",
    "GnnLabSystem",
    "HpsSystem",
    "PartUSystem",
    "RepUSystem",
    "SokSystem",
    "UGacheSystem",
    "WholeGraphSystem",
]
