"""Scaled stand-ins for the paper's DLR datasets (Table 3).

Criteo-TB's 26 embedding tables are scaled ~1000× while keeping their
heavily heterogeneous size mix (a few huge tables dominate the volume);
SYN-A and SYN-B are the paper's own synthetic datasets — 100 equal tables
with Zipf(1.2) / Zipf(1.4) request keys — reproduced at 1/1000 scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlr.workload import DlrWorkload

#: Approximate relative cardinalities of Criteo-TB's 26 categorical
#: features: a handful of ID-like features hold nearly all entries, the
#: rest are tiny — the shape that makes multi-table caching interesting.
_CRITEO_PROPORTIONS = np.array(
    [
        0.32, 0.24, 0.15, 0.10, 0.07, 0.05, 0.03, 0.015, 0.008, 0.005,
        0.003, 0.002, 0.0015, 0.001, 0.0008, 0.0006, 0.0005, 0.0004,
        0.0003, 0.00025, 0.0002, 0.00015, 0.0001, 0.00008, 0.00006, 0.00005,
    ]
)


@dataclass(frozen=True)
class DlrDatasetSpec:
    """Declarative description of one DLR dataset stand-in."""

    key: str
    paper_name: str
    table_sizes: tuple[int, ...]
    dim: int
    alpha: float
    scale: float
    paper_volume_gb: float

    @property
    def num_tables(self) -> int:
        return len(self.table_sizes)

    @property
    def num_entries(self) -> int:
        return int(sum(self.table_sizes))

    @property
    def entry_bytes(self) -> int:
        return self.dim * 4  # float32 throughout (Table 3)

    @property
    def embedding_bytes(self) -> int:
        return self.num_entries * self.entry_bytes

    def workload(
        self, batch_size: int = 8192, num_gpus: int = 8, seed: int = 0
    ) -> DlrWorkload:
        return DlrWorkload(
            table_sizes=self.table_sizes,
            alpha=self.alpha,
            batch_size=batch_size,
            num_gpus=num_gpus,
            seed=seed,
        )


def _criteo_sizes(total_entries: int) -> tuple[int, ...]:
    props = _CRITEO_PROPORTIONS / _CRITEO_PROPORTIONS.sum()
    sizes = np.maximum(1, np.round(props * total_entries)).astype(int)
    return tuple(int(s) for s in sizes)


DLR_SPECS: dict[str, DlrDatasetSpec] = {
    "cr": DlrDatasetSpec(
        key="cr",
        paper_name="Criteo-TB",
        table_sizes=_criteo_sizes(882_000),
        dim=128,
        alpha=1.10,
        scale=882_000 / 882_000_000,
        paper_volume_gb=420.9,
    ),
    "syn-a": DlrDatasetSpec(
        key="syn-a",
        paper_name="SYN-A",
        table_sizes=tuple([8_000] * 100),
        dim=128,
        alpha=1.2,
        scale=800_000 / 800_000_000,
        paper_volume_gb=381.5,
    ),
    "syn-b": DlrDatasetSpec(
        key="syn-b",
        paper_name="SYN-B",
        table_sizes=tuple([8_000] * 100),
        dim=128,
        alpha=1.4,
        scale=800_000 / 800_000_000,
        paper_volume_gb=381.5,
    ),
    # Reduced variants the paper introduces for the Figure 16 optimal
    # comparison on Server B (SYN-As / SYN-Bs: 10k-entry tables, 1M total;
    # further reduced here to keep the per-entry solve tractable).
    "syn-as": DlrDatasetSpec(
        key="syn-as",
        paper_name="SYN-As",
        table_sizes=tuple([2_000] * 10),
        dim=128,
        alpha=1.2,
        scale=20_000 / 800_000_000,
        paper_volume_gb=381.5,
    ),
    "syn-bs": DlrDatasetSpec(
        key="syn-bs",
        paper_name="SYN-Bs",
        table_sizes=tuple([2_000] * 10),
        dim=128,
        alpha=1.4,
        scale=20_000 / 800_000_000,
        paper_volume_gb=381.5,
    ),
}


def dlr_spec(key: str) -> DlrDatasetSpec:
    """Look up a DLR dataset stand-in by key (``cr``, ``syn-a``, ...)."""
    spec = DLR_SPECS.get(key)
    if spec is None:
        raise KeyError(f"unknown DLR dataset {key!r}; have {sorted(DLR_SPECS)}")
    return spec
