"""Per-GPU serving workers: one thread per destination GPU.

The soak harness's default loop interleaves every GPU on one thread of a
simulated clock.  :class:`GpuWorkerPool` instead runs one worker thread
per GPU so the per-GPU serving loops execute wall-clock concurrently
against the *shared* cache, location tables, breaker board, and metrics
registry — which is exactly what the thread-safety contract of those
components (reader/writer locking on the cache, per-instrument metric
locks, per-breaker locks) exists to support, and what the ``concurrency``
test suite hammers.

The pool is deliberately dumb: it owns no queues and no policy, it just
fans ``fn(gpu)`` out to the per-GPU threads and joins them.  The soak
harness uses it as a **segment barrier** — all GPUs run a traffic segment
in parallel, join, then a hot policy swap lands on the main thread before
the next segment starts — so swaps never race the serving loops.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.obs import get_registry
from repro.utils.logging import get_logger

logger = get_logger("serve.workers")

__all__ = ["GpuWorkerPool"]

T = TypeVar("T")


class GpuWorkerPool:
    """A thread per GPU, with an ``serve.workers.active`` gauge.

    Usable as a context manager; :meth:`map_gpus` blocks until every
    worker finishes its segment and re-raises the first worker exception
    (after all workers have stopped), so a failure in one GPU's loop
    cannot silently half-run a segment.
    """

    def __init__(self, num_gpus: int, name: str = "serve-gpu") -> None:
        if num_gpus < 1:
            raise ValueError("need at least one GPU worker")
        self.num_gpus = num_gpus
        self._pool = ThreadPoolExecutor(
            max_workers=num_gpus, thread_name_prefix=name
        )

    def __enter__(self) -> "GpuWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def map_gpus(
        self,
        fn: Callable[[int], T],
        gpus: Sequence[int] | None = None,
    ) -> list[T]:
        """Run ``fn(gpu)`` on every worker; barrier until all complete."""
        targets = list(range(self.num_gpus)) if gpus is None else list(gpus)
        reg = get_registry()
        gauge = reg.gauge("serve.workers.active")

        def run(gpu: int) -> T:
            gauge.inc(1)
            try:
                return fn(gpu)
            finally:
                gauge.inc(-1)

        futures = [self._pool.submit(run, g) for g in targets]
        results: list[T] = []
        error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
                logger.error("GPU worker failed: %s", exc)
        if error is not None:
            raise error
        return results

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
