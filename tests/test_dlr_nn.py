"""Numpy DLRM/DCN forward passes."""

import numpy as np
import pytest

from repro.dlr.nn import DcnNet, DlrmNet, serve_batch, sigmoid


@pytest.fixture
def batch(rng):
    dense = rng.standard_normal((32, 13))
    embeddings = rng.standard_normal((32, 5, 8))
    return dense, embeddings


class TestDlrm:
    def test_output_shape_and_range(self, batch):
        dense, emb = batch
        net = DlrmNet(num_tables=5, embedding_dim=8)
        probs = net.forward(dense, emb)
        assert probs.shape == (32,)
        assert ((probs > 0) & (probs < 1)).all()

    def test_deterministic(self, batch):
        dense, emb = batch
        a = DlrmNet(5, 8, seed=1).forward(dense, emb)
        b = DlrmNet(5, 8, seed=1).forward(dense, emb)
        assert np.allclose(a, b)

    def test_embeddings_affect_output(self, batch, rng):
        dense, emb = batch
        net = DlrmNet(5, 8)
        a = net.forward(dense, emb)
        b = net.forward(dense, rng.standard_normal(emb.shape))
        assert not np.allclose(a, b)

    def test_shape_mismatch_rejected(self, batch):
        dense, emb = batch
        net = DlrmNet(6, 8)
        with pytest.raises(ValueError):
            net.forward(dense, emb)

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            DlrmNet(0, 8)


class TestDcn:
    def test_output_shape_and_range(self, batch):
        dense, emb = batch
        net = DcnNet(num_tables=5, embedding_dim=8)
        probs = net.forward(dense, emb)
        assert probs.shape == (32,)
        assert ((probs > 0) & (probs < 1)).all()

    def test_cross_layers_required(self):
        with pytest.raises(ValueError):
            DcnNet(5, 8, cross_layers=0)

    def test_differs_from_dlrm(self, batch):
        dense, emb = batch
        dlrm = DlrmNet(5, 8, seed=0).forward(dense, emb)
        dcn = DcnNet(5, 8, seed=0).forward(dense, emb)
        assert not np.allclose(dlrm, dcn)


class TestServeBatch:
    def test_pulls_through_cache_lookup(self, platform_a, small_table, skewed_hotness, rng):
        from repro.core.cache import MultiGpuEmbeddingCache
        from repro.core.policy import replication_policy

        cache = MultiGpuEmbeddingCache(
            platform_a, small_table, replication_policy(skewed_hotness, 200, 4)
        )
        net = DlrmNet(num_tables=3, embedding_dim=small_table.shape[1])
        keys = rng.integers(0, 2000, size=(16, 3))
        dense = rng.standard_normal((16, 13))
        probs = serve_batch(
            net, lambda k: cache.lookup(0, k).values, keys, dense
        )
        assert probs.shape == (16,)
        # Same keys straight from the table give identical outputs.
        direct = net.forward(dense, small_table[keys.reshape(-1)].reshape(16, 3, -1))
        assert np.allclose(probs, direct)


class TestSigmoid:
    def test_range(self):
        x = np.array([-1e5, -1.0, 0.0, 1.0, 1e5])
        y = sigmoid(x)
        assert ((y > 0) & (y < 1)).all()
        assert y[2] == pytest.approx(0.5)
