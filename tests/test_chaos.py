"""Chaos scenario matrix and its CLI front end (``python -m repro chaos``)."""

import pytest

from repro.faults.chaos import (
    NODE_SCENARIOS,
    SCENARIOS,
    ChaosConfig,
    build_fault_plan,
    build_node_fault_plan,
    render_results,
    run_matrix,
    run_scenario,
)

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def quick_cfg():
    return ChaosConfig.quick(seed=0)


class TestScenarioMatrix:
    def test_every_scenario_has_a_builder_or_driver(self, quick_cfg):
        for scenario in SCENARIOS:
            if scenario in ("solver-timeout", "refresh-interrupt"):
                continue
            builder = (
                build_node_fault_plan
                if scenario in NODE_SCENARIOS
                else build_fault_plan
            )
            plan = builder(scenario, quick_cfg)
            assert len(plan) >= 1
            assert plan.name == scenario

    def test_unknown_scenario_rejected(self, quick_cfg):
        with pytest.raises(ValueError):
            run_scenario("power-outage", quick_cfg)

    def test_gpu_failure_scenario_passes(self, quick_cfg):
        result = run_scenario("gpu-failure", quick_cfg)
        assert result.ok
        assert result.values_exact
        assert result.completed_batches == quick_cfg.num_batches
        assert result.rerouted_keys > 0
        assert result.degradation > 1.0  # host path is slower
        assert result.recovery == pytest.approx(1.0, rel=0.1)

    def test_solver_timeout_scenario_passes(self, quick_cfg):
        result = run_scenario("solver-timeout", quick_cfg)
        assert result.ok
        assert result.extra["source"] in ("greedy", "cached")

    def test_refresh_interrupt_scenario_passes(self, quick_cfg):
        result = run_scenario("refresh-interrupt", quick_cfg)
        assert result.ok
        assert result.values_exact  # bit-identical after rollback
        assert result.extra["rollback_steps"] > 0
        assert result.extra["retry_moved"] > 0

    def test_full_matrix_quick(self, quick_cfg):
        results = run_matrix(cfg=quick_cfg)
        assert len(results) == len(SCENARIOS)
        assert all(r.ok for r in results)
        rendered = render_results(results)
        assert f"{len(SCENARIOS)}/{len(SCENARIOS)} scenarios passed" in rendered
        for scenario in SCENARIOS:
            assert scenario in rendered

    def test_deterministic_across_runs(self, quick_cfg):
        a = run_scenario("link-partition", quick_cfg)
        b = run_scenario("link-partition", quick_cfg)
        assert a.rerouted_keys == b.rerouted_keys
        assert a.baseline_time == pytest.approx(b.baseline_time)
        assert a.degraded_time == pytest.approx(b.degraded_time)


class TestNodeScenarios:
    """The ``node_*`` drills: the 3-node cluster tier loses a whole node."""

    @pytest.mark.parametrize("scenario", sorted(NODE_SCENARIOS))
    def test_node_scenario_passes_and_recovers(self, quick_cfg, scenario):
        result = run_scenario(scenario, quick_cfg)
        assert result.ok
        assert result.values_exact
        assert result.completed_batches == quick_cfg.num_batches
        assert result.rerouted_keys > 0, "the fault must push keys off-primary"
        assert result.degradation > 1.0  # hedged reads are slower
        assert result.recovery == pytest.approx(1.0, rel=0.1)
        assert result.recovered()

    def test_node_flap_schedules_two_stints(self, quick_cfg):
        plan = build_node_fault_plan("node_flap", quick_cfg)
        assert len(plan) == 2
        (first, second) = sorted(plan, key=lambda f: f.onset)
        assert first.clears_at < second.onset, "the node must come back between"

    def test_node_plans_target_a_node_not_a_gpu(self, quick_cfg):
        for scenario in sorted(NODE_SCENARIOS):
            for spec in build_node_fault_plan(scenario, quick_cfg):
                assert spec.node is not None
                assert spec.gpu is None


class TestChaosCli:
    def test_single_scenario_smoke(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--scenario", "gpu-failure", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "gpu-failure" in out
        assert "PASS" in out

    def test_metrics_artifact(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import load_metrics

        path = tmp_path / "chaos.json"
        code = main(
            ["chaos", "--scenario", "corrupt-slot", "--quick",
             "--metrics-out", str(path)]
        )
        assert code == 0
        doc = load_metrics(path)
        names = {m["name"] for m in doc["metrics"]}
        assert "chaos.scenarios" in names
        assert "faults.injected" in names


class TestRecoveryGating:
    def test_recovered_within_tolerance(self):
        from repro.faults.chaos import ScenarioResult

        r = ScenarioResult(
            scenario="x", ok=True,
            baseline_time=1.0, degraded_time=5.0, recovered_time=1.1,
        )
        assert r.recovered(1.25)
        assert not r.recovered(1.05)
        with pytest.raises(ValueError):
            r.recovered(0.5)

    def test_unjudgeable_recovery_counts_as_recovered(self):
        from repro.faults.chaos import ScenarioResult

        # no post-fault window (e.g. solver-timeout): can't be judged
        assert ScenarioResult(scenario="x", ok=True).recovered(1.0)

    def test_summarize_results_flags_unrecovered(self):
        from repro.faults.chaos import ScenarioResult, summarize_results

        good = ScenarioResult(
            scenario="good", ok=True,
            baseline_time=1.0, degraded_time=3.0, recovered_time=1.0,
        )
        stuck = ScenarioResult(
            scenario="stuck", ok=True,
            baseline_time=1.0, degraded_time=3.0, recovered_time=3.0,
        )
        summary = summarize_results([good, stuck], tolerance=1.25)
        assert summary["schema"] == "repro.chaos/v1"
        assert summary["unrecovered"] == ["stuck"]
        assert summary["failed"] == []
        assert not summary["ok"]
        by_name = {s["scenario"]: s for s in summary["scenarios"]}
        assert by_name["good"]["recovered"] is True
        assert by_name["stuck"]["recovered"] is False
        assert by_name["stuck"]["recovery"] == pytest.approx(3.0)

    def test_render_marks_never_recovered(self):
        from repro.faults.chaos import ScenarioResult, render_results

        stuck = ScenarioResult(
            scenario="stuck", ok=True,
            baseline_time=1.0, degraded_time=3.0, recovered_time=3.0,
        )
        text = render_results([stuck], tolerance=1.25)
        assert "NEVER RECOVERED" in text
        assert "FAIL" in text
        assert "0/1 scenarios passed" in text

    def test_cli_exits_nonzero_when_recovery_fails(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "summary.json"
        # an impossible tolerance: even healthy jitter counts as stuck,
        # so the run must exit non-zero and say which scenarios are stuck.
        code = main(
            ["chaos", "--scenario", "gpu-failure", "--quick",
             "--recovery-tolerance", "1.0",
             "--json-out", str(path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "never recovered" in captured.err
        doc = json.loads(path.read_text())
        assert doc["unrecovered"] == ["gpu-failure"]
        assert doc["ok"] is False

    def test_cli_json_out_on_passing_run(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "summary.json"
        code = main(
            ["chaos", "--scenario", "gpu-failure", "--quick",
             "--json-out", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        assert doc["passed"] == 1
        assert doc["scenarios"][0]["scenario"] == "gpu-failure"
