"""Invariant: the solver optimizes the objective the simulator prices."""

from repro.bench.experiments import misc_model_agreement


def bench_misc_model_agreement(run_experiment):
    result = run_experiment(misc_model_agreement)
    errors = [abs(r["rel_error_pct"]) for r in result.rows]
    assert sum(errors) / len(errors) < 15.0
    # The worst cells are tiny-capacity configs where realizing fractional
    # blocks quantizes hard; bounded, not tight.
    assert max(errors) < 80.0
