"""Self-healing layer: anti-entropy scrubbing, staged recovery, watchdog.

The invariants pinned here are the repair subsystem's contract:

* the per-entry checksum detects any single-byte change;
* scrub + repair converges to zero corrupt slots under any seeded
  corruption schedule, and the caches verify clean afterwards;
* a quarantined slot is never served (its routes park at HOST until the
  repair lands);
* staged recovery re-stages every lost ``(gpu, entry)`` pair exactly
  once, in non-increasing hotness block order;
* the node-lifecycle watchdog walks healthy → suspect → ejected →
  recovering → healthy off its three fused signals.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.checksum import row_checksums
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.faults.injector import FaultInjector
from repro.faults.spec import HEALTHY, FaultKind, FaultPlan, FaultSpec
from repro.hardware.platform import HOST, server_a
from repro.repair import (
    CacheScrubber,
    NodeState,
    NodeWatchdog,
    ScrubConfig,
    StagedRecovery,
    WatchdogConfig,
)
from repro.serve.breaker import BreakerState
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = [pytest.mark.faults, pytest.mark.repair]

N, D = 2000, 8


def _stack(seed: int = 0, capacity: int = 400):
    platform = server_a()
    rng = make_rng(seed)
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.2) * 1000.0
    placement = hot_replicate_warm_partition_policy(
        hotness, capacity, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    return platform, table, hotness, cache


def _flip_bytes(cache, schedule_seed: int, flips: int) -> int:
    """Silently corrupt ``flips`` seeded bytes across cached slots.

    Mirrors what the BIT_ROT injector does: mutate ``store.data`` under
    the write lock and leave the stored checksums stale.  Returns how
    many flips actually landed (a draw can hit an empty store).
    """
    rng = make_rng(schedule_seed + 4242)
    landed = 0
    with cache.writing():
        for _ in range(flips):
            gpu = int(rng.integers(cache.platform.num_gpus))
            store = cache.store(gpu)
            cached = store.cached_entries()
            if len(cached) == 0:
                continue
            entry = int(cached[rng.integers(len(cached))])
            slot = int(store.offset_of[entry])
            row = store.data[slot].view(np.uint8)
            pos = int(rng.integers(len(row)))
            row[pos] ^= np.uint8(1 << int(rng.integers(8)))
            landed += 1
    return landed


def _drop_all(cache):
    """Evict every cached entry (arenas survive) and rebuild routing."""
    lost = cache.placement
    with cache.writing():
        for g in range(cache.platform.num_gpus):
            store = cache.store(g)
            for entry in store.cached_entries():
                store.evict(int(entry))
    cache.refresh_source_map()
    return lost


class TestChecksum:
    @given(
        pos=st.integers(min_value=0, max_value=4 * D - 1),
        bit=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_detects_any_single_byte_flip(self, pos, bit, seed):
        row = make_rng(seed).standard_normal((1, D)).astype(np.float32)
        before = row_checksums(row)[0]
        flipped = row.copy()
        flipped.view(np.uint8)[0, pos] ^= np.uint8(1 << bit)
        assert row_checksums(flipped)[0] != before


class TestScrubConvergence:
    @given(
        schedule_seed=st.integers(min_value=0, max_value=2**16),
        flips=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=10, deadline=None)
    def test_ticks_converge_to_zero_corrupt_slots(self, schedule_seed, flips):
        _platform, table, _hotness, cache = _stack()
        _flip_bytes(cache, schedule_seed, flips)
        scrubber = CacheScrubber(cache, ScrubConfig(seed=schedule_seed))
        # The default scan budget covers a whole store per tick, so one
        # round-robin lap scans everything; a second lap repairs any
        # rot the first quarantined late.
        for _ in range(2 * cache.platform.num_gpus):
            scrubber.tick()
        assert scrubber.quarantine_depth == 0
        assert scrubber.scrub_all().mismatches == 0
        assert cache.verify_integrity() == []
        keys = make_rng(schedule_seed).integers(0, N, size=500)
        for gpu in range(cache.platform.num_gpus):
            assert np.array_equal(cache.lookup(gpu, keys).values, table[keys])

    def test_scrub_all_is_a_full_reconciliation(self):
        _platform, _table, _hotness, cache = _stack()
        landed = _flip_bytes(cache, 7, 10)
        assert landed > 0
        scrubber = CacheScrubber(cache)
        tick = scrubber.scrub_all()
        assert tick.mismatches > 0
        assert tick.repaired == tick.mismatches
        assert cache.verify_integrity() == []


class TestQuarantine:
    def _rotten_routed_slot(self, cache):
        """Corrupt one slot some destination actually routes to."""
        for gpu in range(cache.platform.num_gpus):
            store = cache.store(gpu)
            for entry in store.cached_entries():
                dsts = np.flatnonzero(cache.source_map[:, entry] == gpu)
                if len(dsts) == 0:
                    continue
                slot = int(store.offset_of[entry])
                with cache.writing():
                    store.data[slot].view(np.uint8)[0] ^= np.uint8(0x40)
                return gpu, int(entry), dsts
        pytest.fail("no routed cached slot found")

    def test_quarantined_slot_is_never_served(self):
        _platform, table, _hotness, cache = _stack()
        gpu, entry, dsts = self._rotten_routed_slot(cache)
        # Repair budget zero: the slot stays quarantined indefinitely.
        scrubber = CacheScrubber(cache, ScrubConfig(repair_bytes_per_tick=0))
        for _ in range(cache.platform.num_gpus):
            scrubber.tick()
        assert scrubber.quarantine_depth >= 1
        keys = np.array([entry], dtype=np.int64)
        for dst in dsts:
            result = cache.lookup(int(dst), keys)
            assert int(result.sources[0]) != gpu
            assert np.array_equal(result.values, table[keys])

    def test_repair_restores_routes_and_bytes(self):
        _platform, table, _hotness, cache = _stack()
        gpu, entry, dsts = self._rotten_routed_slot(cache)
        scrubber = CacheScrubber(cache)
        for _ in range(cache.platform.num_gpus):
            scrubber.tick()
        assert scrubber.quarantine_depth == 0
        store = cache.store(gpu)
        slot = int(store.offset_of[entry])
        assert np.array_equal(store.data[slot], table[entry])
        assert (cache.source_map[dsts, entry] == gpu).all()
        assert cache.verify_integrity() == []

    def test_read_guard_patches_in_flight(self):
        _platform, table, _hotness, cache = _stack()
        gpu, entry, dsts = self._rotten_routed_slot(cache)
        scrubber = CacheScrubber(cache)
        dst = int(dsts[0])
        keys = np.array([entry], dtype=np.int64)
        values = cache.lookup(dst, keys).values
        assert not np.array_equal(values, table[keys])  # rot reached us
        values, patched = scrubber.guard_read(dst, keys, values)
        assert patched == 1
        assert np.array_equal(values, table[keys])
        assert scrubber.quarantine_depth >= 1
        # ...and the rotten source is off the routing table.
        assert int(cache.source_map[dst, entry]) == HOST


class TestStagedRecovery:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        chunk=st.integers(min_value=16, max_value=512),
    )
    @settings(max_examples=10, deadline=None)
    def test_exactly_once_in_hotness_order(self, seed, chunk):
        _platform, _table, hotness, cache = _stack(seed=seed)
        lost = _drop_all(cache)
        node = SimpleNamespace(cache=cache, node_id=0)
        rec = StagedRecovery(node, lost, hotness, chunk_entries=chunk)
        while not rec.done:
            assert rec.grant(float("inf")).blocks > 0
        # Exactly once: the staged multiset equals the lost multiset.
        staged = np.concatenate(rec.staged_log)
        lost_flat = np.concatenate(lost.per_gpu)
        assert sorted(staged.tolist()) == sorted(lost_flat.tolist())
        # Hotness order: the flattened stage sequence never heats up.
        h = hotness[staged]
        assert (h[1:] <= h[:-1] + 1e-12).all()
        # The stores hold the lost placement again.
        for g, ids in enumerate(lost.per_gpu):
            assert set(cache.store(g).cached_entries().tolist()) == set(
                ids.tolist()
            )
        assert rec.restaged_keys(lost_flat).all()
        assert cache.verify_integrity() == []

    def test_zero_budget_stages_nothing(self):
        _platform, _table, hotness, cache = _stack()
        lost = _drop_all(cache)
        rec = StagedRecovery(
            SimpleNamespace(cache=cache, node_id=0), lost, hotness
        )
        assert rec.grant(0.0).blocks == 0
        assert not rec.done
        with pytest.raises(ValueError):
            rec.grant(-1.0)
        assert rec.finish().entries == sum(len(i) for i in lost.per_gpu)
        assert rec.done

    def test_remaining_placement_is_the_unstaged_tail(self):
        _platform, _table, hotness, cache = _stack()
        lost = _drop_all(cache)
        rec = StagedRecovery(
            SimpleNamespace(cache=cache, node_id=0), lost, hotness,
            chunk_entries=64,
        )
        # Stage exactly one block, then ask for the remainder.
        first_cost = rec._block_cost(rec._blocks[0])
        assert rec.grant(first_cost).blocks == 1
        rem = rec.remaining_placement()
        staged = set(np.concatenate(rec.staged_log).tolist())
        rem_flat = set(np.concatenate(rem.per_gpu).tolist())
        lost_flat = [int(e) for ids in lost.per_gpu for e in ids]
        assert rem_flat.isdisjoint(set() if not staged else staged) or (
            # an entry staged on one GPU may remain lost on another
            len(rem_flat) + len(staged) >= len(set(lost_flat))
        )
        assert sum(len(i) for i in rem.per_gpu) == rec.remaining_entries


class TestWatchdog:
    def _observe(self, dog, now, health, breaker=None, depth=None):
        return dog.observe(
            now, health, breaker_states=breaker, quarantine_depth=depth
        )

    def test_full_lifecycle(self):
        dog = NodeWatchdog([0, 1])
        self._observe(dog, 0.0, HEALTHY)
        assert dog.states() == {0: NodeState.HEALTHY, 1: NodeState.HEALTHY}

        down = replace(HEALTHY, down_nodes=frozenset({1}))
        self._observe(dog, 1.0, down)
        assert dog.state(1) is NodeState.EJECTED

        rec = SimpleNamespace(done=False, restaged_keys=lambda k: k)
        dog.attach_recovery(1, rec)
        self._observe(dog, 2.0, HEALTHY)
        assert dog.state(1) is NodeState.RECOVERING
        assert dog.active_recoveries() == [(1, rec)]

        rec.done = True
        self._observe(dog, 3.0, HEALTHY)
        assert dog.state(1) is NodeState.HEALTHY
        kinds = [(tr.node, tr.old, tr.new) for tr in dog.transitions]
        assert (1, NodeState.HEALTHY, NodeState.EJECTED) in kinds
        assert (1, NodeState.EJECTED, NodeState.RECOVERING) in kinds
        assert (1, NodeState.RECOVERING, NodeState.HEALTHY) in kinds

    def test_breaker_and_quarantine_signals(self):
        dog = NodeWatchdog([0])
        self._observe(dog, 0.0, HEALTHY, breaker={0: BreakerState.OPEN})
        assert dog.state(0) is NodeState.EJECTED
        self._observe(dog, 1.0, HEALTHY, breaker={0: BreakerState.HALF_OPEN})
        assert dog.state(0) is NodeState.SUSPECT
        self._observe(dog, 2.0, HEALTHY, breaker={0: BreakerState.CLOSED})
        assert dog.state(0) is NodeState.HEALTHY
        self._observe(dog, 3.0, HEALTHY, depth={0: 3})
        assert dog.state(0) is NodeState.SUSPECT
        self._observe(dog, 4.0, HEALTHY, depth={0: 0})
        assert dog.state(0) is NodeState.HEALTHY

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(suspect_quarantine_depth=0)


class TestBitRotFault:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.BIT_ROT, 0.0, 1.0)  # no rate
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.BIT_ROT, 0.0, float("inf"), rate=1.0)
        FaultSpec(FaultKind.BIT_ROT, 0.0, 1.0, rate=1.0)  # fine

    def test_cadence_independent_schedule(self):
        """Coarse and fine advance() cadences realize identical rot."""
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.BIT_ROT, 0.0, 10.0, rate=3.0),),
            seed=5,
            name="rot",
        )
        caches = []
        for cadence in (np.linspace(0.0, 10.0, 41), np.array([10.0])):
            _platform, _table, _hotness, cache = _stack(seed=3)
            injector = FaultInjector(plan, cache=cache)
            for now in cadence:
                injector.advance(float(now))
            caches.append(cache)
        a, b = caches
        for g in range(a.platform.num_gpus):
            sa, sb = a.store(g), b.store(g)
            cached = sa.cached_entries()
            assert np.array_equal(cached, sb.cached_entries())
            # Compare occupied rows only (vacant arena slots are
            # np.empty garbage), as raw bytes: a flip can mint a NaN,
            # and NaN != NaN under float comparison.
            assert np.array_equal(
                sa.data[sa.offset_of[cached]].view(np.uint8),
                sb.data[sb.offset_of[cached]].view(np.uint8),
            )

    def test_rot_is_silent_until_scrubbed(self):
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.BIT_ROT, 0.0, 5.0, rate=4.0),),
            seed=1,
            name="rot",
        )
        _platform, _table, _hotness, cache = _stack()
        FaultInjector(plan, cache=cache).advance(5.0)
        violations = cache.verify_integrity()
        assert violations  # the full scan sees the rot...
        scrubber = CacheScrubber(cache)
        scrubber.scrub_all()
        assert cache.verify_integrity() == []  # ...and the scrubber heals it


class TestSampledVerify:
    def test_sample_one_catches_corruption(self):
        _platform, _table, _hotness, cache = _stack()
        assert _flip_bytes(cache, 11, 5) > 0
        assert cache.verify_integrity(sample=1.0)

    def test_sample_validation(self):
        _platform, _table, _hotness, cache = _stack()
        with pytest.raises(ValueError):
            cache.verify_integrity(sample=0.0)
        with pytest.raises(ValueError):
            cache.verify_integrity(sample=1.5)
        assert cache.verify_integrity(sample=0.05) == []

    def test_policy_manager_sample_validation(self):
        from repro.serve.policy_manager import PolicyManager

        _platform, _table, _hotness, cache = _stack()
        with pytest.raises(ValueError):
            PolicyManager(cache, verify_sample=2.0)
        PolicyManager(cache, verify_sample=None)  # full-scan mode is legal


class TestSoakConfigRepair:
    def test_repair_needs_cluster(self):
        from repro.serve.soak import SoakConfig

        with pytest.raises(ValueError):
            SoakConfig.quick(repair=True)  # nodes=1
        with pytest.raises(ValueError):
            SoakConfig.quick(nodes=3, replication=2, repair=True,
                             restage="bogus")

    def test_closed_loop_cluster_is_legal_now(self):
        from repro.serve.soak import SoakConfig

        cfg = SoakConfig.quick(nodes=3, replication=2, closed_loop=True)
        assert cfg.closed_loop and cfg.nodes == 3


@pytest.mark.concurrency
class TestScrubberConcurrency:
    def test_scrubber_vs_corruptor_vs_readers(self):
        """Real threads: a corruptor flips bytes, the scrub loop ticks,
        readers serve through the guard — nobody sees a corrupt value,
        and the final reconciliation comes back clean."""
        _platform, table, _hotness, cache = _stack()
        scrubber = CacheScrubber(cache)
        stop = threading.Event()
        errors: list[BaseException] = []

        def corruptor():
            try:
                i = 0
                while not stop.is_set():
                    _flip_bytes(cache, 1000 + i, 2)
                    i += 1
                    # Yield the lock: an unthrottled writer starves the
                    # readers and the test never finishes its laps.
                    time.sleep(0.001)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def scrub_loop():
            try:
                while not stop.is_set():
                    scrubber.tick()
                    time.sleep(0.001)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def reader(seed):
            def run():
                try:
                    rng = make_rng(seed)
                    gpu = seed % cache.platform.num_gpus
                    for _ in range(40):
                        keys = rng.integers(0, N, size=128)
                        values = cache.lookup(gpu, keys).values
                        values, _n = scrubber.guard_read(gpu, keys, values)
                        assert np.array_equal(values, table[keys])
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
            return run

        threads = [
            threading.Thread(target=corruptor),
            threading.Thread(target=scrub_loop),
            *[threading.Thread(target=reader(s)) for s in range(4)],
        ]
        for t in threads:
            t.start()
        for t in threads[2:]:
            t.join()
        stop.set()
        for t in threads[:2]:
            t.join()
        assert not errors, errors[0]
        scrubber.scrub_all()
        assert cache.verify_integrity() == []
