"""Extension: solved policies on platforms beyond the paper's testbeds."""

from repro.bench.experiments import misc_generalization


def bench_misc_generalization(run_experiment):
    result = run_experiment(misc_generalization)
    rows = {r["platform"]: r for r in result.rows}
    # With no NVLink there is nothing to partition for: pure replication.
    assert rows["pcie-only-4gpu"]["replication_factor"] > 3.5
    # Thin 16-way switch shares push the solver toward more replication
    # than the paper's 8-way switch box.
    assert rows["dgx2"]["replication_factor"] >= rows["server-c"]["replication_factor"] * 0.9
    # And the solved policy never loses to either heuristic anywhere.
    for row in result.rows:
        assert row["ugache_ms"] <= min(row["replication_ms"], row["partition_ms"]) * 1.05
