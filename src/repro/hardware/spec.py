"""Hardware component specifications.

These are declarative descriptions of the GPUs and links that make up a
multi-GPU server.  The extraction simulator (:mod:`repro.sim`) and the cache
policy solver (:mod:`repro.core.solver`) consume only the numbers recorded
here; nothing else in the library knows about a specific GPU model.

Numbers follow the paper's §8.1 testbeds and public datasheets:

* each NVLink lane carries 25 GB/s per direction;
* a V100 has 6 lanes (150 GB/s aggregate outbound), an A100 has 12
  (300 GB/s);
* HBM2(e) local bandwidth ~900 GB/s (V100) / ~1555 GB/s is quoted at
  2039 GB/s for A100-80G, but sustained gather bandwidth is far lower; we
  use the paper's "300 vs 900 GB/s" framing and Figure 6, where local
  bandwidth plateaus around 650-700 GB/s on A100 and ~280 GB/s on V100 for
  gather-style access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.units import GIB, gbps


class LinkKind(enum.Enum):
    """Classes of physical paths an extraction read can traverse."""

    LOCAL = "local"  # GPU reading its own HBM
    NVLINK = "nvlink"  # hard-wired point-to-point lanes
    NVSWITCH = "nvswitch"  # switched fabric, dynamically allocated
    PCIE = "pcie"  # fallback path, also used for host memory


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    Attributes:
        name: marketing name, e.g. ``"V100-16GB"``.
        memory_bytes: HBM capacity usable in total (before workload
            reservations).
        num_cores: number of streaming multiprocessors (SMs).
        local_bandwidth: sustained gather bandwidth from local HBM with all
            SMs active, bytes/second.
        nvlink_lanes: number of NVLink lanes wired out of the GPU.
        nvlink_lane_bandwidth: per-lane bandwidth, bytes/second.
    """

    name: str
    memory_bytes: int
    num_cores: int
    local_bandwidth: float
    nvlink_lanes: int
    nvlink_lane_bandwidth: float = gbps(25)

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError(f"{self.name}: memory must be positive")
        if self.num_cores <= 0:
            raise ValueError(f"{self.name}: core count must be positive")
        if self.local_bandwidth <= 0:
            raise ValueError(f"{self.name}: local bandwidth must be positive")
        if self.nvlink_lanes < 0:
            raise ValueError(f"{self.name}: lane count must be non-negative")

    @property
    def outbound_bandwidth(self) -> float:
        """Aggregate NVLink bandwidth out of this GPU, bytes/second."""
        return self.nvlink_lanes * self.nvlink_lane_bandwidth

    @property
    def per_core_bandwidth(self) -> float:
        """Extraction bandwidth one SM sustains, bytes/second.

        Figure 6 shows local bandwidth scaling linearly in the number of
        cores until all SMs are active; the slope is this value.  A link of
        bandwidth ``B`` therefore *tolerates* ``B / per_core_bandwidth``
        concurrent SMs before congesting.
        """
        return self.local_bandwidth / self.num_cores


def v100_16gb() -> GPUSpec:
    """V100 SXM2 16 GB — Server A's GPU."""
    return GPUSpec(
        name="V100-16GB",
        memory_bytes=16 * GIB,
        num_cores=80,
        local_bandwidth=gbps(280),
        nvlink_lanes=6,
    )


def v100_32gb() -> GPUSpec:
    """V100 SXM2 32 GB — Server B's GPU."""
    return GPUSpec(
        name="V100-32GB",
        memory_bytes=32 * GIB,
        num_cores=80,
        local_bandwidth=gbps(280),
        nvlink_lanes=6,
    )


def a100_80gb() -> GPUSpec:
    """A100 SXM4 80 GB — Server C's GPU."""
    return GPUSpec(
        name="A100-80GB",
        memory_bytes=80 * GIB,
        num_cores=108,
        local_bandwidth=gbps(650),
        nvlink_lanes=12,
    )
