"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.blocks import build_blocks
from repro.core.evaluate import hit_rates, resolve_sources
from repro.core.policy import partition_policy, replication_policy
from repro.hardware.memory import SlotArena
from repro.hardware.platform import HOST, server_a, server_c
from repro.sim.congestion import solve_congested_extraction
from repro.sim.mechanisms import GpuDemand, factored_extraction
from repro.utils.stats import coverage_curve, normalize, zipf_pmf

PLATFORM_A = server_a()
PLATFORM_C = server_c()

hotness_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=8, max_value=400),
    elements=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)


@st.composite
def nonzero_hotness(draw):
    hot = draw(hotness_arrays)
    if hot.sum() == 0:
        hot[0] = 1.0
    return hot


class TestBlockingProperties:
    @given(hot=nonzero_hotness(), num_gpus=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_blocks_partition_entries_exactly(self, hot, num_gpus):
        blocks = build_blocks(hot, num_gpus)
        assert blocks.sizes.sum() == len(hot)
        assert len(np.unique(blocks.order)) == len(hot)
        assert blocks.hotness_sum.sum() == pytest.approx(hot.sum(), rel=1e-9)

    @given(hot=nonzero_hotness())
    @settings(max_examples=40, deadline=None)
    def test_blocks_monotone_in_hotness(self, hot):
        blocks = build_blocks(hot, 4)
        means = blocks.mean_hotness()
        assert (np.diff(means) <= 1e-9).all()


class TestPolicyProperties:
    @given(
        hot=nonzero_hotness(),
        capacity=st.integers(0, 500),
        num_gpus=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_replication_within_capacity(self, hot, capacity, num_gpus):
        placement = replication_policy(hot, capacity, num_gpus)
        placement.validate_capacity(capacity)
        assert placement.num_gpus == num_gpus

    @given(
        hot=nonzero_hotness(),
        capacity=st.integers(0, 500),
        num_gpus=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_no_duplicates_across_gpus(self, hot, capacity, num_gpus):
        placement = partition_policy(hot, capacity, num_gpus)
        placement.validate_capacity(capacity)
        all_ids = np.concatenate(placement.per_gpu)
        assert len(np.unique(all_ids)) == len(all_ids)

    @given(hot=nonzero_hotness(), capacity=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_partition_covers_at_least_replication(self, hot, capacity):
        rep = replication_policy(hot, capacity, 4)
        part = partition_policy(hot, capacity, 4)
        assert part.distinct_cached() >= rep.distinct_cached()


class TestResolutionProperties:
    @given(hot=nonzero_hotness(), capacity=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_hit_rates_always_sum_to_one(self, hot, capacity):
        placement = partition_policy(hot, capacity, 4)
        hits = hit_rates(PLATFORM_A, placement, hot)
        assert hits.local + hits.remote + hits.host == pytest.approx(1.0)

    @given(hot=nonzero_hotness(), capacity=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_sources_are_valid(self, hot, capacity):
        placement = partition_policy(hot, capacity, 4)
        srcs = resolve_sources(PLATFORM_A, placement)
        mat = placement.storage_matrix()
        for g in range(4):
            unique = np.unique(srcs[g])
            for s in unique:
                assert s == HOST or 0 <= s < 4
            # Any GPU source actually stores the entries mapped to it.
            for s in unique:
                if s == HOST:
                    continue
                entries = np.flatnonzero(srcs[g] == s)
                assert mat[s, entries].all()


class TestSimulationProperties:
    volumes = st.dictionaries(
        keys=st.sampled_from([0, 1, 2, 3, HOST]),
        values=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=5,
    )

    @given(volumes=volumes)
    @settings(max_examples=80, deadline=None)
    def test_factored_time_nonnegative_and_finite(self, volumes):
        demand = GpuDemand(dst=0, volumes=volumes)
        report = factored_extraction(PLATFORM_A, demand)
        assert report.time >= 0.0
        assert np.isfinite(report.time)

    @given(volumes=volumes, scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_factored_time_monotone_in_volume(self, volumes, scale):
        base = factored_extraction(PLATFORM_A, GpuDemand(dst=0, volumes=volumes))
        bigger = factored_extraction(
            PLATFORM_A,
            GpuDemand(dst=0, volumes={k: v * (1 + scale) for k, v in volumes.items()}),
        )
        assert bigger.time >= base.time - 1e-15

    @given(
        vols=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=4)
    )
    @settings(max_examples=60, deadline=None)
    def test_congestion_never_faster_than_ideal(self, vols):
        sources = list(range(len(vols)))
        peaks = {s: 50e9 for s in sources}
        out = solve_congested_extraction(
            dict(zip(sources, vols)), peaks, 1e9, 80
        )
        ideal = sum(vols) / (80 * 1e9)  # all cores at full per-core rate
        assert out.total_time >= ideal * 0.999


class TestArenaProperties:
    @given(ops=st.lists(st.booleans(), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_arena_accounting_invariant(self, ops):
        arena = SlotArena(capacity_bytes=20 * 8, slot_bytes=8)
        live: list[int] = []
        for do_alloc in ops:
            if do_alloc and arena.free_slots > 0:
                live.append(arena.allocate())
            elif live:
                arena.free(live.pop())
            assert arena.used_slots == len(live)
            assert arena.used_slots + arena.free_slots == arena.num_slots
            assert len(set(live)) == len(live)


class TestStatsProperties:
    @given(
        n=st.integers(2, 500),
        alpha=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_zipf_valid_distribution(self, n, alpha):
        pmf = zipf_pmf(n, alpha)
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf > 0).all()
        assert (np.diff(pmf) <= 1e-15).all()

    @given(hot=nonzero_hotness())
    @settings(max_examples=40, deadline=None)
    def test_coverage_curve_monotone_bounded(self, hot):
        curve = coverage_curve(normalize(hot))
        assert curve[0] == 0.0
        assert curve[-1] == pytest.approx(1.0)
        assert (np.diff(curve) >= -1e-12).all()


# ----------------------------------------------------------------------
# Cross-request coalescing (PR 5): shared read-only cache stack so each
# hypothesis example only pays for planning, not cache construction.
# ----------------------------------------------------------------------
import functools
from types import SimpleNamespace

from repro.core.pipeline import plan_extraction, price_demand
from repro.serve import coalesce_keys

CACHE_N = 600
ENTRY_BYTES = 4 * 8  # float32 * D=8


@functools.lru_cache(maxsize=1)
def _coalesce_stack():
    from repro.core.cache import MultiGpuEmbeddingCache
    from repro.core.policy import hot_replicate_warm_partition_policy

    rng = np.random.default_rng(0)
    table = rng.standard_normal((CACHE_N, 8)).astype(np.float32)
    hot = zipf_pmf(CACHE_N, 1.1) * 1000.0
    placement = hot_replicate_warm_partition_policy(
        hot, CACHE_N // 8, PLATFORM_A.num_gpus, 0.5
    )
    return MultiGpuEmbeddingCache(PLATFORM_A, table, placement)


member_key_lists = st.lists(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=1, max_value=80),
        elements=st.integers(0, CACHE_N - 1),
    ),
    min_size=1,
    max_size=4,
)


class TestCoalesceProperties:
    @given(members=member_key_lists)
    @settings(max_examples=40, deadline=None)
    def test_dedup_never_drops_a_key(self, members):
        requests = [SimpleNamespace(keys=m) for m in members]
        union, total = coalesce_keys(requests)
        assert total == sum(len(m) for m in members)
        assert len(np.unique(union)) == len(union)
        for m in members:
            assert np.isin(m, union).all()
        # ...and nothing invented: every union key came from a member.
        assert np.isin(union, np.concatenate(members)).all()

    @given(members=member_key_lists)
    @settings(max_examples=25, deadline=None)
    def test_coalesced_pricing_conserves_demand(self, members):
        """Every unique key is priced exactly once, on exactly one source."""
        cache = _coalesce_stack()
        union, _ = coalesce_keys([SimpleNamespace(keys=m) for m in members])
        plan = plan_extraction(cache, 0, union)
        group_keys = np.concatenate([g.keys for g in plan.groups])
        # The groups partition the union: same multiset, no duplicates.
        assert len(group_keys) == len(union)
        assert np.array_equal(np.sort(group_keys), union)
        demand = plan.demand(ENTRY_BYTES)
        assert sum(demand.volumes.values()) == pytest.approx(
            len(union) * ENTRY_BYTES
        )

    @given(members=member_key_lists)
    @settings(max_examples=20, deadline=None)
    def test_member_latency_never_below_solo_lower_bound(self, members):
        """Shared extraction time dominates each member's solo price.

        A member's coalesced latency is wait + shared_time, and the
        member's keys are a subset of the union, so per-source demand can
        only grow — pricing is monotone in volume (see
        TestSimulationProperties), hence coalescing never beats the
        member's own un-coalesced extraction time.
        """
        cache = _coalesce_stack()
        union, _ = coalesce_keys([SimpleNamespace(keys=m) for m in members])
        union_plan = plan_extraction(cache, 0, union)
        union_demand = union_plan.demand(ENTRY_BYTES)
        shared = price_demand(PLATFORM_A, union_demand).time
        for m in members:
            solo_plan = plan_extraction(cache, 0, np.unique(m))
            solo_demand = solo_plan.demand(ENTRY_BYTES)
            for src, vol in solo_demand.volumes.items():
                assert vol <= union_demand.volumes.get(src, 0.0) + 1e-9
            assert shared >= price_demand(PLATFORM_A, solo_demand).time - 1e-12

    @given(
        keys=hnp.arrays(
            dtype=np.int64,
            shape=st.integers(min_value=1, max_value=200),
            elements=st.integers(0, CACHE_N - 1),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_resolve_reroute_conserves_keys(self, keys):
        """resolve → reroute → group neither drops nor duplicates keys."""
        cache = _coalesce_stack()
        plan = plan_extraction(cache, 1, keys)
        assert plan.batch_size == len(keys)
        assert plan.rerouted_keys == 0  # healthy cache: nothing moved
        positions = np.concatenate([g.batch_positions for g in plan.groups])
        assert np.array_equal(np.sort(positions), np.arange(len(keys)))
        for g in plan.groups:
            assert np.array_equal(g.keys, keys[g.batch_positions])
            assert g.source == HOST or 0 <= g.source < PLATFORM_A.num_gpus
