"""k-hop random neighbourhood sampling (the DGL-style sampler of §8.1).

GraphSAGE uses 2-hop and GCN 3-hop random fanout sampling [49]; the set of
*distinct* sampled vertices per batch is the embedding key set the cache
must serve.  Sampling is fully vectorised: one ``randint`` per hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.graph import CSRGraph
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class SampledBatch:
    """One mini-batch's sampled neighbourhood.

    ``all_nodes`` keeps duplicates: the paper's ``extract`` function reads
    one entry per *key occurrence* (no dedup — §3.2's pseudocode), which
    is why its batches reach "the million level" and why hub embeddings
    dominate extraction volume.
    """

    seeds: np.ndarray
    #: every sampled vertex occurrence, seeds included (duplicates kept)
    all_nodes: np.ndarray
    #: deduplicated view (what a dedup-optimized loader would fetch)
    unique_nodes: np.ndarray

    @property
    def num_keys(self) -> int:
        return len(self.all_nodes)

    @property
    def total_sampled(self) -> int:
        return len(self.all_nodes)


def sample_neighbors(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample up to ``fanout`` random neighbours of each frontier node.

    Nodes with fewer than ``fanout`` neighbours contribute samples with
    replacement (DGL's default); zero-degree nodes contribute nothing.
    """
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    frontier = np.asarray(frontier, dtype=np.int64)
    starts = graph.indptr[frontier]
    degs = graph.indptr[frontier + 1] - starts
    alive = degs > 0
    if not alive.any():
        return np.empty(0, dtype=np.int64)
    starts = starts[alive]
    degs = degs[alive]
    offsets = rng.integers(0, degs[:, None], size=(len(degs), fanout))
    return graph.indices[(starts[:, None] + offsets).ravel()]


def khop_sample(
    graph: CSRGraph,
    seeds: np.ndarray,
    fanouts: tuple[int, ...],
    seed: int | np.random.Generator = 0,
) -> SampledBatch:
    """Expand ``seeds`` by random fanout sampling, one hop per entry.

    Returns the union of all hops' vertices — the embedding keys of the
    batch.  The frontier of each hop is the previous hop's *samples*
    (with duplicates), matching layered GraphSAGE sampling.
    """
    rng = make_rng(seed)
    seeds = np.asarray(seeds, dtype=np.int64)
    collected = [seeds]
    frontier = seeds
    for fanout in fanouts:
        sampled = sample_neighbors(graph, frontier, fanout, rng)
        collected.append(sampled)
        frontier = sampled
        if frontier.size == 0:
            break
    all_nodes = np.concatenate(collected)
    return SampledBatch(
        seeds=seeds, all_nodes=all_nodes, unique_nodes=np.unique(all_nodes)
    )


def negative_sample(
    num_nodes: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform negative samples for unsupervised (link-prediction) training.

    Uniform sampling is what reduces access skew in unsupervised GNN —
    the effect behind the paper's larger win over GNNLab there (§8.2).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return rng.integers(0, num_nodes, size=count)
