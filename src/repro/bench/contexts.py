"""Workload-context builders shared by all benchmarks.

A *context* packages one (platform, application, dataset) cell of the
evaluation: the hotness estimate, entry size, scaled capacity, per-batch
key volume, and the dense/sampling cost terms — everything
:func:`repro.baselines.evaluate_system` needs.  Hotness presampling and
graph generation are memoized, since dozens of benchmark cells share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.baselines.base import SystemContext
from repro.datasets.dlr_datasets import dlr_spec
from repro.datasets.gnn_datasets import GNN_SPECS, build_gnn_dataset
from repro.datasets.registry import capacity_entries_for
from repro.dlr import models as dlr_models
from repro.gnn import models as gnn_models
from repro.gnn.workload import GnnWorkload
from repro.hardware.platform import EXTRA_PLATFORMS, PRESETS, Platform

#: Per-GPU seed batch for GNN workloads, scaled from the paper's 8K by the
#: same ~1000× factor as the datasets (see DESIGN.md).
GNN_BATCH_SIZE = 512

#: Per-GPU request batch for DLR inference — unscaled (the paper's 8K);
#: request volume is independent of table size.
DLR_BATCH_SIZE = 8192

GNN_MODES = ("gcn", "sage-sup", "sage-unsup")
DLR_MODELS = ("dlrm", "dcn")


def platform_by_name(name: str) -> Platform:
    """Instantiate one of the modelled testbeds by name (``server-a``...).

    Knows both the paper's benchmark :data:`PRESETS` and the extras
    (``dgx2``, ``server-a-tiered``, ...) used by soaks and what-ifs.
    """
    factory = PRESETS.get(name) or EXTRA_PLATFORMS.get(name)
    if factory is None:
        known = sorted(set(PRESETS) | set(EXTRA_PLATFORMS))
        raise KeyError(f"unknown platform {name!r}; have {known}")
    return factory()


@dataclass(frozen=True)
class GnnCell:
    """One GNN evaluation cell: context + epoch structure."""

    context: SystemContext
    iterations_per_epoch: int
    dataset_key: str
    mode: str


@dataclass(frozen=True)
class DlrCell:
    """One DLR evaluation cell."""

    context: SystemContext
    dataset_key: str
    model: str


@lru_cache(maxsize=32)
def _gnn_hotness(dataset_key: str, mode: str, num_gpus: int, seed: int) -> tuple:
    """Presampled hotness + expected unique keys per batch (memoized)."""
    ds = build_gnn_dataset(dataset_key)
    workload = GnnWorkload(
        ds.graph,
        ds.train_ids,
        mode,
        batch_size=GNN_BATCH_SIZE,
        num_gpus=num_gpus,
    )
    hotness = workload.presampled_hotness(seed=seed, max_iterations=8)
    return hotness, float(hotness.sum()), workload.iterations_per_epoch()


def gnn_cell(
    platform: Platform,
    dataset_key: str,
    mode: str,
    cache_ratio: float | None = None,
    seed: int = 3,
) -> GnnCell:
    """Build the evaluation cell for (platform, GNN dataset, mode).

    ``cache_ratio`` overrides the scaled-memory capacity rule (used by the
    ratio-sweep figures); otherwise the platform's scaled budget applies.
    """
    spec = GNN_SPECS[dataset_key]
    hotness, keys_per_batch, iterations = _gnn_hotness(
        dataset_key, mode, platform.num_gpus, seed
    )
    if cache_ratio is None:
        capacity = capacity_entries_for(platform, spec)
    else:
        capacity = int(cache_ratio * spec.num_nodes)
    model = gnn_models.model_for_mode(mode)
    dense = gnn_models.dense_time_per_iteration(
        platform, model, int(keys_per_batch), spec.dim
    )
    sampling = gnn_models.sampling_time_per_iteration(platform, int(keys_per_batch))
    ctx = SystemContext(
        platform=platform,
        hotness=hotness,
        entry_bytes=spec.entry_bytes,
        capacity_entries=capacity,
        kind="gnn",
        batch_keys=keys_per_batch,
        dense_time=dense,
        sampling_time=sampling,
        graph_bytes=spec.topology_budget_bytes,
    )
    return GnnCell(
        context=ctx,
        iterations_per_epoch=iterations,
        dataset_key=dataset_key,
        mode=mode,
    )


def dlr_cell(
    platform: Platform,
    dataset_key: str,
    model_name: str = "dlrm",
    cache_ratio: float | None = None,
    batch_size: int = DLR_BATCH_SIZE,
) -> DlrCell:
    """Build the evaluation cell for (platform, DLR dataset, model)."""
    spec = dlr_spec(dataset_key)
    workload = spec.workload(batch_size=batch_size, num_gpus=platform.num_gpus)
    hotness = workload.hotness()
    if cache_ratio is None:
        capacity = capacity_entries_for(platform, spec)
    else:
        capacity = int(cache_ratio * spec.num_entries)
    model = dlr_models.model_by_name(model_name)
    dense = dlr_models.dense_time_per_iteration(
        platform, model, batch_size, spec.num_tables, spec.dim
    )
    ctx = SystemContext(
        platform=platform,
        hotness=hotness,
        entry_bytes=spec.entry_bytes,
        capacity_entries=capacity,
        kind="dlr",
        batch_keys=float(batch_size * spec.num_tables),
        dense_time=dense,
        sampling_time=0.0,
        num_tables=spec.num_tables,
    )
    return DlrCell(context=ctx, dataset_key=dataset_key, model=model_name)
