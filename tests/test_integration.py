"""End-to-end integration: workloads driving the full UGache stack."""

import numpy as np
import pytest

from repro.core.embedding_layer import EmbeddingLayerConfig, UGacheEmbeddingLayer
from repro.core.evaluate import evaluate_placement
from repro.core.policy import partition_policy, replication_policy
from repro.core.solver import SolverConfig, solve_policy
from repro.dlr.workload import DlrWorkload
from repro.gnn.graph import power_law_graph
from repro.gnn.workload import GnnWorkload
from repro.sim.mechanisms import Mechanism

FAST_SOLVER = SolverConfig(coarse_block_frac=0.05)


class TestGnnEndToEnd:
    @pytest.fixture
    def setup(self, platform_a, rng):
        graph = power_law_graph(3000, 30_000, degree_alpha=1.1, seed=0)
        train = rng.choice(3000, size=600, replace=False)
        workload = GnnWorkload(graph, train, "sage-sup", batch_size=64, num_gpus=4)
        table = rng.standard_normal((3000, 16)).astype(np.float32)
        hotness = workload.presampled_hotness(seed=1)
        layer = UGacheEmbeddingLayer(
            platform_a,
            table,
            hotness,
            EmbeddingLayerConfig(cache_ratio=0.1, solver=FAST_SOLVER),
        )
        return workload, table, layer

    def test_training_epoch_through_cache(self, setup):
        workload, table, layer = setup
        iterations = 0
        for batches in workload.epoch(seed=2):
            values, report = layer.extract(batches)
            for v, keys in zip(values, batches):
                assert np.array_equal(v, table[keys])
            assert report.time > 0
            iterations += 1
        assert iterations == workload.iterations_per_epoch()

    def test_cache_beats_no_cache(self, setup, platform_a):
        workload, _table, layer = setup
        hotness = workload.presampled_hotness(seed=1)
        cached = layer.expected_report().time
        uncached = evaluate_placement(
            platform_a,
            replication_policy(hotness, 0, 4),
            hotness,
            layer.cache.entry_bytes,
            Mechanism.FACTORED,
        ).time
        assert cached < uncached

    def test_presample_predicts_later_epochs(self, setup):
        # §2's "stable, predictable": epoch-1 hotness correlates with epoch 2.
        workload, _table, _layer = setup
        hot1 = workload.presampled_hotness(seed=2)
        hot2 = workload.presampled_hotness(seed=99)
        corr = np.corrcoef(hot1, hot2)[0, 1]
        assert corr > 0.9


class TestDlrEndToEnd:
    @pytest.fixture
    def setup(self, platform_c, rng):
        workload = DlrWorkload(
            table_sizes=(500, 300, 200), alpha=1.3, batch_size=128, num_gpus=8, seed=0
        )
        table = rng.standard_normal((workload.num_entries, 16)).astype(np.float32)
        layer = UGacheEmbeddingLayer(
            platform_c,
            table,
            workload.hotness(),
            EmbeddingLayerConfig(cache_ratio=0.1, solver=FAST_SOLVER),
        )
        return workload, table, layer

    def test_inference_iterations(self, setup):
        workload, table, layer = setup
        for batches in workload.take_batches(3, seed=5):
            values, report = layer.extract(batches)
            for v, keys in zip(values, batches):
                assert np.array_equal(v, table[keys])
            assert report.time > 0

    def test_skew_makes_cache_effective(self, setup):
        _workload, _table, layer = setup
        hits = layer.hit_rates()
        # 10% cache under zipf(1.3) must catch well over half the traffic.
        assert hits.global_hit > 0.6


class TestPolicyOrdering:
    """The paper's headline orderings hold across platforms."""

    def _hotness(self):
        from repro.utils.stats import zipf_pmf

        return zipf_pmf(3000, 1.2) * 50_000

    @pytest.mark.parametrize("cap_frac", [0.05, 0.10, 0.20])
    def test_ugache_never_worse_than_best_heuristic(self, any_platform, cap_frac):
        hot = self._hotness()
        cap = int(cap_frac * 3000)
        eb = 512
        solved = solve_policy(any_platform, hot, cap, eb, FAST_SOLVER)
        ug = evaluate_placement(
            any_platform, solved.realize(), hot, eb, Mechanism.FACTORED
        ).time
        rep = evaluate_placement(
            any_platform,
            replication_policy(hot, cap, any_platform.num_gpus),
            hot,
            eb,
            Mechanism.FACTORED,
        ).time
        part = evaluate_placement(
            any_platform,
            partition_policy(hot, cap, any_platform.num_gpus),
            hot,
            eb,
            Mechanism.FACTORED,
        ).time
        assert ug <= min(rep, part) * 1.10

    def test_fem_beats_naive_and_message_on_partition(self, any_platform):
        hot = self._hotness()
        cap = 300
        placement = partition_policy(hot, cap, any_platform.num_gpus)
        times = {
            mech: evaluate_placement(any_platform, placement, hot, 512, mech).time
            for mech in Mechanism
        }
        assert times[Mechanism.FACTORED] <= times[Mechanism.PEER_NAIVE]
        assert times[Mechanism.FACTORED] <= times[Mechanism.MESSAGE]
