"""The public UGache embedding-layer facade."""

import numpy as np
import pytest

from repro.core.embedding_layer import EmbeddingLayerConfig, UGacheEmbeddingLayer
from repro.core.solver import SolverConfig
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

N, D = 2000, 8


@pytest.fixture
def layer(platform_a, small_table, skewed_hotness):
    return UGacheEmbeddingLayer(
        platform_a,
        small_table,
        skewed_hotness,
        EmbeddingLayerConfig(cache_ratio=0.08),
    )


class TestConfig:
    def test_requires_exactly_one_capacity_spec(self):
        with pytest.raises(ValueError):
            EmbeddingLayerConfig().resolve_capacity(100)
        with pytest.raises(ValueError):
            EmbeddingLayerConfig(cache_ratio=0.1, capacity_entries=5).resolve_capacity(
                100
            )

    def test_ratio_resolution(self):
        assert EmbeddingLayerConfig(cache_ratio=0.25).resolve_capacity(100) == 25

    def test_explicit_capacity(self):
        assert EmbeddingLayerConfig(capacity_entries=7).resolve_capacity(100) == 7

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            EmbeddingLayerConfig(cache_ratio=1.5).resolve_capacity(100)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            EmbeddingLayerConfig(capacity_entries=-1).resolve_capacity(100)


class TestLookup:
    def test_lookup_exact(self, layer, small_table, rng):
        keys = rng.integers(0, N, size=300)
        for gpu in range(4):
            assert np.array_equal(layer.lookup(gpu, keys), small_table[keys])

    def test_extract_all(self, layer, small_table, rng):
        keys = [rng.integers(0, N, size=100) for _ in range(4)]
        values, report = layer.extract(keys)
        for v, k in zip(values, keys):
            assert np.array_equal(v, small_table[k])
        assert report.time > 0

    def test_capacity_respected(self, layer):
        layer.placement.validate_capacity(layer.capacity_entries)

    def test_hit_rates_sum(self, layer):
        hits = layer.hit_rates()
        assert hits.local + hits.remote + hits.host == pytest.approx(1.0)

    def test_expected_report(self, layer):
        fem = layer.expected_report()
        naive = layer.expected_report(Mechanism.PEER_NAIVE)
        assert fem.time <= naive.time


class TestValidation:
    def test_table_shape_checked(self, platform_a, skewed_hotness):
        with pytest.raises(ValueError):
            UGacheEmbeddingLayer(
                platform_a,
                np.zeros(10, dtype=np.float32),
                skewed_hotness,
                EmbeddingLayerConfig(cache_ratio=0.1),
            )

    def test_hotness_length_checked(self, platform_a, small_table):
        with pytest.raises(ValueError):
            UGacheEmbeddingLayer(
                platform_a,
                small_table,
                np.ones(5),
                EmbeddingLayerConfig(cache_ratio=0.1),
            )


class TestRefresh:
    def test_refresh_on_hotness_drift(self, platform_a, small_table):
        # Start hot at the front, drift to the back of the id space.
        hot_front = np.concatenate([zipf_pmf(N // 2, 1.4), np.full(N // 2, 1e-9)])
        layer = UGacheEmbeddingLayer(
            platform_a,
            small_table,
            hot_front * 1000,
            EmbeddingLayerConfig(
                cache_ratio=0.1, solver=SolverConfig(coarse_block_frac=0.05)
            ),
        )
        hot_back = hot_front[::-1].copy() * 1000
        outcome = layer.refresh(hot_back)
        assert outcome.triggered
        hits = layer.hit_rates()
        assert hits.local > 0.5  # hot tail is now cached

    def test_refresh_skipped_when_unchanged(self, layer, skewed_hotness):
        outcome = layer.refresh(skewed_hotness)
        assert not outcome.triggered

    def test_refresh_shape_checked(self, layer):
        with pytest.raises(ValueError):
            layer.refresh(np.ones(3))

    def test_lookups_exact_after_refresh(self, platform_a, small_table, rng):
        hot_front = np.concatenate([zipf_pmf(N // 2, 1.4), np.full(N // 2, 1e-9)])
        layer = UGacheEmbeddingLayer(
            platform_a,
            small_table,
            hot_front * 1000,
            EmbeddingLayerConfig(cache_ratio=0.1),
        )
        layer.refresh(hot_front[::-1].copy() * 1000)
        keys = rng.integers(0, N, size=400)
        for gpu in range(4):
            assert np.array_equal(layer.lookup(gpu, keys), small_table[keys])
