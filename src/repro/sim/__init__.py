"""Analytic multi-GPU extraction-time simulator.

Substitutes for the paper's CUDA kernels and NVLink hardware: given per-GPU
per-source byte volumes, computes batch extraction time under the
message-based, naive peer-based, and factored (UGache) mechanisms,
including the core/link congestion effects of §5.
"""

from repro.sim.congestion import (
    CongestedOutcome,
    CongestionModel,
    solve_congested_extraction,
)
from repro.sim.engine import BatchReport, readers_per_source, simulate_batch
from repro.sim.event_sim import (
    CoalescedSimResult,
    EventSimResult,
    HedgedSimResult,
    PrefetchedSimResult,
    simulate_coalesced_extraction,
    simulate_factored_event_driven,
    simulate_hedged_extraction,
    simulate_naive_event_driven,
    simulate_prefetched_extraction,
)
from repro.sim.mechanisms import (
    MESSAGE_STAGE_OVERHEAD,
    GpuDemand,
    GpuExtractionReport,
    Mechanism,
    core_dedication,
    factored_extraction,
    message_extraction,
    naive_peer_extraction,
)
from repro.sim.trace import ExtractionTrace, GroupEvent, LocalSegment, trace_batch, trace_factored
from repro.sim.utilization import LinkUtilization, batch_utilization

__all__ = [
    "CoalescedSimResult",
    "EventSimResult",
    "HedgedSimResult",
    "PrefetchedSimResult",
    "simulate_coalesced_extraction",
    "simulate_factored_event_driven",
    "simulate_hedged_extraction",
    "simulate_naive_event_driven",
    "simulate_prefetched_extraction",
    "ExtractionTrace",
    "GroupEvent",
    "LocalSegment",
    "trace_batch",
    "trace_factored",
    "BatchReport",
    "CongestedOutcome",
    "CongestionModel",
    "GpuDemand",
    "GpuExtractionReport",
    "LinkUtilization",
    "Mechanism",
    "MESSAGE_STAGE_OVERHEAD",
    "batch_utilization",
    "core_dedication",
    "factored_extraction",
    "message_extraction",
    "naive_peer_extraction",
    "readers_per_source",
    "simulate_batch",
    "solve_congested_extraction",
]
