"""Property-based invariants of the backing-tier chain (hypothesis), plus
real-thread stress of tier moves against concurrent refresher writes.

The three invariants pinned here are the ones ``TierChain.verify`` checks
structurally:

* **partition** — no entry is ever resident in two backing tiers;
* **integrity** — demotion/promotion never loses bytes (the checksums
  from :mod:`repro.core.checksum` survive every move);
* **capacity** — per-tier entry counts stay within the byte budgets,
  including while a refresher mutates the GPU stores concurrently.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.checksum import row_checksums
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.refresher import RefreshConfig, Refresher
from repro.core.tiers import TierCapacityError, TierChain, assign_backing_tiers
from repro.hardware.platform import MemoryTier, gbps, server_a, with_tiers
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.tiers

ENTRY_DIM = 4
ENTRY_BYTES = ENTRY_DIM * 4


def _tiers(caps_entries):
    """A chain with the given per-tier capacities, fastest first."""
    bandwidths = [gbps(16), gbps(12), gbps(6)]
    latencies = [0.0, 1e-6, 100e-6]
    names = ["dram", "cxl", "ssd"]
    return tuple(
        MemoryTier(names[i], cap * ENTRY_BYTES, bandwidths[i], latencies[i])
        for i, cap in enumerate(caps_entries)
    )


@st.composite
def chain_setups(draw):
    """(table, hotness, tiers) where the chain can hold the universe."""
    n = draw(st.integers(min_value=8, max_value=120))
    depth = draw(st.integers(min_value=2, max_value=3))
    caps = [draw(st.integers(min_value=1, max_value=n)) for _ in range(depth - 1)]
    caps.append(n)  # terminal tier always absorbs the remainder
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    table = rng.standard_normal((n, ENTRY_DIM)).astype(np.float32)
    hotness = rng.uniform(size=n)
    return table, hotness, _tiers(caps)


class TestChainInvariants:
    @given(setup=chain_setups())
    @settings(max_examples=40, deadline=None)
    def test_every_entry_homed_exactly_once(self, setup):
        table, hotness, tiers = setup
        chain = TierChain(tiers, table, hotness)
        resident = np.zeros(len(table), dtype=int)
        for src in chain.backing_ids:
            resident[chain.store(src).cached_entries()] += 1
        assert (resident == 1).all()
        assert chain.verify() == []

    @given(setup=chain_setups(), moves=st.integers(1, 6), seed=st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_moves_never_lose_bytes_or_double_home(self, setup, moves, seed):
        table, hotness, tiers = setup
        chain = TierChain(tiers, table, hotness)
        rng = np.random.default_rng(seed)
        for _ in range(moves):
            dst = int(rng.choice(chain.backing_ids))
            free = chain.capacity_entries(dst) - chain.resident_count(dst)
            elsewhere = np.flatnonzero(chain.home != dst)
            if free == 0 or len(elsewhere) == 0:
                continue
            take = rng.choice(
                elsewhere, size=min(free, len(elsewhere), 8), replace=False
            )
            chain.move(take, dst)
        # partition and capacity survived every move
        assert chain.verify() == []
        # and no byte was lost anywhere: every row reads back bit-exact,
        # with checksums that still match the ground-truth table
        np.testing.assert_array_equal(
            chain.gather_home(np.arange(len(table))), table
        )
        for src in chain.backing_ids:
            store = chain.store(src)
            cached = store.cached_entries()
            if len(cached):
                np.testing.assert_array_equal(
                    store.checksums[store.offset_of[cached]],
                    row_checksums(table[cached]),
                )

    @given(setup=chain_setups())
    @settings(max_examples=30, deadline=None)
    def test_overflow_move_rejected_and_chain_intact(self, setup):
        table, hotness, tiers = setup
        chain = TierChain(tiers, table, hotness)
        dst = chain.backing_ids[0]
        free = chain.capacity_entries(dst) - chain.resident_count(dst)
        elsewhere = np.flatnonzero(chain.home != dst)
        if len(elsewhere) <= free:
            return  # nothing can overflow this draw
        with pytest.raises(TierCapacityError):
            chain.move(elsewhere, dst)
        assert chain.verify() == []

    @given(setup=chain_setups(), seed=st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_rebalance_reaches_the_waterfall_fixpoint(self, setup, seed):
        table, hotness, tiers = setup
        chain = TierChain(tiers, table, hotness)
        new_hot = np.random.default_rng(seed).uniform(size=len(table))
        chain.rebalance(new_hot)
        want = assign_backing_tiers(
            tiers, len(table), ENTRY_BYTES, new_hot
        )
        np.testing.assert_array_equal(chain.home, want)
        assert chain.verify() == []
        # rebalancing again with the same hotness is a no-op
        assert chain.rebalance(new_hot) == 0


@pytest.mark.concurrency
def test_capacity_and_integrity_hold_under_concurrent_refresher_writes():
    """Tier rebalances racing refresher placement swaps: the cache's
    writer lock serializes them, and neither side may break the chain's
    partition/capacity/integrity invariants or the GPU stores'."""
    n = 600
    rng = np.random.default_rng(11)
    table = rng.standard_normal((n, ENTRY_DIM)).astype(np.float32)
    base = server_a()
    platform = with_tiers(
        base,
        (
            MemoryTier("dram", (n // 4) * ENTRY_BYTES, base.pcie_bandwidth),
            MemoryTier("ssd", n * ENTRY_BYTES, gbps(6), latency_s=100e-6),
        ),
    )
    hot_a = zipf_pmf(n, 1.2) * 1000
    hot_b = hot_a[::-1].copy()
    place_a = hot_replicate_warm_partition_policy(
        hot_a, n // 8, platform.num_gpus, 0.5
    )
    place_b = hot_replicate_warm_partition_policy(
        hot_b, n // 8, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, place_a, tier_hotness=hot_a)
    refresher = Refresher(cache, RefreshConfig(update_batch_entries=64))
    errors: list[BaseException] = []
    start = threading.Barrier(3)

    def refresh_loop():
        try:
            start.wait()
            for i in range(6):
                refresher.refresh(place_b if i % 2 == 0 else place_a)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def rebalance_loop():
        try:
            start.wait()
            for i in range(6):
                cache.rebalance_tiers(hot_b if i % 2 == 0 else hot_a)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def read_loop():
        try:
            start.wait()
            keys = np.arange(n)
            for gpu in range(4):
                result = cache.lookup(gpu % platform.num_gpus, keys)
                np.testing.assert_array_equal(result.values, table)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=refresh_loop),
        threading.Thread(target=rebalance_loop),
        threading.Thread(target=read_loop),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert cache.verify_integrity() == []
    chain = cache.tier_chain
    for src in chain.backing_ids:
        assert chain.resident_count(src) <= chain.capacity_entries(src)
    np.testing.assert_array_equal(
        cache.lookup(0, np.arange(n)).values, table
    )
