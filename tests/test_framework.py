"""Framework-style wrappers (§7.1)."""

import numpy as np
import pytest

from repro.framework import Module, UGacheEmbedding, UGacheKerasEmbedding

N, D = 2000, 8


class TestTorchLike:
    def test_call_dispatches_to_forward(self):
        class Doubler(Module):
            def forward(self, x):
                return 2 * x

        assert Doubler()(21) == 42

    def test_module_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_embedding_shape_contract(self, platform_a, small_table, skewed_hotness):
        emb = UGacheEmbedding(platform_a, small_table, skewed_hotness, cache_ratio=0.1)
        keys = np.array([[1, 2, 3], [4, 5, 6]])
        out = emb(keys, device=0)
        assert out.shape == (2, 3, D)
        assert np.array_equal(out, small_table[keys])

    def test_embedding_attributes(self, platform_a, small_table, skewed_hotness):
        emb = UGacheEmbedding(platform_a, small_table, skewed_hotness, cache_ratio=0.1)
        assert emb.num_embeddings == N
        assert emb.embedding_dim == D

    def test_scalar_like_input(self, platform_a, small_table, skewed_hotness):
        emb = UGacheEmbedding(platform_a, small_table, skewed_hotness, cache_ratio=0.1)
        out = emb(np.array([7]), device=1)
        assert np.array_equal(out[0], small_table[7])

    def test_layer_accessor(self, platform_a, small_table, skewed_hotness):
        emb = UGacheEmbedding(platform_a, small_table, skewed_hotness, cache_ratio=0.1)
        assert emb.layer.hit_rates().local > 0


class TestKerasLike:
    def test_lifecycle(self, platform_a, small_table, skewed_hotness):
        layer = UGacheKerasEmbedding(platform_a, cache_ratio=0.1)
        assert not layer.built
        layer.build(small_table, skewed_hotness)
        assert layer.built
        keys = np.array([[3, 1], [4, 1]])
        out = layer(keys, device=0)
        assert out.shape == (2, 2, D)
        assert np.array_equal(out, small_table[keys])

    def test_call_before_build_raises(self, platform_a):
        layer = UGacheKerasEmbedding(platform_a, cache_ratio=0.1)
        with pytest.raises(RuntimeError):
            layer(np.array([1]))

    def test_double_build_raises(self, platform_a, small_table, skewed_hotness):
        layer = UGacheKerasEmbedding(platform_a, cache_ratio=0.1)
        layer.build(small_table, skewed_hotness)
        with pytest.raises(RuntimeError):
            layer.build(small_table, skewed_hotness)

    def test_get_config(self, platform_a, small_table, skewed_hotness):
        layer = UGacheKerasEmbedding(platform_a, cache_ratio=0.1, name="emb0")
        config = layer.get_config()
        assert config["name"] == "emb0"
        assert config["platform"] == "server-a"
        assert config["cache_ratio"] == 0.1

    def test_layer_accessor_guard(self, platform_a):
        layer = UGacheKerasEmbedding(platform_a, cache_ratio=0.1)
        with pytest.raises(RuntimeError):
            _ = layer.layer
