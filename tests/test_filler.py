"""Filler: cache stores, offset maps, placement diffs."""

import numpy as np
import pytest

from repro.core.filler import (
    apply_diff_step,
    fill_all,
    fill_gpu,
    placement_diff,
)
from repro.core.policy import Placement
from repro.hardware.memory import OutOfDeviceMemory


@pytest.fixture
def table(rng):
    return rng.standard_normal((100, 4)).astype(np.float32)


class TestFillGpu:
    def test_contents_match_table(self, table):
        ids = np.array([3, 7, 42])
        store = fill_gpu(0, table, ids)
        assert np.array_equal(store.read(ids), table[ids])

    def test_offsets_dense(self, table):
        store = fill_gpu(0, table, np.array([5, 6]))
        offsets = store.offset_of[[5, 6]]
        assert sorted(offsets) == [0, 1]

    def test_uncached_offset_is_minus_one(self, table):
        store = fill_gpu(0, table, np.array([5]))
        assert store.offset_of[6] == -1

    def test_read_uncached_raises(self, table):
        store = fill_gpu(0, table, np.array([5]))
        with pytest.raises(KeyError):
            store.read(np.array([6]))

    def test_capacity_enforced(self, table):
        with pytest.raises(ValueError):
            fill_gpu(0, table, np.array([1, 2, 3]), capacity_entries=2)

    def test_cached_entries(self, table):
        ids = np.array([9, 2, 57])
        store = fill_gpu(0, table, ids)
        assert np.array_equal(store.cached_entries(), np.sort(ids))

    def test_empty_fill(self, table):
        store = fill_gpu(0, table, np.empty(0, dtype=np.int64))
        assert store.cached_entries().size == 0


class TestInsertEvict:
    def test_insert_then_read(self, table):
        store = fill_gpu(0, table, np.array([1]), capacity_entries=2)
        store.insert(50, table[50])
        assert np.array_equal(store.read(np.array([50]))[0], table[50])

    def test_double_insert_rejected(self, table):
        store = fill_gpu(0, table, np.array([1]), capacity_entries=2)
        with pytest.raises(ValueError):
            store.insert(1, table[1])

    def test_evict_frees_slot(self, table):
        store = fill_gpu(0, table, np.array([1, 2]), capacity_entries=2)
        store.evict(1)
        store.insert(3, table[3])  # recycled slot
        assert np.array_equal(store.read(np.array([3]))[0], table[3])

    def test_evict_uncached_rejected(self, table):
        store = fill_gpu(0, table, np.array([1]), capacity_entries=2)
        with pytest.raises(ValueError):
            store.evict(2)

    def test_insert_beyond_capacity(self, table):
        store = fill_gpu(0, table, np.array([1, 2]), capacity_entries=2)
        with pytest.raises(OutOfDeviceMemory):
            store.insert(3, table[3])


class TestFillAll:
    def test_one_store_per_gpu(self, table):
        placement = Placement(
            num_entries=100, per_gpu=(np.array([0]), np.array([1, 2]))
        )
        stores = fill_all(table, placement)
        assert len(stores) == 2
        assert stores[1].cached_entries().tolist() == [1, 2]

    def test_table_mismatch_rejected(self, table):
        placement = Placement(num_entries=50, per_gpu=(np.array([0]),))
        with pytest.raises(ValueError):
            fill_all(table, placement)


class TestPlacementDiff:
    def test_diff_contents(self):
        old = Placement(num_entries=10, per_gpu=(np.array([1, 2, 3]),))
        new = Placement(num_entries=10, per_gpu=(np.array([2, 3, 4]),))
        diff = placement_diff(old, new)
        assert diff.evictions[0].tolist() == [1]
        assert diff.insertions[0].tolist() == [4]
        assert diff.total_changes() == 2

    def test_identical_placements(self):
        p = Placement(num_entries=10, per_gpu=(np.array([1]),))
        assert placement_diff(p, p).total_changes() == 0

    def test_incomparable_rejected(self):
        a = Placement(num_entries=10, per_gpu=(np.array([1]),))
        b = Placement(num_entries=11, per_gpu=(np.array([1]),))
        with pytest.raises(ValueError):
            placement_diff(a, b)


class TestApplyDiffStep:
    def test_step_moves_entries(self, table):
        store = fill_gpu(0, table, np.array([1, 2]), capacity_entries=2)
        apply_diff_step(store, table, evict=np.array([1]), insert=np.array([9]))
        assert store.offset_of[1] == -1
        assert np.array_equal(store.read(np.array([9]))[0], table[9])

    def test_evictions_applied_before_insertions(self, table):
        # At full capacity a step must not overflow transiently.
        store = fill_gpu(0, table, np.array([1, 2]), capacity_entries=2)
        apply_diff_step(store, table, evict=np.array([1, 2]), insert=np.array([3, 4]))
        assert sorted(store.cached_entries().tolist()) == [3, 4]
