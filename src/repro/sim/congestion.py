"""Congestion model for unorganized (naive peer) extraction — paper §5.1-5.2.

The paper's Figure 6 microbenchmark shows each path (local HBM, NVLink pair,
PCIe/host) *tolerates* only a bounded number of concurrent SMs; Figure 7
shows how random key dispatch over-allocates SMs to slow links, stalling
cores and degrading delivered bandwidth "by up to 50%".

We model a GPU running naive peer extraction as a closed queueing system in
fluid steady state:

* every SM processes a random mix of keys, so the fraction of SMs
  instantaneously parked on source ``j`` is proportional to the total
  service time the batch spends on ``j``;
* a path of bandwidth ``B_j`` with tolerance ``T_j = B_j / per_core_bw``
  SMs delivers its full bandwidth only while at most ``T_j`` SMs target it.
  When ``n_j > T_j`` SMs pile up, delivered bandwidth *degrades* — the
  hardware effect behind the paper's 50% figure (oversubscribed
  outstanding-read queues, switch collisions).  We use a calibrated
  hyperbolic penalty ``B_eff = B / (1 + beta * (n/T - 1))`` clamped at
  ``max_degradation``.

The fixed point of (SM occupancy ↔ per-byte service time) converges in a
handful of damped iterations and yields the batch extraction time.  With
``beta = 0`` the model is work-conserving and reduces to the factored
mechanism's time whenever no path is oversubscribed — which is exactly the
paper's claim that FEM's benefit *is* congestion avoidance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CongestionModel:
    """Tunables of the oversubscription penalty.

    Attributes:
        beta: strength of bandwidth degradation per unit of relative
            oversubscription.  Calibrated so heavily congested links lose
            ~half their bandwidth, matching §3.2 ("reduces system
            performance by up to 50%").
        max_degradation: floor on ``B_eff / B`` (0.5 = at most 50% loss).
        switch_collision_beta: extra penalty applied on switch platforms
            when several GPUs' unorganized readers collide on one source's
            outbound port (right half of Figure 6(b)).
        iterations: fixed-point iteration budget.
        damping: update damping factor in (0, 1].
    """

    beta: float = 1.0
    max_degradation: float = 0.5
    switch_collision_beta: float = 0.06
    iterations: int = 60
    damping: float = 0.5

    def __post_init__(self) -> None:
        if self.beta < 0 or self.switch_collision_beta < 0:
            raise ValueError("penalty coefficients must be non-negative")
        if not 0 < self.max_degradation <= 1:
            raise ValueError("max_degradation must be in (0, 1]")
        if not 0 < self.damping <= 1:
            raise ValueError("damping must be in (0, 1]")

    def effective_bandwidth(self, peak: float, cores: float, tolerance: float) -> float:
        """Delivered bandwidth of a path under ``cores`` concurrent SMs."""
        if peak <= 0:
            return 0.0
        if tolerance <= 0 or cores <= tolerance:
            return peak
        oversub = cores / tolerance - 1.0
        degraded = peak / (1.0 + self.beta * oversub)
        return max(degraded, peak * self.max_degradation)


@dataclass(frozen=True)
class CongestedOutcome:
    """Result of the fixed-point solve for one destination GPU."""

    total_time: float
    #: per-source time share: seconds of the batch attributable to source k
    core_seconds: dict[int, float]
    #: per-source steady-state SM occupancy
    cores_by_source: dict[int, float]
    #: per-source delivered bandwidth after degradation
    effective_bandwidth: dict[int, float]


def solve_congested_extraction(
    volumes: dict[int, float],
    peak_bandwidth: dict[int, float],
    per_core_bandwidth: float,
    num_cores: int,
    model: CongestionModel | None = None,
    collision_pressure: dict[int, float] | None = None,
) -> CongestedOutcome:
    """Fixed-point extraction time for unorganized dispatch on one GPU.

    Args:
        volumes: bytes to extract from each source this batch.
        peak_bandwidth: uncontended path bandwidth per source (for switch
            platforms the caller passes the fair inbound share).
        per_core_bandwidth: bytes/second one SM sustains.
        num_cores: SMs on the destination GPU.
        model: congestion tunables.
        collision_pressure: optional per-source multiplier ≥ 1 expressing
            how many unorganized reader GPUs collide on the source's
            outbound port; applied through ``switch_collision_beta``.

    Returns:
        The converged outcome; ``total_time`` is the batch extraction time.
    """
    model = model or CongestionModel()
    if per_core_bandwidth <= 0:
        raise ValueError("per-core bandwidth must be positive")
    if num_cores <= 0:
        raise ValueError("core count must be positive")

    sources = [s for s, v in volumes.items() if v > 0]
    if not sources:
        return CongestedOutcome(0.0, {}, {}, {})
    vols = np.array([volumes[s] for s in sources], dtype=np.float64)
    peaks = np.array([peak_bandwidth[s] for s in sources], dtype=np.float64)
    if (peaks <= 0).any():
        missing = [s for s, p in zip(sources, peaks) if p <= 0]
        raise ValueError(f"sources {missing} have no bandwidth but non-zero volume")
    pressure = np.array(
        [(collision_pressure or {}).get(s, 1.0) for s in sources], dtype=np.float64
    )
    if (pressure < 1.0).any():
        raise ValueError("collision pressure must be >= 1")

    tolerance = peaks / per_core_bandwidth
    # Start from the uncongested service time (1 byte takes 1/b seconds).
    service = np.full(len(sources), 1.0 / per_core_bandwidth)
    for _ in range(model.iterations):
        core_seconds = vols * service
        occupancy = num_cores * core_seconds / core_seconds.sum()
        eff = np.array(
            [
                model.effective_bandwidth(p, n, t)
                for p, n, t in zip(peaks, occupancy, tolerance)
            ]
        )
        # Unorganized cross-GPU collisions further degrade switch sources.
        collide = 1.0 + model.switch_collision_beta * (pressure - 1.0)
        eff = eff / collide
        new_service = np.maximum(1.0 / per_core_bandwidth, occupancy / eff)
        service = model.damping * new_service + (1 - model.damping) * service

    core_seconds = vols * service
    total_core_seconds = core_seconds.sum()
    occupancy = num_cores * core_seconds / total_core_seconds
    eff = np.array(
        [
            model.effective_bandwidth(p, n, t)
            for p, n, t in zip(peaks, occupancy, tolerance)
        ]
    ) / (1.0 + model.switch_collision_beta * (pressure - 1.0))
    total_time = total_core_seconds / num_cores
    return CongestedOutcome(
        total_time=float(total_time),
        core_seconds={s: float(cs) for s, cs in zip(sources, core_seconds)},
        cores_by_source={s: float(n) for s, n in zip(sources, occupancy)},
        effective_bandwidth={s: float(e) for s, e in zip(sources, eff)},
    )
