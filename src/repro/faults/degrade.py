"""Degraded platform view: a :class:`~repro.hardware.platform.Platform`
seen through a :class:`~repro.faults.spec.HealthView`.

The analytic timing models and the event simulator only ask a platform
three questions — ``bandwidth``, ``tolerance``, ``cost_per_byte`` — so
degradation composes cleanly: wrap the platform, scale the answers by the
health view's link factors, and every downstream model (factored, naive,
message, event-driven) prices faults without knowing they exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.faults.spec import HealthView
from repro.hardware.platform import HOST, Platform

if TYPE_CHECKING:  # avoid a circular import with repro.sim (engine ↔ faults)
    from repro.sim.mechanisms import GpuDemand


class DegradedPlatform:
    """A platform with fault-scaled bandwidths; delegates everything else.

    Duck-types :class:`~repro.hardware.platform.Platform` for the methods
    the simulators consume.  Downed GPUs disappear from ``sources_for``
    and report zero bandwidth; degraded links scale linearly with the
    health view's factor (Figure 6's tolerance shrinks with them, since
    fewer SMs saturate a slower link).
    """

    def __init__(self, base: Platform, health: HealthView) -> None:
        self._base = base
        self._health = health

    @property
    def base(self) -> Platform:
        return self._base

    @property
    def health(self) -> HealthView:
        return self._health

    def __getattr__(self, name: str) -> Any:
        # num_gpus, gpu, gpu_ids, topology, name, … delegate unchanged.
        return getattr(self._base, name)

    # -- the three questions the timing models ask ----------------------
    def bandwidth(self, dst: int, src: int) -> float:
        return self._base.bandwidth(dst, src) * self._health.link_factor(dst, src)

    def peak_pair_bandwidth(self, dst: int, src: int) -> float:
        return self._base.peak_pair_bandwidth(dst, src) * self._health.link_factor(
            dst, src
        )

    def tolerance(self, dst: int, src: int) -> int:
        bw = self.bandwidth(dst, src)
        if bw <= 0:
            return 0
        cores = int(round(bw / self._base.gpu.per_core_bandwidth))
        return max(1, min(cores, self._base.gpu.num_cores))

    def cost_per_byte(self, dst: int, src: int) -> float:
        bw = self.bandwidth(dst, src)
        if bw <= 0:
            return float("inf")
        return 1.0 / bw

    # -- structure under faults -----------------------------------------
    def is_connected(self, dst: int, src: int) -> bool:
        if not self._base.is_connected(dst, src):
            return False
        return self._health.source_usable(dst, src)

    def sources_for(self, dst: int) -> list[int]:
        return [
            s
            for s in self._base.sources_for(dst)
            if self._base.is_backing(s)
            or s == dst
            or self._health.source_usable(dst, s)
        ]


def degraded_platform(platform: Platform, health: HealthView) -> Platform:
    """Wrap ``platform`` under ``health`` (no-op when fully healthy)."""
    if health.healthy:
        return platform
    base = platform.base if isinstance(platform, DegradedPlatform) else platform
    return DegradedPlatform(base, health)  # type: ignore[return-value]


def reroute_demand(demand: GpuDemand, platform: Platform, health: HealthView) -> GpuDemand:
    """Move volume off unusable sources onto the host path.

    The defensive twin of the extractor's key-level rerouting: if a demand
    still references a downed GPU or partitioned link (e.g. it was built
    before the fault struck), its bytes are served from host DRAM instead
    of raising inside the simulator.
    """
    from repro.sim.mechanisms import GpuDemand

    volumes: dict[int, float] = {}
    moved = 0.0
    for src, vol in demand.volumes.items():
        if platform.is_backing(src):
            usable = True
        elif src == demand.dst:
            # A downed destination lost its local copies: its replacement
            # serves the batch from host until the cache refills.
            usable = health.gpu_ok(demand.dst)
        else:
            usable = health.source_usable(demand.dst, src) and platform.is_connected(
                demand.dst, src
            )
        if usable:
            volumes[src] = volumes.get(src, 0.0) + vol
        else:
            moved += vol
    if moved > 0:
        volumes[HOST] = volumes.get(HOST, 0.0) + moved
    return GpuDemand(dst=demand.dst, volumes=volumes)
