"""Figure 10: end-to-end epoch/iteration time, all systems × servers × apps."""

from repro.bench.experiments import fig10_end_to_end
from repro.bench.harness import speedup_summary


def bench_fig10_end_to_end(run_experiment):
    result = run_experiment(fig10_end_to_end)
    # UGache outperforms every baseline on geometric mean (§8.2's headline).
    for base in ("GNNLab", "PartU", "HPS", "SOK"):
        summary = speedup_summary(result.rows, base, "UGache")
        assert summary["count"] > 0
        assert summary["geomean"] > 1.0, f"UGache does not beat {base}"
    # WholeGraph reproduces its launch failures: absent on Server A (table
    # exceeds total GPU memory) and Server B (unconnected pairs).
    for row in result.rows:
        if row["server"] in ("server-a", "server-b") and row["unit"] == "s/epoch":
            assert row["WholeGraph"] is None
