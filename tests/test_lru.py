"""Online LRU cache — the HPS baseline's eviction machinery."""

import numpy as np
import pytest

from repro.baselines.lru import LruCache, steady_state_overlap
from repro.utils.stats import zipf_pmf


class TestBasics:
    def test_miss_then_hit(self):
        cache = LruCache(2)
        assert not cache.access(1)
        assert cache.access(1)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LruCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 is now LRU
        cache.access(3)  # evicts 2
        assert 2 not in cache
        assert 1 in cache and 3 in cache
        assert cache.stats.evictions == 1

    def test_recency_order(self):
        cache = LruCache(3)
        for k in (1, 2, 3):
            cache.access(k)
        cache.access(1)
        assert cache.recency_order() == [1, 3, 2]

    def test_capacity_zero(self):
        cache = LruCache(0)
        assert not cache.access(1)
        assert len(cache) == 0

    def test_len_capped(self):
        cache = LruCache(3)
        for k in range(10):
            cache.access(k)
        assert len(cache) == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    def test_contents_match_membership(self):
        cache = LruCache(4)
        for k in (5, 6, 7):
            cache.access(k)
        assert sorted(cache.contents().tolist()) == [5, 6, 7]

    def test_access_batch_counts_hits(self):
        cache = LruCache(8)
        keys = np.array([1, 2, 1, 3, 2])
        assert cache.access_batch(keys) == 2

    def test_hit_rate(self):
        cache = LruCache(8)
        cache.access_batch(np.array([1, 1, 1, 2]))
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestSequences:
    def test_cyclic_scan_thrashes(self):
        # Classic LRU pathology: a scan one item larger than capacity.
        cache = LruCache(3)
        for _ in range(5):
            for k in range(4):
                cache.access(k)
        assert cache.stats.hits == 0

    def test_working_set_within_capacity_all_hits(self):
        cache = LruCache(4)
        keys = np.tile(np.arange(4), 50)
        hits = cache.access_batch(keys)
        assert hits == 200 - 4

    def test_matches_reference_implementation(self, rng):
        """Cross-check against an OrderedDict reference on random traffic."""
        from collections import OrderedDict

        cache = LruCache(16)
        ref: OrderedDict = OrderedDict()
        for key in rng.integers(0, 64, size=2000):
            key = int(key)
            hit = cache.access(key)
            ref_hit = key in ref
            if ref_hit:
                ref.move_to_end(key)
            else:
                ref[key] = None
                if len(ref) > 16:
                    ref.popitem(last=False)
            assert hit == ref_hit
        assert sorted(cache.contents().tolist()) == sorted(ref.keys())


class TestSteadyState:
    def test_skewed_workload_converges_to_top_k(self):
        hotness = zipf_pmf(2000, 1.4)
        cache = LruCache(100)
        overlap = steady_state_overlap(
            cache, hotness, batch_size=512, warmup_batches=40
        )
        # §8.1's modelling assumption: LRU content ≈ frequency top-K.
        assert overlap > 0.6

    def test_uniform_workload_low_overlap_is_fine(self):
        hotness = np.ones(2000)
        cache = LruCache(100)
        overlap = steady_state_overlap(cache, hotness, 512, 10)
        assert 0.0 <= overlap <= 1.0

    def test_empty_cache_overlap_zero(self):
        assert steady_state_overlap(LruCache(0), np.ones(10), 4, 2) == 0.0


class TestSteadyStateValidation:
    """Degenerate hotness raises instead of feeding NaNs to rng.choice."""

    def test_all_zero_hotness_rejected(self):
        with pytest.raises(ValueError, match="positive total mass"):
            steady_state_overlap(LruCache(4), np.zeros(10), 4, 2)

    def test_negative_hotness_rejected(self):
        hotness = np.ones(10)
        hotness[3] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            steady_state_overlap(LruCache(4), hotness, 4, 2)

    def test_empty_hotness_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            steady_state_overlap(LruCache(4), np.empty(0), 4, 2)

    def test_non_finite_hotness_rejected(self):
        hotness = np.ones(10)
        hotness[0] = np.inf
        with pytest.raises(ValueError):
            steady_state_overlap(LruCache(4), hotness, 4, 2)
