"""Hot policy swap (PolicyManager) and the chaos soak harness."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.refresher import RefreshConfig, Refresher
from repro.core.solver import FallbackConfig, PolicyOutcome, PolicySolveTimeout
from repro.hardware.platform import server_a
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    SOAK_SCENARIOS,
    PolicyManager,
    SoakConfig,
    SwapGuardrail,
    build_soak_plan,
    render_soak_report,
    run_soak,
)
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.serve

N = 1200


def _manager(guardrail=None):
    platform = server_a()
    rng = make_rng(0)
    table = rng.standard_normal((N, 8)).astype(np.float32)
    hotness = zipf_pmf(N, 1.1) * 1000
    cap = N // 8
    placement = hot_replicate_warm_partition_policy(
        hotness, cap, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    manager = PolicyManager(
        cache,
        refresher=Refresher(cache, RefreshConfig(update_batch_entries=64)),
        guardrail=guardrail,
    )
    target = hot_replicate_warm_partition_policy(
        hotness, cap, platform.num_gpus, 0.0
    )
    outcome = PolicyOutcome(
        placement=target, source="greedy", est_time=1.0, elapsed=0.0, attempts=1
    )
    return cache, manager, hotness, cap, outcome


def _same_placement(cache, placement):
    return all(
        np.array_equal(np.sort(a), np.sort(b))
        for a, b in zip(cache.placement.per_gpu, placement.per_gpu)
    )


class TestPolicySwap:
    def test_successful_swap_bumps_version(self):
        cache, manager, _h, _cap, outcome = _manager()
        drained = []
        report = manager.swap(
            outcome, now=5.0, drain=lambda: drained.append(True),
            probe=lambda: 1.0,
        )
        assert report.swapped and not report.rolled_back
        assert report.reason == "swapped"
        assert report.entries_moved > 0
        assert drained == [True]
        assert manager.version == 1
        assert manager.current.activated_at == 5.0
        assert _same_placement(cache, outcome.placement)
        assert cache.verify_integrity() == []

    def test_guardrail_regression_rolls_back(self):
        cache, manager, _h, _cap, outcome = _manager(
            guardrail=SwapGuardrail(p99_regression=1.5)
        )
        before = cache.placement
        probes = iter([1.0, 10.0])  # post-swap p99 blows past 1.5x pre
        report = manager.swap(outcome, probe=lambda: next(probes))
        assert report.rolled_back and not report.swapped
        assert report.reason == "p99-guardrail"
        assert manager.version == 0
        assert _same_placement(cache, before)
        assert cache.verify_integrity() == []

    def test_not_better_policy_is_skipped(self):
        _cache, manager, _h, _cap, outcome = _manager()
        manager.swap(outcome, probe=lambda: 1.0)  # lands v1 (est 1.0)
        worse = PolicyOutcome(
            placement=outcome.placement, source="greedy",
            est_time=2.0, elapsed=0.0, attempts=1,
        )
        report = manager.swap(worse)
        assert not report.swapped and report.reason == "not-better"
        assert manager.version == 1

    def test_interrupted_refresh_leaves_old_generation(self):
        cache, manager, _h, _cap, outcome = _manager()
        before_map = cache.source_map.copy()
        report = manager.swap(outcome, abort=lambda: True)
        assert report.rolled_back and report.reason == "refresh-interrupted"
        assert manager.version == 0
        assert np.array_equal(cache.source_map, before_map)

    def test_solve_feeds_swap_end_to_end(self):
        cache, manager, hotness, cap, _outcome = _manager()
        outcome = manager.solve(hotness, cap)
        assert outcome.source in ("milp", "greedy", "cached")
        report = manager.swap(outcome, probe=lambda: 1.0)
        # the solver may or may not beat the current layout by enough to
        # move entries; either way the swap path must stay consistent.
        assert report.reason in ("swapped", "not-better")
        assert cache.verify_integrity() == []

    def test_swap_counters_exported(self):
        registry = MetricsRegistry("t")
        with use_registry(registry):
            _cache, manager, _h, _cap, outcome = _manager()
            manager.swap(outcome, probe=lambda: 1.0)
        assert registry.value("serve.policy.swaps", result="swapped") == 1.0
        assert registry.value("serve.policy.version") == 1.0


class TestSolverFallbackRng:
    def test_retry_rng_pins_jitter_schedule(self):
        from repro.core.solver import solve_policy_with_fallback
        from repro.utils.retry import RetryPolicy

        platform = server_a()
        hotness = zipf_pmf(400, 1.1) * 100
        sleeps: list[float] = []

        def failing(*_a, **_k):
            raise PolicySolveTimeout("injected")

        fb = FallbackConfig(
            deadline_seconds=30.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.5),
        )
        for _ in range(2):
            batch: list[float] = []
            solve_policy_with_fallback(
                platform, hotness, 40, 32,
                fallback=fb, solve_fn=failing,
                sleep=batch.append, retry_rng=1234,
            )
            sleeps.append(tuple(batch))
        assert sleeps[0] == sleeps[1]  # same rng seed, same schedule
        assert any(s != 0.1 for s in sleeps[0])  # jitter actually applied


class TestSoak:
    def test_scenario_registry(self):
        assert "dgx_a100_partial_failure" in SOAK_SCENARIOS
        assert SOAK_SCENARIOS["dgx_a100_partial_failure"][0] == "server-c"
        with pytest.raises(ValueError):
            build_soak_plan("no-such-scenario", 1.0)
        assert build_soak_plan("steady", 1.0) is None
        plan = build_soak_plan("dgx_a100_partial_failure", 10.0)
        assert plan.last_clear_time() <= 10.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SoakConfig(requests_per_gpu=0)
        with pytest.raises(ValueError):
            SoakConfig(load=0.0)
        with pytest.raises(ValueError):
            SoakConfig(swap_at=(1.5,))

    def test_dgx_a100_partial_failure_soak(self):
        registry = MetricsRegistry("soak")
        with use_registry(registry):
            report = run_soak(
                SoakConfig.quick(
                    scenario="dgx_a100_partial_failure", requests_per_gpu=80
                )
            )
        # acceptance: completes with zero unhandled exceptions (we got
        # here), bounded queue depth, observable breaker transitions, and
        # at least one successful hot policy swap.
        assert report.ok
        assert report.integrity_failures == 0
        assert report.max_queue_depth <= report.queue_capacity
        assert report.breaker_transitions.get("open", 0) >= 1
        assert report.breaker_transitions.get("half-open", 0) >= 1
        assert report.swaps_landed >= 1
        assert report.served_ok > 0
        assert report.rerouted_keys > 0
        assert report.p99_latency >= report.p50_latency > 0
        # metrics made it into the registry the run was captured under
        assert registry.value("soak.goodput_rps") == pytest.approx(
            report.goodput_rps
        )
        text = render_soak_report(report)
        assert "dgx_a100_partial_failure" in text and "PASS" in text
        doc = report.to_dict()
        assert doc["ok"] is True and doc["swaps_landed"] >= 1

    def test_soak_is_deterministic(self):
        cfg = SoakConfig.quick(scenario="steady", requests_per_gpu=40)
        a = run_soak(cfg)
        b = run_soak(cfg)
        assert a.to_dict() == b.to_dict()

    def test_closed_loop_soak(self):
        report = run_soak(
            SoakConfig.quick(
                scenario="steady",
                requests_per_gpu=40,
                closed_loop=True,
                clients=3,
                swap_at=(0.5,),
            )
        )
        assert report.served_ok > 0
        assert report.integrity_failures == 0
        assert report.max_queue_depth <= report.queue_capacity

    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        report = run_soak(
            SoakConfig.quick(
                scenario="steady", requests_per_gpu=60, load=3.0, swap_at=()
            )
        )
        assert report.shed + report.rejected > 0
        assert report.max_queue_depth <= report.queue_capacity
        assert report.served_ok > 0
