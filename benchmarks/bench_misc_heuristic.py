"""Ablation: hot-replicate/warm-partition heuristic [39] vs the MILP."""

from repro.bench.experiments import misc_heuristic_vs_solver


def bench_misc_heuristic(run_experiment):
    result = run_experiment(misc_heuristic_vs_solver)
    for row in result.rows:
        # A single solve stays within 5% of an exhaustively grid-searched
        # heuristic (which needs one full placement evaluation per split
        # candidate), and often wins outright.  §6.3's point is
        # generality: the heuristic's split applies only to uniform
        # fully-connected platforms, while the MILP prices DGX-1's
        # non-uniform links and unconnected pairs natively.
        assert row["solver_advantage"] >= 0.95
