"""Theoretically-optimal cache policy reference (§8.5, Figure 16).

The paper quantifies its blocking approximation by solving the MILP at the
granularity of individual entries on reduced datasets (SYN-As/SYN-Bs).  We
expose the same reference: :func:`solve_optimal` builds one block per entry
and solves it — the continuous relaxation by default (a lower bound on the
binary optimum and exact whenever the relaxation is integral, which these
transportation-like instances usually are), or the true binary program for
tiny universes.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import per_entry_blocks
from repro.core.solver import SolvedPolicy, SolverConfig, solve_policy
from repro.hardware.platform import Platform

#: Above this universe size the per-entry model is refused — the paper hits
#: the same wall and reduces the dataset instead (SYN-As/Bs).
MAX_OPTIMAL_ENTRIES = 10_000


def solve_optimal(
    platform: Platform,
    hotness: np.ndarray,
    capacity_entries: int | list[int],
    entry_bytes: int,
    integral: bool = False,
    time_limit: float = 300.0,
) -> SolvedPolicy:
    """Solve the cache policy at per-entry granularity.

    Raises:
        ValueError: if the universe exceeds :data:`MAX_OPTIMAL_ENTRIES`
            (mirroring the paper's infeasibility on full-size datasets).
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    if hotness.size > MAX_OPTIMAL_ENTRIES:
        raise ValueError(
            f"per-entry optimal solve limited to {MAX_OPTIMAL_ENTRIES} entries "
            f"(got {hotness.size}); reduce the dataset as §8.5 does"
        )
    blocks = per_entry_blocks(hotness)
    config = SolverConfig(
        integral=integral, time_limit=time_limit, method="highs-ipm"
    )
    return solve_policy(
        platform,
        hotness,
        capacity_entries,
        entry_bytes,
        config=config,
        blocks=blocks,
    )


def approximation_gap(ugache: SolvedPolicy, optimal: SolvedPolicy) -> float:
    """Relative extraction-time gap of the blocked solve vs the reference.

    The paper reports <2% on average (§6.3, Figure 16).
    """
    if optimal.est_time <= 0:
        return 0.0
    return (ugache.est_time - optimal.est_time) / optimal.est_time
