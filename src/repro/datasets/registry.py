"""Dataset registry + the scaled capacity rule benchmarks share.

Because every stand-in dataset is scaled by a known factor, GPU cache
budgets must shrink by the same factor for cache *ratios* to match the
paper's testbeds.  :func:`cache_ratio_for` encodes that rule once:

    usable cache bytes = USABLE_GPU_FRACTION × gpu_memory × dataset.scale
    cache ratio        = usable bytes / scaled embedding volume

``USABLE_GPU_FRACTION`` accounts for the memory the workload itself needs
(model, activations, sampling buffers) — the paper's systems cache with
what is left after those reservations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.dlr_datasets import DLR_SPECS, DlrDatasetSpec, dlr_spec
from repro.datasets.gnn_datasets import GNN_SPECS, GnnDataset, GnnDatasetSpec, build_gnn_dataset
from repro.hardware.platform import Platform

#: Fraction of GPU memory available for embedding cache after workload
#: reservations.  One number for all systems keeps comparisons fair;
#: GNNLab's sampler-offload bonus is modelled in its baseline instead.
USABLE_GPU_FRACTION = 0.5


@dataclass(frozen=True)
class DatasetSummary:
    """Table 3 row for reporting."""

    key: str
    paper_name: str
    kind: str
    num_entries: int
    dim: int
    volume_bytes: int
    scale: float


def all_dataset_summaries() -> list[DatasetSummary]:
    """Every stand-in dataset, in Table 3 order."""
    rows = []
    for spec in GNN_SPECS.values():
        rows.append(
            DatasetSummary(
                key=spec.key,
                paper_name=spec.paper_name,
                kind="gnn",
                num_entries=spec.num_nodes,
                dim=spec.dim,
                volume_bytes=spec.embedding_bytes,
                scale=spec.scale,
            )
        )
    for spec in DLR_SPECS.values():
        if spec.key.endswith("s") and spec.key.startswith("syn-"):
            continue  # reduced Figure-16 variants are not Table 3 rows
        rows.append(
            DatasetSummary(
                key=spec.key,
                paper_name=spec.paper_name,
                kind="dlr",
                num_entries=spec.num_entries,
                dim=spec.dim,
                volume_bytes=spec.embedding_bytes,
                scale=spec.scale,
            )
        )
    return rows


def cache_ratio_for(
    platform: Platform,
    spec: GnnDatasetSpec | DlrDatasetSpec,
    usable_fraction: float = USABLE_GPU_FRACTION,
) -> float:
    """Per-GPU cache ratio this platform affords for this dataset."""
    usable = usable_fraction * platform.gpu.memory_bytes * spec.scale
    ratio = usable / spec.embedding_bytes
    return float(min(1.0, ratio))


def capacity_entries_for(
    platform: Platform,
    spec: GnnDatasetSpec | DlrDatasetSpec,
    usable_fraction: float = USABLE_GPU_FRACTION,
) -> int:
    """Per-GPU cache capacity in entries under the scaled-memory rule."""
    num_entries = (
        spec.num_nodes if isinstance(spec, GnnDatasetSpec) else spec.num_entries
    )
    return int(cache_ratio_for(platform, spec, usable_fraction) * num_entries)


__all__ = [
    "USABLE_GPU_FRACTION",
    "DatasetSummary",
    "all_dataset_summaries",
    "cache_ratio_for",
    "capacity_entries_for",
    "build_gnn_dataset",
    "dlr_spec",
    "GNN_SPECS",
    "DLR_SPECS",
    "GnnDataset",
    "GnnDatasetSpec",
    "DlrDatasetSpec",
]
