"""Background cache Refresher (§7.2, evaluated in §8.6 / Figure 17).

Embedding hotness drifts slowly (days), so UGache refreshes its static
cache in the background instead of paying per-access eviction bookkeeping:

1. the foreground samples requests into a :class:`HotnessTracker`;
2. periodically the Solver re-estimates extraction time under the new
   hotness; if it improved enough, a refresh is triggered;
3. the Refresher computes the placement diff and applies it in small
   batches, throttled so foreground impact stays bounded (~10%);
4. the location hashtable is swapped only after the affected store
   contents are in place, with a foreground batch between the two steps,
   so lookups never observe a dangling ``<GPU, Offset>``.

Two entry points: :meth:`Refresher.refresh` mutates a live cache
incrementally (functional), and :func:`simulate_refresh_timeline`
reproduces Figure 17's latency-vs-time trace analytically.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.filler import apply_diff_step, placement_diff
from repro.core.policy import Placement
from repro.obs import get_registry
from repro.utils.logging import get_logger

logger = get_logger("core.refresher")


@dataclass(frozen=True)
class RefreshConfig:
    """Refresh throttling and triggering knobs.

    Attributes:
        update_batch_entries: entries moved per small-batch update step.
        foreground_impact: fractional slowdown imposed on foreground
            requests while a refresh step is in flight (§7.2: <10%).
        trigger_ratio: refresh only if the newly solved policy's estimated
            extraction time beats the current one by this factor.
        solve_seconds: charged for the background policy solve (the paper
            reports ~10 s; our HiGHS solves are faster, so this models the
            full-size problem).
        entries_per_second: sustained cache-update throughput (bounded by
            PCIe refill bandwidth and deliberately throttled).
    """

    update_batch_entries: int = 4096
    foreground_impact: float = 0.10
    trigger_ratio: float = 1.05
    solve_seconds: float = 10.0
    entries_per_second: float = 200_000.0

    def __post_init__(self) -> None:
        if self.update_batch_entries <= 0:
            raise ValueError("update batch must be positive")
        if not 0 <= self.foreground_impact < 1:
            raise ValueError("foreground impact must be in [0, 1)")
        if self.trigger_ratio < 1:
            raise ValueError("trigger ratio must be >= 1")
        if self.entries_per_second <= 0:
            raise ValueError("update throughput must be positive")


@dataclass
class RefreshOutcome:
    """What one refresh did."""

    triggered: bool
    entries_moved: int = 0
    steps: int = 0
    estimated_duration: float = 0.0
    interrupted: bool = False
    rolled_back: bool = False


class RefreshInterrupted(RuntimeError):
    """A refresh was aborted mid-flight and rolled back.

    ``outcome`` carries the rollback's :class:`RefreshOutcome`
    (``interrupted=True, rolled_back=True``).
    """

    def __init__(self, message: str, outcome: RefreshOutcome | None = None):
        super().__init__(message)
        self.outcome = outcome


class Refresher:
    """Applies a new placement to a live cache in throttled steps."""

    def __init__(self, cache: MultiGpuEmbeddingCache, config: RefreshConfig | None = None):
        self._cache = cache
        self._config = config or RefreshConfig()
        # Epoch of the content now being served: set at construction (the
        # initial fill) and advanced on every completed refresh; its age
        # is the staleness the next refresh retires.
        self._content_epoch = _time.perf_counter()

    def should_refresh(self, current_time: float, candidate_time: float) -> bool:
        """Trigger when the candidate policy is sufficiently better."""
        if candidate_time <= 0:
            return False
        return current_time / candidate_time >= self._config.trigger_ratio

    def refresh(
        self,
        new_placement: Placement,
        abort: Callable[[], bool] | None = None,
    ) -> RefreshOutcome:
        """Incrementally move the cache to ``new_placement``.

        Drains :meth:`refresh_steps`; see there for the consistency and
        rollback arguments.  When ``abort`` fires mid-refresh, the cache
        is rolled back to its pre-refresh state and the returned outcome
        has ``interrupted=True, rolled_back=True`` (no exception escapes).
        """
        outcome = RefreshOutcome(triggered=False)
        try:
            for outcome in self.refresh_steps(new_placement, abort=abort):
                pass
        except RefreshInterrupted as exc:
            assert exc.outcome is not None
            return exc.outcome
        return outcome

    def _rollback(
        self,
        undo: list[tuple[int, np.ndarray, np.ndarray]],
        placement: Placement,
        source_map: np.ndarray,
    ) -> None:
        """Reverse every applied step, restore the snapshotted routing, and
        prove the cache is bit-identical to its pre-refresh state.

        Survives a *double fault* — a failure raised while the rollback
        itself replays the undo log: the host table is the ground truth,
        so when the incremental replay dies we abandon it and rebuild the
        stores wholesale from the snapshotted placement.  Either way the
        location state is restored and integrity re-verified.
        """
        table = self._cache.host_table
        with self._cache.writing():
            try:
                for gpu, evicted, inserted in reversed(undo):
                    # Inverse of apply_diff_step: drop what it inserted,
                    # re-insert what it evicted (values come back from the host
                    # table, which is the ground truth the stores mirror).
                    apply_diff_step(
                        self._cache.store(gpu), table, inserted, evicted
                    )
            except Exception as exc:
                logger.error(
                    "rollback replay failed (%s); rebuilding stores from the "
                    "host table instead", exc,
                )
                get_registry().counter("refresher.rollback.double_faults").inc()
                self._cache.replace_placement(placement)
            self._cache.restore_location_state(placement, source_map)
            self._cache.check_integrity()
        reg = get_registry()
        if reg.enabled:
            reg.counter("refresher.rollbacks").inc()
            reg.histogram("refresher.rollback.steps").observe(len(undo))
        logger.warning("refresh rolled back: %d step(s) undone", len(undo))

    def refresh_steps(
        self,
        new_placement: Placement,
        abort: Callable[[], bool] | None = None,
    ):
        """Generator form of :meth:`refresh`: yields after every small-batch
        update step so a caller (or test) can interleave foreground lookups.

        Lookups stay correct at every yield point: before any store is
        touched, every to-be-evicted entry is rerouted to host in all
        location tables, so no lookup can chase a slot a later step
        recycles; inserted entries only become visible when the maps are
        rebuilt after the final step.

        The refresh is transactional: the placement and location table are
        snapshotted up front and every applied step is recorded in an undo
        log.  If ``abort()`` returns True between steps (refresher
        interruption under a fault plan), or any step raises, the log is
        replayed in reverse and the snapshot restored, leaving the cache
        bit-identical to its pre-refresh state — verified by
        :meth:`~repro.core.cache.MultiGpuEmbeddingCache.check_integrity`.
        Interruption then raises :class:`RefreshInterrupted`; other
        exceptions propagate unchanged after the rollback.
        """
        cfg = self._config
        reg = get_registry()
        swap_start = _time.perf_counter()
        diff = placement_diff(self._cache.placement, new_placement)
        total = diff.total_changes()
        if total == 0:
            reg.counter("refresher.noop").inc()
            yield RefreshOutcome(triggered=False)
            return

        snapshot_placement = self._cache.placement
        snapshot_map = self._cache.source_map.copy()
        undo: list[tuple[int, np.ndarray, np.ndarray]] = []

        # The old source map may point any GPU at a slot a refresh step
        # recycles, so first route every to-be-evicted entry to host for
        # the duration of the refresh (the paper instead waits a
        # foreground batch; the effect — no dangling read — is the same).
        from repro.hardware.platform import HOST

        with self._cache.writing():
            source_map = self._cache.source_map
            for gpu in range(new_placement.num_gpus):
                evicted = diff.evictions[gpu]
                if len(evicted) == 0:
                    continue
                for dst in range(new_placement.num_gpus):
                    stale = source_map[dst][evicted] == gpu
                    source_map[dst][evicted[stale]] = HOST

        steps = 0
        table = self._cache.host_table
        try:
            for gpu in range(new_placement.num_gpus):
                evict = diff.evictions[gpu]
                insert = diff.insertions[gpu]
                cursor_e = cursor_i = 0
                while cursor_e < len(evict) or cursor_i < len(insert):
                    if abort is not None and abort():
                        raise RefreshInterrupted(
                            f"refresh aborted after {steps} step(s)"
                        )
                    batch_e = evict[cursor_e : cursor_e + cfg.update_batch_entries]
                    batch_i = insert[cursor_i : cursor_i + cfg.update_batch_entries]
                    # Keep occupancy within capacity: evict before insert.
                    # Each step holds the cache's write lock on its own (the
                    # lock is *not* held across the yield below), so serving
                    # workers' lookups interleave between steps, never inside
                    # one.
                    with self._cache.writing():
                        apply_diff_step(
                            self._cache.store(gpu), table, batch_e, batch_i
                        )
                    undo.append((gpu, batch_e, batch_i))
                    cursor_e += len(batch_e)
                    cursor_i += len(batch_i)
                    steps += 1
                    yield RefreshOutcome(
                        triggered=True,
                        entries_moved=int(cursor_e + cursor_i),
                        steps=steps,
                        estimated_duration=0.0,
                    )
        except RefreshInterrupted as exc:
            self._rollback(undo, snapshot_placement, snapshot_map)
            if reg.enabled:
                reg.counter("refresher.interrupted").inc()
            exc.outcome = RefreshOutcome(
                triggered=True,
                entries_moved=0,
                steps=steps,
                interrupted=True,
                rolled_back=True,
            )
            raise
        except Exception:
            self._rollback(undo, snapshot_placement, snapshot_map)
            raise
        self._cache.refresh_source_map()
        duration = cfg.solve_seconds + total / cfg.entries_per_second
        if reg.enabled:
            now = _time.perf_counter()
            reg.counter("refresher.refreshes").inc()
            reg.counter("refresher.entries_moved").inc(total)
            reg.histogram("refresher.steps").observe(steps)
            reg.histogram("refresher.swap.seconds").observe(now - swap_start)
            reg.histogram("refresher.staleness.seconds").observe(
                swap_start - self._content_epoch
            )
            reg.histogram("refresher.modelled_duration.seconds").observe(duration)
            self._content_epoch = now
        else:
            self._content_epoch = _time.perf_counter()
        logger.info(
            "refresh complete: moved %d entries in %d steps (~%.1fs modelled)",
            total, steps, duration,
        )
        yield RefreshOutcome(
            triggered=True,
            entries_moved=total,
            steps=steps,
            estimated_duration=duration,
        )


@dataclass(frozen=True)
class RefreshTimeline:
    """Figure 17's trace: foreground latency sampled over wall-clock time."""

    times: np.ndarray
    latencies: np.ndarray
    refresh_windows: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    def mean_latency(self, start: float, stop: float) -> float:
        mask = (self.times >= start) & (self.times < stop)
        if not mask.any():
            return 0.0
        return float(self.latencies[mask].mean())


def simulate_refresh_timeline(
    baseline_latency: float,
    total_duration: float,
    refresh_starts: tuple[float, ...],
    entries_to_move: int,
    config: RefreshConfig | None = None,
    sample_interval: float = 0.5,
) -> RefreshTimeline:
    """Analytic Figure-17 trace: latency vs time with refreshes triggered.

    During a refresh window (solve + throttled updates), foreground
    iterations slow by ``foreground_impact``; outside, they run at
    ``baseline_latency``.
    """
    cfg = config or RefreshConfig()
    refresh_duration = cfg.solve_seconds + entries_to_move / cfg.entries_per_second
    windows = tuple(
        (start, min(start + refresh_duration, total_duration))
        for start in refresh_starts
    )
    times = np.arange(0.0, total_duration, sample_interval)
    latencies = np.full_like(times, baseline_latency)
    for start, stop in windows:
        mask = (times >= start) & (times < stop)
        latencies[mask] = baseline_latency * (1.0 + cfg.foreground_impact)
    return RefreshTimeline(times=times, latencies=latencies, refresh_windows=windows)
