"""Hotness drift: time-varying DLR traces for the Refresher (§7.2, §8.6).

Production recommendation traffic shifts slowly — "hot entries in different
daily traces are highly alike" (§2) — so the paper refreshes the static
cache periodically instead of paying per-access eviction.  This module
generates exactly that kind of workload: a sequence of *days*, each a
:class:`~repro.dlr.workload.DlrWorkload` whose hot set is a controlled
perturbation of the previous day's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.dlr.workload import DlrWorkload
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf


@dataclass(frozen=True)
class DriftingTrace:
    """A multi-day DLR trace with bounded day-over-day hot-set churn.

    Attributes:
        base: day-0 workload (defines tables, skew, batch size).
        churn: fraction of each table's popularity ranking that is
            re-drawn between consecutive days (0 = static, 1 = fully
            re-shuffled).  Real daily traces sit near 0.05-0.2.
        num_days: length of the trace.
    """

    base: DlrWorkload
    churn: float = 0.1
    num_days: int = 7
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if self.num_days < 1:
            raise ValueError("need at least one day")

    def days(self) -> Iterator[DlrWorkload]:
        """Yield one workload per day, drifting from the base."""
        rng = make_rng(self.seed)
        perms = [rng.permutation(size) for size in self.base.table_sizes]
        for _day in range(self.num_days):
            yield self._workload_for(perms)
            perms = [self._churn_permutation(p, rng) for p in perms]

    def _churn_permutation(
        self, perm: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Re-draw a ``churn`` fraction of a table's popularity ranking.

        Swaps a random subset of ranking positions, so most of the hot
        set persists while some entries heat up / cool down.
        """
        perm = perm.copy()
        n = len(perm)
        moved = int(self.churn * n)
        if moved >= 2:
            positions = rng.choice(n, size=moved, replace=False)
            perm[positions] = perm[rng.permutation(positions)]
        return perm

    def _workload_for(self, perms: list[np.ndarray]) -> DlrWorkload:
        return DlrWorkload(
            table_sizes=self.base.table_sizes,
            alpha=self.base.alpha,
            batch_size=self.base.batch_size,
            num_gpus=self.base.num_gpus,
            seed=self.base.seed,
            permutations=tuple(p.copy() for p in perms),
        )


@dataclass(frozen=True)
class DriftPhase:
    """One stationary regime of a drift scenario.

    Attributes:
        start: activation point as a fraction of the run's duration
            (``0.0`` = the run's beginning).
        pmf: per-entry access distribution while the phase is active.
    """

    start: float
    pmf: np.ndarray

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < 1.0:
            raise ValueError("phase start must be in [0, 1)")
        pmf = np.asarray(self.pmf, dtype=np.float64)
        if pmf.ndim != 1 or pmf.size == 0 or (pmf < 0).any():
            raise ValueError("phase pmf must be a non-negative 1-D vector")
        if not np.isclose(pmf.sum(), 1.0):
            raise ValueError("phase pmf must sum to 1")


@dataclass(frozen=True)
class DriftSchedule:
    """A piecewise-stationary workload: abrupt pmf changes at known points.

    The change points are *abrupt* on purpose — the drift detector's job
    is to notice them from the key stream alone; a schedule that eased
    between phases would let a sluggish detector pass by accident.

    Attributes:
        name: scenario name (a :data:`DRIFT_SCENARIOS` key).
        phases: stationary regimes ordered by ``start``; the first must
            start at 0.
        transitions: the change points (each later phase's ``start``),
            kept separately so reports can bucket requests into
            transition windows without re-deriving them.
    """

    name: str
    phases: tuple[DriftPhase, ...]
    transitions: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("schedule needs at least one phase")
        if self.phases[0].start != 0.0:
            raise ValueError("first phase must start at 0")
        starts = [p.start for p in self.phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phase starts must be strictly increasing")
        if tuple(p.start for p in self.phases[1:]) != self.transitions:
            raise ValueError("transitions must mirror later phase starts")

    @property
    def num_entries(self) -> int:
        return len(self.phases[0].pmf)

    def phase_at(self, frac: float) -> int:
        """Index of the phase active at run-fraction ``frac``."""
        idx = 0
        for k, phase in enumerate(self.phases):
            if frac >= phase.start:
                idx = k
        return idx

    def pmf_at(self, frac: float) -> np.ndarray:
        """The access distribution active at run-fraction ``frac``."""
        return self.phases[self.phase_at(frac)].pmf


def _rank_pmf(ranks: np.ndarray, alpha: float) -> np.ndarray:
    """Zipf mass assigned by rank: ``ranks[k]`` holds rank-``k``'s entry."""
    pmf = np.zeros(len(ranks))
    pmf[ranks] = zipf_pmf(len(ranks), alpha)
    return pmf


def _rotating_head(num_entries: int, alpha: float, seed: int) -> DriftSchedule:
    """The Zipf *ranking* rotates: hot entries cool, cold entries heat.

    A pure rank permutation — the distribution's shape never changes, so
    an incremental warm-started re-solve is exactly as good as a cold
    solve (the §6.3 block profile is rank-sliced, not identity-keyed).
    """
    rng = make_rng(seed)
    ranks = rng.permutation(num_entries)
    shift1 = np.roll(ranks, num_entries // 3)
    shift2 = np.roll(ranks, 2 * (num_entries // 3))
    return DriftSchedule(
        name="rotating-head",
        phases=(
            DriftPhase(0.0, _rank_pmf(ranks, alpha)),
            DriftPhase(0.35, _rank_pmf(shift1, alpha)),
            DriftPhase(0.65, _rank_pmf(shift2, alpha)),
        ),
        transitions=(0.35, 0.65),
    )


def _table_shift(num_entries: int, alpha: float, seed: int) -> DriftSchedule:
    """Popularity moves *between* embedding tables, not within them.

    The universe is split into four contiguous segments (stand-ins for
    per-table ID ranges); each keeps its internal Zipf ranking while the
    cross-segment popularity weights rotate — the DLR analogue of one
    feature suddenly dominating traffic.
    """
    rng = make_rng(seed)
    bounds = np.linspace(0, num_entries, 5).astype(int)
    segment_pmfs = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        seg = np.zeros(num_entries)
        ranks = rng.permutation(b - a)
        seg[a:b] = _rank_pmf(ranks, alpha)
        segment_pmfs.append(seg)
    weights = np.array([0.6, 0.25, 0.1, 0.05])

    def mix(w: np.ndarray) -> np.ndarray:
        pmf = sum(wi * seg for wi, seg in zip(w, segment_pmfs))
        return pmf / pmf.sum()

    return DriftSchedule(
        name="table-shift",
        phases=(
            DriftPhase(0.0, mix(weights)),
            DriftPhase(0.4, mix(np.roll(weights, 1))),
        ),
        transitions=(0.4,),
    )


def _flash_crowd(num_entries: int, alpha: float, seed: int) -> DriftSchedule:
    """Half the traffic stampedes onto ~1% previously-cold entries.

    Unlike the rotation scenarios this *changes the distribution's
    shape* (a second head appears), so the warm-start profile guard is
    expected to refuse and the adaptation falls through to a cold
    re-solve; the schedule reverts, testing re-adaptation back.
    """
    rng = make_rng(seed)
    ranks = rng.permutation(num_entries)
    base = _rank_pmf(ranks, alpha)
    k = max(1, num_entries // 100)
    crowd_entries = np.argsort(base)[:k]  # the coldest tail
    crowd = base * 0.5
    crowd[crowd_entries] += 0.5 / k
    crowd = crowd / crowd.sum()
    return DriftSchedule(
        name="flash-crowd",
        phases=(
            DriftPhase(0.0, base),
            DriftPhase(0.35, crowd),
            DriftPhase(0.70, base.copy()),
        ),
        transitions=(0.35, 0.70),
    )


#: scenario name -> builder(num_entries, alpha, seed)
DRIFT_SCENARIOS = {
    "rotating-head": _rotating_head,
    "table-shift": _table_shift,
    "flash-crowd": _flash_crowd,
}


def build_drift_schedule(
    scenario: str, num_entries: int, alpha: float = 1.05, seed: int = 0
) -> DriftSchedule:
    """Construct a named drift scenario over ``num_entries`` entries."""
    if scenario not in DRIFT_SCENARIOS:
        raise ValueError(
            f"unknown drift scenario {scenario!r}; "
            f"choose from {sorted(DRIFT_SCENARIOS)}"
        )
    if num_entries < 4:
        raise ValueError("drift scenarios need at least 4 entries")
    return DRIFT_SCENARIOS[scenario](num_entries, alpha, seed)


def hot_set_overlap(day_a: DlrWorkload, day_b: DlrWorkload, top_frac: float = 0.01) -> float:
    """Jaccard overlap of two days' hottest entries (the §2 stability claim)."""
    if not 0 < top_frac <= 1:
        raise ValueError("top_frac must be in (0, 1]")
    hot_a = day_a.hotness()
    hot_b = day_b.hotness()
    k = max(1, int(top_frac * len(hot_a)))
    top_a = set(np.argsort(-hot_a)[:k].tolist())
    top_b = set(np.argsort(-hot_b)[:k].tolist())
    union = top_a | top_b
    if not union:
        return 0.0
    return len(top_a & top_b) / len(union)
