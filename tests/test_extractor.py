"""Runtime factored Extractor: plans, grouping, execution (Figure 8)."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import partition_policy, replication_policy
from repro.hardware.platform import HOST

N, D = 2000, 8


@pytest.fixture
def extractor(platform_a, small_table, skewed_hotness):
    placement = partition_policy(skewed_hotness, 200, 4)
    cache = MultiGpuEmbeddingCache(platform_a, small_table, placement)
    return FactoredExtractor(cache)


class TestPlan:
    def test_groups_cover_batch(self, extractor, rng):
        keys = rng.integers(0, N, size=300)
        plan = extractor.plan(0, keys)
        positions = np.concatenate([g.batch_positions for g in plan.groups])
        assert sorted(positions.tolist()) == list(range(300))

    def test_groups_are_source_pure(self, extractor, rng):
        keys = rng.integers(0, N, size=300)
        plan = extractor.plan(0, keys)
        source_map = extractor._cache.source_map
        for group in plan.groups:
            assert (source_map[0][group.keys] == group.source).all()

    def test_local_group_is_last(self, extractor):
        # Key 0..799 are partitioned over GPUs; include locals and remotes.
        keys = np.arange(800)
        plan = extractor.plan(2, keys)
        local = plan.local_group
        assert local is not None
        assert plan.groups[-1].source == 2

    def test_nonlocal_offsets_resolve_storage(self, extractor, small_table):
        keys = np.arange(800)
        plan = extractor.plan(0, keys)
        for group in plan.nonlocal_groups:
            if group.source == HOST:
                continue
            store = extractor._cache.store(group.source)
            assert np.array_equal(store.data[group.offsets], small_table[group.keys])

    def test_dedicated_cores_positive(self, extractor):
        plan = extractor.plan(0, np.arange(1000))
        for group in plan.groups:
            assert group.dedicated_cores >= 1

    def test_local_gets_all_cores(self, extractor, platform_a):
        plan = extractor.plan(0, np.arange(1000))
        assert plan.local_group.dedicated_cores == platform_a.gpu.num_cores

    def test_demand_volumes(self, extractor):
        keys = np.arange(100)
        plan = extractor.plan(0, keys)
        demand = plan.demand(entry_bytes=32)
        assert demand.total_bytes == 100 * 32


class TestExecute:
    def test_values_exact(self, extractor, small_table, rng):
        keys = rng.integers(0, N, size=500)
        plan = extractor.plan(1, keys)
        values, demand = extractor.execute(plan)
        assert np.array_equal(values, small_table[keys])
        assert demand.total_bytes == 500 * extractor._cache.entry_bytes

    def test_extract_all_gpus(self, extractor, small_table, rng):
        keys = [rng.integers(0, N, size=200) for _ in range(4)]
        values, report = extractor.extract(keys)
        for v, k in zip(values, keys):
            assert np.array_equal(v, small_table[k])
        assert report.time > 0

    def test_price_matches_extract_time(self, extractor, rng):
        keys = [rng.integers(0, N, size=200) for _ in range(4)]
        _, report = extractor.extract(keys)
        solo = extractor.price(0, keys[0])
        assert solo.time <= report.time + 1e-9


class TestPaddingAblation:
    def test_padding_no_slower(self, extractor, rng):
        keys = [rng.integers(0, N, size=400) for _ in range(4)]
        _, padded = extractor.extract(keys, local_padding=True)
        _, serial = extractor.extract(keys, local_padding=False)
        assert padded.time <= serial.time + 1e-12


class TestReplicationPlans:
    def test_all_local_single_group(self, platform_a, small_table, skewed_hotness):
        placement = replication_policy(skewed_hotness, N, 4)
        cache = MultiGpuEmbeddingCache(platform_a, small_table, placement)
        extractor = FactoredExtractor(cache)
        plan = extractor.plan(0, np.arange(500))
        assert len(plan.groups) == 1
        assert plan.groups[0].source == 0


class TestHostGatherApi:
    """The extractor goes through the cache's public host-gather path."""

    def test_execute_matches_cache_lookup(self, extractor, rng):
        keys = rng.integers(0, N, size=500)
        plan = extractor.plan(2, keys)
        values, _ = extractor.execute(plan)
        looked_up = extractor._cache.lookup(2, keys).values
        assert np.array_equal(values, looked_up)

    def test_host_gather_matches_table(self, extractor, small_table, rng):
        keys = rng.integers(0, N, size=64)
        assert np.array_equal(
            extractor._cache.host_gather(keys), small_table[keys]
        )

    def test_host_gather_rejects_out_of_range(self, extractor):
        with pytest.raises(KeyError):
            extractor._cache.host_gather(np.array([N + 1]))
        with pytest.raises(KeyError):
            extractor._cache.host_gather(np.array([-1]))


class TestDedicationMismatch:
    """A present source missing from core_dedication is loud, not silent."""

    def test_missing_source_warns_and_counts(self, extractor, monkeypatch, caplog):
        import logging

        from repro.core import extractor as extractor_module
        from repro.obs import MetricsRegistry, use_registry

        monkeypatch.setattr(
            extractor_module, "core_dedication", lambda *a, **k: {}
        )
        reg = MetricsRegistry("t")
        with use_registry(reg), caplog.at_level(
            logging.WARNING, logger="repro.core.extractor"
        ):
            plan = extractor.plan(0, np.arange(800))
        assert reg.value("extractor.plan.dedication_missing") >= 1
        assert reg.value("extractor.plan.dedication_renormalized") >= 1
        assert any("core-dedication" in r.message for r in caplog.records)
        # The shares are re-normalized over the present sources, not the
        # old one-core floor: server-a's equal links split the SM budget
        # evenly, and the total never exceeds it.
        remote = [
            g for g in plan.nonlocal_groups if g.source != HOST
        ]
        cores = [g.dedicated_cores for g in remote]
        budget = extractor.platform.gpu.num_cores
        assert all(c >= 1 for c in cores)
        assert sum(cores) <= budget
        assert max(cores) > 1  # actually re-balanced, not floored
        assert max(cores) - min(cores) <= 1  # equal links → equal shares

    def test_covered_sources_do_not_warn(self, extractor, caplog):
        import logging

        from repro.obs import MetricsRegistry, use_registry

        reg = MetricsRegistry("t")
        with use_registry(reg), caplog.at_level(
            logging.WARNING, logger="repro.core.extractor"
        ):
            extractor.plan(0, np.arange(800))
        assert reg.value("extractor.plan.dedication_missing") is None
        assert not caplog.records
