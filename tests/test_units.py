"""Unit conversion helpers."""

import pytest

from repro.utils import units


def test_gb_is_decimal():
    assert units.GB == 1_000_000_000


def test_gib_is_binary():
    assert units.GIB == 1024**3


def test_gbps_converts_to_bytes_per_second():
    assert units.gbps(25) == 25e9


def test_gb_roundtrip():
    assert units.bytes_to_gb(units.gb_to_bytes(3.5)) == pytest.approx(3.5)


def test_gib_roundtrip():
    assert units.bytes_to_gib(units.gib_to_bytes(16)) == pytest.approx(16)


def test_seconds_to_ms():
    assert units.seconds_to_ms(0.0215) == pytest.approx(21.5)


def test_seconds_to_us():
    assert units.seconds_to_us(3e-6) == pytest.approx(3.0)


def test_ms_to_seconds_roundtrip():
    assert units.seconds_to_ms(units.ms_to_seconds(7.5)) == pytest.approx(7.5)


def test_gb_vs_gib_differ():
    assert units.gb_to_bytes(1) < units.gib_to_bytes(1)
