"""The cluster front-end: fan-out, gather, failover, graceful degradation.

:class:`ClusterFrontend` is the request router above the node tier.  One
request's keys are resolved to their owner nodes (consistent-hash ring or
solver-driven :class:`~repro.cluster.placement.NodePlacement` — both
expose the same ``owners_for`` surface), fanned out as one RPC exchange
per node, and gathered; the request's latency is the slowest leg, exactly
like a source group inside a single box.

Degradation ladder, per node-group:

1. **primary exchange** — timeout + seeded-jitter retries + a hedged
   duplicate to the next replica (:func:`~repro.sim.event_sim.simulate_rpc_exchange`);
2. **replica failover** — if the exchange dies, the first surviving
   replica owner serves the group (counted as a failover);
3. **host fallback** — with no surviving replica owner, *any* reachable
   node serves the group from its full host table (every node is a
   parameter server for the whole keyspace — slower, never wrong);
4. **partial response** — only when no node is reachable at all do the
   group's keys come back unserved.

Per-node :class:`~repro.serve.breaker.CircuitBreaker`\\ s (the same board
the single-box runtime uses per-source, keyed by node id) eject nodes
that keep failing, so repeated timeouts stop burning deadline budget on a
corpse; half-open probes re-admit a healed node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import CacheNode
from repro.cluster.placement import (
    NodePlacement,
    analyze_node_loss,
    solve_node_placement,
)
from repro.cluster.ring import HashRing
from repro.cluster.rpc import RpcConfig, attempt_profile
from repro.faults.spec import HEALTHY, HealthView
from repro.obs import get_registry, stage_timer
from repro.serve.breaker import BreakerBoard, BreakerConfig
from repro.sim.event_sim import simulate_rpc_exchange
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng

logger = get_logger("cluster.frontend")

__all__ = ["ClusterConfig", "ClusterFrontend", "ClusterResponse"]


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the cluster tier."""

    nodes: int = 3
    replication: int = 2
    #: ``"ring"`` (consistent hashing) or ``"solver"`` (hotness-balanced
    #: node placement above the per-GPU MILP).
    placement: str = "ring"
    vnodes_per_node: int = 64
    #: solver placement only: hottest head replicated on every node.
    wide_replicate_frac: float = 0.01
    rpc: RpcConfig = field(default_factory=RpcConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if not 1 <= self.replication <= self.nodes:
            raise ValueError(
                f"replication must be in [1, {self.nodes}], "
                f"got {self.replication}"
            )
        if self.placement not in ("ring", "solver"):
            raise ValueError(
                f"placement must be 'ring' or 'solver', got {self.placement!r}"
            )


@dataclass
class ClusterResponse:
    """What one fanned-out request came back with."""

    elapsed: float = 0.0
    requested: int = 0
    served: int = 0
    #: keys served by a non-primary owner (failover or hedge win).
    replica_keys: int = 0
    #: keys served from a non-owner's host table (no surviving replica).
    host_fallback_keys: int = 0
    #: node-groups rerouted to a replica after their exchange failed.
    failovers: int = 0
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    #: gathered values (``execute=True`` only); unserved rows are zero.
    values: np.ndarray | None = None
    #: positions within the request that nobody could serve.
    failed_positions: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def partial(self) -> bool:
        return self.served < self.requested

    @property
    def ok(self) -> bool:
        return self.served == self.requested


class ClusterFrontend:
    """Routes requests across :class:`CacheNode`\\ s with replicated failover."""

    def __init__(
        self,
        nodes: list[CacheNode],
        config: ClusterConfig,
        baseline_service: float,
        hotness: np.ndarray | None = None,
        placement: "HashRing | NodePlacement | None" = None,
    ) -> None:
        if len(nodes) != config.nodes:
            raise ValueError(f"need {config.nodes} nodes, got {len(nodes)}")
        self.nodes = {n.node_id: n for n in nodes}
        self.config = config
        self.s0 = float(baseline_service)
        self.placement: HashRing | NodePlacement = (
            placement
            if placement is not None
            else self.build_placement(config, hotness)
        )
        self.breakers = BreakerBoard(
            sources=sorted(self.nodes), config=config.breaker
        )
        self._rng = make_rng(config.seed + 101)
        #: optional :class:`~repro.repair.watchdog.NodeWatchdog`: when
        #: set, RECOVERING nodes take reads only for keys their staged
        #: recovery has already re-staged; the rest keep going to
        #: replica owners until the refill catches up.
        self.watchdog = None

    @staticmethod
    def build_placement(
        config: ClusterConfig, hotness: np.ndarray | None = None
    ) -> "HashRing | NodePlacement":
        """The owner table for ``config``: ring or solver-driven."""
        if config.placement == "solver":
            if hotness is None:
                raise ValueError("solver placement needs the hotness profile")
            return solve_node_placement(
                hotness,
                config.nodes,
                config.replication,
                wide_replicate_frac=config.wide_replicate_frac,
            )
        return HashRing(
            config.nodes,
            config.replication,
            vnodes_per_node=config.vnodes_per_node,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _exchange(
        self,
        node_id: int,
        keys: np.ndarray,
        health: HealthView,
        hedge_node: int | None,
    ):
        """Run one node-group's RPC exchange; returns the sim result."""
        cfg = self.config.rpc
        node = self.nodes[node_id]
        payload = len(keys) * node.cache.entry_bytes
        service = node.service_seconds(keys)
        # Timeout/hedge scale from this group's fault-free leg, so they
        # stay meaningful whether the wire or the extraction dominates.
        leg = cfg.healthy_leg(service, payload)
        timeout = cfg.timeout_seconds(leg)
        profile = attempt_profile(
            node_id, service, cfg.network, health, payload
        )
        attempts = [profile] * cfg.retry.max_attempts
        delays = list(cfg.retry.delays(self._rng))
        hedge_time = None
        if hedge_node is not None and health.node_reachable(hedge_node):
            replica = self.nodes[hedge_node]
            h_elapsed, h_ok = attempt_profile(
                hedge_node,
                replica.service_seconds(keys),
                cfg.network,
                health,
                payload,
            )
            if h_ok and h_elapsed < timeout:
                hedge_time = h_elapsed
        return simulate_rpc_exchange(
            attempts,
            timeout=timeout,
            retry_delays=delays,
            hedge_time=hedge_time,
            hedge_issue_at=cfg.hedge_issue_at(leg),
        )

    def serve(
        self,
        keys: np.ndarray,
        now: float,
        health: HealthView = HEALTHY,
        execute: bool = False,
    ) -> ClusterResponse:
        """Fan one request out, gather partial responses, degrade gracefully."""
        reg = get_registry()
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        resp = ClusterResponse(requested=len(keys))
        if execute:
            any_node = next(iter(self.nodes.values()))
            resp.values = np.zeros(
                (len(keys), any_node.cache.dim),
                dtype=any_node.cache.host_table.dtype,
            )
        with stage_timer("fanout"):
            owners = self.placement.owners_for(keys)  # (n, R)
            excluded = self.breakers.excluded_sources(now)
            # Route each key at its first non-ejected owner (primary bias).
            chosen = owners[:, 0].copy()
            if excluded:
                undecided = np.isin(chosen, list(excluded))
                for r in range(1, owners.shape[1]):
                    if not undecided.any():
                        break
                    candidate = owners[undecided, r]
                    usable = ~np.isin(candidate, list(excluded))
                    idx = np.flatnonzero(undecided)[usable]
                    chosen[idx] = owners[idx, r]
                    undecided[idx] = False
                # every owner ejected: probe the primary anyway — the
                # breaker board's half-open metering decides admission.
            if self.watchdog is not None:
                # A recovering node takes reads only for shards its
                # staged refill has already re-staged; un-restaged keys
                # keep flowing to replica owners.
                for node_id, rec in self.watchdog.active_recoveries():
                    mask = chosen == node_id
                    if not mask.any():
                        continue
                    pending = ~rec.restaged_keys(keys[mask])
                    if not pending.any():
                        continue
                    idx = np.flatnonzero(mask)[pending]
                    for r in range(1, owners.shape[1]):
                        if idx.size == 0:
                            break
                        candidate = owners[idx, r]
                        usable = (candidate != node_id) & ~np.isin(
                            candidate, list(excluded)
                        )
                        chosen[idx[usable]] = candidate[usable]
                        idx = idx[~usable]
                    # Keys with no other owner stay put: the recovering
                    # node serves them from its host table — slower,
                    # still bit-exact.
                    rerouted = int(pending.sum()) - len(idx)
                    if rerouted:
                        reg.counter("repair.watchdog.rerouted_keys").inc(
                            rerouted
                        )
            group_elapsed: list[float] = []
            for node_id in (int(x) for x in np.unique(chosen)):
                positions = np.flatnonzero(chosen == node_id)
                gkeys = keys[positions]
                rows = owners[positions]
                # Hedge target: the modal next replica across the group.
                hedge_node = None
                alt = rows[:, 1:] if rows.shape[1] > 1 else None
                if alt is not None:
                    others = alt[alt != node_id]
                    if others.size:
                        vals, counts = np.unique(others, return_counts=True)
                        hedge_node = int(vals[np.argmax(counts)])
                result = self._exchange(node_id, gkeys, health, hedge_node)
                resp.rpc_retries += max(0, result.attempts - 1)
                resp.rpc_timeouts += result.timeouts
                if result.hedged:
                    resp.hedges += 1
                primary_ok = result.ok and result.winner == "primary"
                self.breakers.record(node_id, primary_ok, now)
                elapsed = result.total_time
                served_by: int | None = None
                if result.ok:
                    served_by = node_id
                    if result.hedge_won:
                        resp.hedge_wins += 1
                        served_by = hedge_node
                else:
                    # Replica failover: first surviving owner column.
                    for r in range(1, rows.shape[1]):
                        candidate = int(rows[0, r])
                        if candidate == node_id:
                            continue
                        if not health.node_reachable(candidate):
                            continue
                        f_elapsed, f_ok = attempt_profile(
                            candidate,
                            self.nodes[candidate].service_seconds(gkeys),
                            self.config.rpc.network,
                            health,
                            len(gkeys) * self.nodes[candidate].cache.entry_bytes,
                        )
                        if f_ok:
                            served_by = candidate
                            elapsed += f_elapsed
                            resp.failovers += 1
                            break
                    if served_by is None:
                        # Host fallback: any reachable node's DRAM covers
                        # the whole keyspace.
                        for candidate in sorted(self.nodes):
                            if candidate == node_id:
                                continue
                            if not health.node_reachable(candidate):
                                continue
                            f_elapsed, f_ok = attempt_profile(
                                candidate,
                                self.nodes[candidate].service_seconds(gkeys),
                                self.config.rpc.network,
                                health,
                                len(gkeys)
                                * self.nodes[candidate].cache.entry_bytes,
                            )
                            if f_ok:
                                served_by = candidate
                                elapsed += f_elapsed
                                resp.failovers += 1
                                break
                group_elapsed.append(elapsed)
                if served_by is None:
                    resp.failed_positions = np.concatenate(
                        [resp.failed_positions, positions]
                    )
                    continue
                # Positional accounting: a key read from a non-primary
                # owner is a replica read (breaker reroute, hedge win, or
                # failover alike); one read from a non-owner came off a
                # host table.
                owner_hit = (rows == served_by).any(axis=1)
                resp.replica_keys += int(
                    (owner_hit & (rows[:, 0] != served_by)).sum()
                )
                resp.host_fallback_keys += int((~owner_hit).sum())
                resp.served += len(gkeys)
                if execute:
                    values, _svc = self.nodes[served_by].serve(gkeys)
                    resp.values[positions] = values
                reg.counter("cluster.node.requests", node=served_by).inc()
                reg.counter("cluster.node.keys", node=served_by).inc(len(gkeys))
            # Fan-out is concurrent: the request lands with its slowest leg.
            resp.elapsed = max(group_elapsed, default=0.0)
        reg.counter("cluster.requests").inc()
        reg.counter("cluster.failovers").inc(resp.failovers)
        reg.counter("cluster.replica_read_keys").inc(resp.replica_keys)
        reg.counter("cluster.host_fallback_keys").inc(resp.host_fallback_keys)
        reg.counter("cluster.rpc.retries").inc(resp.rpc_retries)
        reg.counter("cluster.rpc.timeouts").inc(resp.rpc_timeouts)
        if resp.partial:
            reg.counter("cluster.partial_responses").inc()
        return resp

    # ------------------------------------------------------------------
    # What-if analysis
    # ------------------------------------------------------------------
    def what_if_node_loss(self, num_entries: int) -> list[dict]:
        """Per-node loss impact: moved primaries, replica cover, new shares."""
        return analyze_node_loss(self.placement, sorted(self.nodes), num_entries)

    def verify_integrity(self) -> list[str]:
        """Every node's cache reconciliation, concatenated."""
        violations: list[str] = []
        for node_id in sorted(self.nodes):
            for v in self.nodes[node_id].verify_integrity():
                violations.append(f"node {node_id}: {v}")
        return violations
