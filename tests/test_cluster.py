"""Cluster tier: ring, placement, RPC model, front-end, node-kill soak.

Run with ``pytest -m cluster``.  The suite covers the keyspace
partitioners (consistent-hash ring and solver-driven placement), the
deterministic RPC exchange walker, the sharded per-GPU solve, the
front-end's degradation ladder (hedge → replica failover → host fallback
→ partial response), the what-if node-loss analysis, and the acceptance
gate itself: a 3-node ``node-kill`` soak that must keep ≥ 70 % of steady
goodput through the failover window with a bit-exact table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    CacheNode,
    ClusterConfig,
    ClusterFrontend,
    FAILOVER_GOODPUT_FLOOR,
    HashRing,
    RpcConfig,
    analyze_node_loss,
    attempt_profile,
    hash_keys,
    solve_node_placement,
)
from repro.core.pipeline import NetworkTier, price_node_read
from repro.faults.spec import HEALTHY, HealthView
from repro.hardware.platform import HOST, server_a
from repro.sim.mechanisms import GpuDemand
from repro.serve.soak import SoakConfig, run_soak
from repro.sim.event_sim import simulate_rpc_exchange
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.cluster

N_ENTRIES = 2_000
BATCH = 256


# ----------------------------------------------------------------------
# Keyspace partitioning
# ----------------------------------------------------------------------
def test_hash_keys_is_deterministic_and_seed_sensitive():
    keys = np.arange(64, dtype=np.int64)
    a = hash_keys(keys, seed=7)
    b = hash_keys(keys, seed=7)
    c = hash_keys(keys, seed=8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_ring_owners_are_distinct_replicas():
    ring = HashRing(4, replication=3, seed=0)
    owners = ring.owners_for(np.arange(N_ENTRIES, dtype=np.int64))
    assert owners.shape == (N_ENTRIES, 3)
    for row in owners:
        assert len(set(row.tolist())) == 3


def test_ring_balances_the_keyspace():
    ring = HashRing(4, replication=2, seed=0)
    shares = ring.share_of(N_ENTRIES)
    assert pytest.approx(sum(shares.values()), abs=1e-9) == 1.0
    # vnodes keep every node within a loose band around 1/4.
    for share in shares.values():
        assert 0.10 < share < 0.45


def test_ring_removal_moves_only_the_dead_nodes_keys():
    ring = HashRing(4, replication=2, seed=0)
    smaller = ring.without(2)
    keys = np.arange(N_ENTRIES, dtype=np.int64)
    before = ring.primary_for(keys)
    after = smaller.primary_for(keys)
    moved = before != after
    # Consistent hashing: only keys whose primary died may move.
    assert np.array_equal(np.unique(before[moved]), np.array([2]))
    assert not (after == 2).any()


def test_solver_placement_balances_load_not_key_count():
    pmf = zipf_pmf(N_ENTRIES, 1.1)
    hotness = pmf * 1e6
    placement = solve_node_placement(hotness, 4, replication=2)
    primary = placement.owners[:, 0]
    loads = [float(hotness[primary == n].sum()) for n in range(4)]
    total = sum(loads)
    for load in loads:
        assert 0.15 < load / total < 0.35
    # Every key's replicas are distinct nodes.
    for row in placement.owners:
        assert len(set(row.tolist())) == placement.replication


def test_solver_placement_wide_head_is_everywhere():
    pmf = zipf_pmf(N_ENTRIES, 1.2)
    hotness = pmf * 1e6
    placement = solve_node_placement(
        hotness, 3, replication=2, wide_replicate_frac=0.01
    )
    head = np.argsort(-hotness)[: int(round(0.01 * N_ENTRIES))]
    for node in range(3):
        mask = placement.member_mask(node)
        assert mask[head].all(), f"hot head missing from node {node}"


# ----------------------------------------------------------------------
# RPC model
# ----------------------------------------------------------------------
def test_rpc_exchange_primary_success_is_one_attempt():
    r = simulate_rpc_exchange([(1.0, True)], timeout=8.0)
    assert r.ok and r.winner == "primary"
    assert r.attempts == 1 and r.timeouts == 0 and not r.hedged
    assert r.total_time == 1.0


def test_rpc_exchange_timeout_burns_the_full_timeout():
    r = simulate_rpc_exchange(
        [(np.inf, False), (np.inf, False)], timeout=8.0, retry_delays=[0.5]
    )
    assert not r.ok and r.winner == "none"
    assert r.timeouts == 2
    assert r.total_time == pytest.approx(8.0 + 0.5 + 8.0)


def test_rpc_exchange_hedge_rescues_a_dead_primary():
    r = simulate_rpc_exchange(
        [(np.inf, False), (np.inf, False)],
        timeout=8.0,
        hedge_time=1.0,
        hedge_issue_at=3.0,
    )
    assert r.ok and r.winner == "hedge" and r.hedged
    assert r.total_time == pytest.approx(4.0)


def test_rpc_exchange_fast_primary_never_hedges():
    r = simulate_rpc_exchange(
        [(1.0, True)], timeout=8.0, hedge_time=1.0, hedge_issue_at=3.0
    )
    assert r.winner == "primary" and not r.hedged


def test_attempt_profile_health_cases():
    net = NetworkTier(latency_seconds=1e-3, bandwidth_bytes=1e9)
    up = attempt_profile(0, 1e-3, net, HEALTHY, payload_bytes=1e6)
    assert up[1] and up[0] == pytest.approx(1e-3 + 1e-3 + (1e-3 + 1e-3))
    down = attempt_profile(
        0, 1e-3, net, HealthView(down_nodes=frozenset({0})), 1e6
    )
    assert not down[1] and np.isinf(down[0])
    part = attempt_profile(
        0, 1e-3, net, HealthView(partitioned_nodes=frozenset({0})), 1e6
    )
    assert not part[1] and part[0] == pytest.approx(net.latency_seconds)
    slow = attempt_profile(
        0, 1e-3, net, HealthView(node_factors=((0, 0.5),)), 1e6
    )
    assert slow[1] and slow[0] > up[0]


def test_network_tier_prices_the_wire():
    net = NetworkTier(latency_seconds=1e-3, bandwidth_bytes=1e9)
    assert net.transfer_seconds(0) == pytest.approx(1e-3)
    assert net.transfer_seconds(1e9) == pytest.approx(1.001)
    demand = GpuDemand(dst=0, volumes={0: 4096.0, HOST: 8192.0})
    price = price_node_read(server_a(), demand, net)
    assert price.total_seconds == pytest.approx(
        price.extraction_seconds + price.transfer_seconds
    )
    assert price.extraction_seconds > 0 and price.transfer_seconds > 0
    # A slow node stretches extraction, never the wire.
    slow = price_node_read(server_a(), demand, net, service_factor=0.5)
    assert slow.extraction_seconds == pytest.approx(2 * price.extraction_seconds)
    assert slow.transfer_seconds == pytest.approx(price.transfer_seconds)


# ----------------------------------------------------------------------
# Front-end degradation ladder
# ----------------------------------------------------------------------
def _mini_cluster(replication: int = 2, nodes: int = 3, seed: int = 0):
    platform = server_a()
    rng = make_rng(seed)
    table = rng.standard_normal((N_ENTRIES, 8)).astype(np.float32)
    pmf = zipf_pmf(N_ENTRIES, 1.1)
    hotness = pmf * BATCH * platform.num_gpus
    cfg = ClusterConfig(nodes=nodes, replication=replication, seed=seed)
    placement = ClusterFrontend.build_placement(cfg, hotness)
    owners = placement.owners_for(np.arange(N_ENTRIES, dtype=np.int64))
    cache_nodes = [
        CacheNode(
            node_id=i,
            platform=platform,
            table=table,
            hotness=hotness,
            member_mask=(owners == i).any(axis=1),
            capacity_entries=N_ENTRIES // 8,
        )
        for i in range(nodes)
    ]
    s0 = cache_nodes[0].service_seconds(np.arange(BATCH, dtype=np.int64))
    cache_nodes[0]._next_gpu = 0
    frontend = ClusterFrontend(
        cache_nodes, cfg, baseline_service=s0,
        hotness=hotness, placement=placement,
    )
    keys = make_rng(seed + 1).choice(N_ENTRIES, size=BATCH, p=pmf)
    return frontend, table, keys.astype(np.int64)


def test_frontend_steady_serves_everything_from_primaries():
    frontend, table, keys = _mini_cluster()
    resp = frontend.serve(keys, now=0.0, execute=True)
    assert resp.ok and not resp.partial
    assert resp.replica_keys == 0 and resp.host_fallback_keys == 0
    assert resp.failovers == 0 and resp.rpc_timeouts == 0
    assert np.array_equal(resp.values, table[keys])


def test_frontend_survives_a_dead_node_bit_exactly():
    frontend, table, keys = _mini_cluster()
    health = HealthView(down_nodes=frozenset({1}))
    resp = frontend.serve(keys, now=0.0, health=health, execute=True)
    assert resp.ok, "replication 2 must cover a single node loss"
    assert resp.replica_keys + resp.host_fallback_keys > 0
    assert np.array_equal(resp.values, table[keys])


def test_frontend_unreplicated_dead_node_uses_host_fallback():
    frontend, table, keys = _mini_cluster(replication=1)
    health = HealthView(down_nodes=frozenset({1}))
    resp = frontend.serve(keys, now=0.0, health=health, execute=True)
    # R=1 leaves no replica owner, but every node's DRAM holds the full
    # table, so the group still lands — just slower and off-owner.
    assert resp.ok
    assert resp.host_fallback_keys > 0
    assert np.array_equal(resp.values, table[keys])


def test_frontend_partial_response_when_every_node_is_dead():
    frontend, _table, keys = _mini_cluster()
    health = HealthView(down_nodes=frozenset({0, 1, 2}))
    resp = frontend.serve(keys, now=0.0, health=health, execute=True)
    assert resp.partial and not resp.ok
    assert resp.served == 0
    assert len(resp.failed_positions) == len(keys)


def test_frontend_breaker_ejects_a_repeat_offender():
    frontend, table, keys = _mini_cluster()
    health = HealthView(down_nodes=frozenset({1}))
    trips = frontend.config.breaker.failure_threshold
    for i in range(trips):
        frontend.serve(keys, now=float(i), health=health, execute=False)
    assert 1 in frontend.breakers.excluded_sources(float(trips))
    # With node 1 ejected, routing avoids it up front: no timeouts burned.
    resp = frontend.serve(keys, now=float(trips), health=health, execute=True)
    assert resp.ok and resp.rpc_timeouts == 0
    assert np.array_equal(resp.values, table[keys])


def test_what_if_node_loss_full_cover_at_r2():
    frontend, _table, _keys = _mini_cluster(replication=2)
    rows = frontend.what_if_node_loss(N_ENTRIES)
    assert [r["node"] for r in rows] == [0, 1, 2]
    for r in rows:
        assert r["replica_covered"] == pytest.approx(1.0)
        assert r["uncovered_keys"] == 0
        assert r["post_loss_max_share"] < 1.0


def test_what_if_node_loss_unreplicated_keys_are_uncovered():
    frontend, _table, _keys = _mini_cluster(replication=1)
    rows = frontend.what_if_node_loss(N_ENTRIES)
    assert any(r["uncovered_keys"] > 0 for r in rows)
    # Module-level helper works straight off a placement too.
    ring = HashRing(3, replication=1, seed=0)
    assert analyze_node_loss(ring, range(3), N_ENTRIES) == rows


def test_sharded_nodes_cache_only_their_members():
    frontend, _table, _keys = _mini_cluster()
    owners = frontend.placement.owners_for(np.arange(N_ENTRIES, dtype=np.int64))
    for node_id, node in frontend.nodes.items():
        member = (owners == node_id).any(axis=1)
        cached = np.concatenate(
            [np.asarray(ids) for ids in node.cache.placement.per_gpu]
        )
        assert member[cached.astype(np.int64)].all(), (
            f"node {node_id} cached a key outside its shard"
        )
        assert node.verify_integrity() == []


def test_rpc_config_scales_from_the_whole_leg():
    rpc = RpcConfig()
    wire_bound = rpc.healthy_leg(0.0, 0.0)
    assert wire_bound >= rpc.network.latency_seconds * 2
    # The timeout must exceed one healthy exchange even when extraction
    # is negligible — otherwise every call on a tiny table "times out".
    assert rpc.timeout_seconds(wire_bound) > wire_bound


# ----------------------------------------------------------------------
# The acceptance gate: node-kill soak
# ----------------------------------------------------------------------
def test_node_kill_soak_keeps_goodput_through_failover():
    cfg = SoakConfig.quick(seed=0, scenario="node-kill", nodes=3, replication=2)
    report = run_soak(cfg)
    assert report.ok
    assert report.nodes == 3 and report.replication == 2
    assert report.failover_goodput_ratio >= FAILOVER_GOODPUT_FLOOR
    assert report.integrity_failures == 0
    assert report.rebalance_bytes > 0, "a healed node must re-stage its shard"
    assert report.rpc_timeouts > 0, "the kill window must actually bite"
    assert report.hedges > 0 and report.hedge_wins > 0
    assert set(report.node_requests) == {"0", "1", "2"}
    # The dead node lost traffic to its replicas.
    assert report.node_requests["1"] < report.node_requests["0"]
    doc = report.to_dict()
    assert doc["schema"] == "repro.soak/v1"
    assert doc["failover_goodput_ratio"] >= FAILOVER_GOODPUT_FLOOR


def test_cluster_soak_config_validation():
    with pytest.raises(ValueError, match="nodes"):
        SoakConfig.quick(scenario="node-kill", nodes=1, replication=1)
    with pytest.raises(ValueError, match="replication"):
        SoakConfig.quick(scenario="node-kill", nodes=2, replication=3)
    with pytest.raises(ValueError, match="scenario"):
        SoakConfig.quick(
            scenario="dgx_a100_partial_failure", nodes=3, replication=2
        )
