"""Microbenchmark: keys/sec through the key-resolution hot path.

Measures the vectorized :class:`~repro.core.location_table.LocationTable`
batch operations against an equivalent scalar probe loop, plus the
extraction pipeline's resolve and plan stages end-to-end, and writes the
``BENCH_hotpath.json`` artifact (per batch size: keys/sec per operation
and the pipeline's per-stage wall-clock breakdown).

Gate: the vectorized ``lookup_batch`` must be at least 10× the scalar
baseline at batch sizes ≥ 4096 — the speedup the vectorization refactor
exists to deliver.  The ``perf-smoke`` CI job runs exactly this file
(``pytest benchmarks/bench_micro_hotpath.py -m perf``).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.location_table import LocationTable
from repro.core.policy import partition_policy
from repro.hardware import server_c
from repro.obs import PIPELINE_STAGES, MetricsRegistry, use_registry
from repro.utils.stats import zipf_pmf

ARTIFACT = pathlib.Path(__file__).parents[1] / "BENCH_hotpath.json"

TABLE_ENTRIES = 100_000
BATCH_SIZES = (256, 1024, 4096, 16384)
MIN_SPEEDUP_AT_4096 = 10.0
# The generalized tier code on a one-tier chain may cost at most this
# much resolve+price throughput versus the pre-tier baseline path.
MAX_TIER_REGRESSION = 0.10


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall time — robust to scheduler noise in CI."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scalar_lookup(table: LocationTable, keys: np.ndarray) -> None:
    # The pre-vectorization hot path: one probe chain per Python call.
    for key in keys:
        table.get(int(key))


def _bench_location_table(rng) -> list[dict]:
    all_keys = rng.permutation(TABLE_ENTRIES).astype(np.int64)
    sources = rng.integers(0, 8, size=TABLE_ENTRIES)
    offsets = rng.integers(0, TABLE_ENTRIES, size=TABLE_ENTRIES)
    table = LocationTable(expected_entries=TABLE_ENTRIES, num_sources=8)
    table.insert_batch(all_keys, sources, offsets)

    rows = []
    for batch in BATCH_SIZES:
        keys = rng.integers(0, TABLE_ENTRIES, size=batch)
        vec = _best_of(lambda: table.lookup_batch(keys))
        scalar = _best_of(lambda: _scalar_lookup(table, keys), repeats=2)
        fresh = LocationTable(expected_entries=batch, num_sources=8)
        ins = _best_of(
            lambda: fresh.insert_batch(keys, sources[:batch], offsets[:batch]),
            repeats=2,
        )
        rows.append(
            {
                "batch_size": batch,
                "lookup_batch_keys_per_sec": batch / vec,
                "scalar_lookup_keys_per_sec": batch / scalar,
                "lookup_speedup": scalar / vec,
                "insert_batch_keys_per_sec": batch / ins,
            }
        )
    return rows


def _bench_pipeline(rng) -> list[dict]:
    from repro.core.pipeline import plan_extraction, resolve

    platform = server_c()
    table = rng.standard_normal((TABLE_ENTRIES, 16)).astype(np.float32)
    hotness = zipf_pmf(TABLE_ENTRIES, 1.2) * 1000.0
    placement = partition_policy(
        hotness, TABLE_ENTRIES // 10, platform.num_gpus
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    extractor = FactoredExtractor(cache)

    rows = []
    for batch in BATCH_SIZES:
        keys = rng.integers(0, TABLE_ENTRIES, size=batch)
        t_resolve = _best_of(lambda: resolve(cache, 0, keys))
        registry = MetricsRegistry("hotpath")
        with use_registry(registry):
            t_plan = _best_of(lambda: plan_extraction(cache, 0, keys))
            extractor.plan(0, keys)  # the facade adds the legacy timers
        metrics = registry.snapshot()["metrics"]
        stage_seconds = {
            stage: sum(
                m["sum"]
                for m in metrics
                if m["name"] == f"pipeline.{stage}.seconds"
            )
            for stage in PIPELINE_STAGES
        }
        rows.append(
            {
                "batch_size": batch,
                "resolve_keys_per_sec": batch / t_resolve,
                "plan_keys_per_sec": batch / t_plan,
                "stage_seconds": stage_seconds,
            }
        )
    return rows


def _bench_tier_pricing(rng) -> list[dict]:
    """Resolve + price one batch 4096 across 1/2/3-deep backing chains.

    The ``baseline`` row is the pre-tier platform (no explicit chain) —
    byte-identical to the seed's hot path, as the golden fixtures pin.
    The 1-tier row runs the *generalized* code on an explicit one-tier
    chain and must stay within ``MAX_TIER_REGRESSION`` of that baseline:
    the refactor may not tax single-tier users.  Deeper chains pay only
    O(#tiers) bookkeeping, never O(keys).
    """
    from repro.core.pipeline import plan_extraction, price_demand
    from repro.hardware.platform import (
        cxl_tier,
        dram_tier,
        ssd_tier,
        with_tiers,
    )

    base = server_c()
    dim = 16
    entry_bytes = dim * 4
    table = rng.standard_normal((TABLE_ENTRIES, dim)).astype(np.float32)
    hotness = zipf_pmf(TABLE_ENTRIES, 1.2) * 1000.0
    placement = partition_policy(hotness, TABLE_ENTRIES // 10, base.num_gpus)
    total = TABLE_ENTRIES * entry_bytes
    chains = [
        ("baseline", None),
        ("dram", (dram_tier(total, base.pcie_bandwidth),)),
        ("dram+ssd", (dram_tier(total // 2, base.pcie_bandwidth), ssd_tier(total))),
        (
            "dram+cxl+ssd",
            (
                dram_tier(total // 4, base.pcie_bandwidth),
                cxl_tier(total // 2),
                ssd_tier(total),
            ),
        ),
    ]
    batch = 4096
    keys = rng.integers(0, TABLE_ENTRIES, size=batch)
    rows = []
    for label, tiers in chains:
        platform = base if tiers is None else with_tiers(base, tiers)
        cache = MultiGpuEmbeddingCache(
            platform,
            table,
            placement,
            tier_hotness=hotness if platform.num_tiers > 1 else None,
        )

        def resolve_and_price():
            plan = plan_extraction(cache, 0, keys)
            return price_demand(platform, plan.demand(cache.entry_bytes))

        report = resolve_and_price()
        elapsed = _best_of(resolve_and_price)
        rows.append(
            {
                "chain": label,
                "num_tiers": platform.num_tiers,
                "batch_size": batch,
                "resolve_price_keys_per_sec": batch / elapsed,
                "est_batch_seconds": float(report.time),
            }
        )
    return rows


@pytest.mark.perf
def bench_micro_hotpath():
    rng = np.random.default_rng(0)
    location_rows = _bench_location_table(rng)
    pipeline_rows = _bench_pipeline(rng)
    tier_rows = _bench_tier_pricing(rng)
    doc = {
        "table_entries": TABLE_ENTRIES,
        "min_speedup_at_4096": MIN_SPEEDUP_AT_4096,
        "max_tier_regression": MAX_TIER_REGRESSION,
        "location_table": location_rows,
        "pipeline": pipeline_rows,
        "tier_pricing": tier_rows,
    }
    ARTIFACT.write_text(json.dumps(doc, indent=1) + "\n")
    for row in location_rows:
        print(
            f"batch {row['batch_size']:>6}: lookup_batch "
            f"{row['lookup_batch_keys_per_sec'] / 1e6:.1f} M keys/s, "
            f"scalar {row['scalar_lookup_keys_per_sec'] / 1e3:.1f} K keys/s "
            f"({row['lookup_speedup']:.0f}x)"
        )
    for row in location_rows:
        if row["batch_size"] >= 4096:
            assert row["lookup_speedup"] >= MIN_SPEEDUP_AT_4096, (
                f"vectorized lookup_batch only {row['lookup_speedup']:.1f}x "
                f"scalar at batch {row['batch_size']}"
            )
    for row in pipeline_rows:
        assert row["resolve_keys_per_sec"] > row["plan_keys_per_sec"] > 0
    for row in tier_rows:
        print(
            f"chain {row['chain']:>12} ({row['num_tiers']} tier"
            f"{'s' if row['num_tiers'] > 1 else ''}): resolve+price "
            f"{row['resolve_price_keys_per_sec'] / 1e6:.2f} M keys/s, "
            f"est batch {row['est_batch_seconds'] * 1e6:.1f} us"
        )
        assert row["resolve_price_keys_per_sec"] > 0
        assert row["est_batch_seconds"] > 0
    by_chain = {row["chain"]: row for row in tier_rows}
    baseline = by_chain["baseline"]["resolve_price_keys_per_sec"]
    single = by_chain["dram"]["resolve_price_keys_per_sec"]
    assert single >= (1.0 - MAX_TIER_REGRESSION) * baseline, (
        f"single-tier resolve+price regressed "
        f"{(1.0 - single / baseline) * 100:.1f}% vs the pre-tier baseline "
        f"(budget {MAX_TIER_REGRESSION * 100:.0f}%)"
    )
    # Deeper chains shift bytes to slower tiers: the priced batch time
    # must reflect that, not just stay flat.
    assert (
        by_chain["dram+ssd"]["est_batch_seconds"]
        > by_chain["dram"]["est_batch_seconds"]
    )
