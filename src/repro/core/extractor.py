"""Runtime factored Extractor (§5.3, Figure 8).

The Extractor turns one GPU's key batch into an *extraction plan*: keys
grouped by source location, cores dedicated per non-local group within link
tolerance, and the local group scheduled last at low priority to pad ragged
finishing times.  Executing a plan gathers the actual values (through the
cache stores) and prices it with the factored timing model, so functional
correctness and simulated performance come from one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.hardware.platform import HOST, Platform
from repro.obs import get_registry, timer
from repro.sim.engine import BatchReport, simulate_batch
from repro.sim.mechanisms import (
    GpuDemand,
    Mechanism,
    core_dedication,
    factored_extraction,
)
from repro.utils.logging import get_logger

logger = get_logger("core.extractor")


def _source_class(source: int, dst: int) -> str:
    if source == dst:
        return "local"
    if source == HOST:
        return "host"
    return "remote"


@dataclass(frozen=True)
class SourceGroup:
    """One source's share of a batch: which keys, read from where."""

    source: int
    #: positions of these keys within the original batch
    batch_positions: np.ndarray
    #: the entry ids to read
    keys: np.ndarray
    #: slot offsets on the source GPU (empty for HOST, where keys index
    #: the host table directly)
    offsets: np.ndarray
    dedicated_cores: int


@dataclass(frozen=True)
class ExtractionPlan:
    """A factored plan for one GPU's batch (Figure 8's grouped layout)."""

    dst: int
    batch_size: int
    #: non-local groups first (launch order), local group last (low priority)
    groups: tuple[SourceGroup, ...]

    @property
    def local_group(self) -> SourceGroup | None:
        for g in self.groups:
            if g.source == self.dst:
                return g
        return None

    @property
    def nonlocal_groups(self) -> tuple[SourceGroup, ...]:
        return tuple(g for g in self.groups if g.source != self.dst)

    def demand(self, entry_bytes: int) -> GpuDemand:
        return GpuDemand(
            dst=self.dst,
            volumes={
                g.source: float(len(g.keys) * entry_bytes) for g in self.groups
            },
        )


class FactoredExtractor:
    """Plans and executes factored extraction over a multi-GPU cache."""

    def __init__(self, cache: MultiGpuEmbeddingCache) -> None:
        self._cache = cache

    @property
    def platform(self) -> Platform:
        return self._cache.platform

    def plan(self, dst: int, keys: np.ndarray) -> ExtractionPlan:
        """Group a batch by source location and dedicate cores (§5.3)."""
        reg = get_registry()
        with timer("extractor.plan.seconds", reg):
            keys = np.ascontiguousarray(keys, dtype=np.int64)
            sources = self._cache.source_map[dst][keys]
            present = [int(s) for s in np.unique(sources)]
            dedication = core_dedication(self.platform, dst, present)
            missing = [
                s for s in present if s not in (dst, HOST) and s not in dedication
            ]
            if missing:
                # A present source the core-dedication map does not cover
                # means the topology model and the location table disagree
                # — survivable (one core is a safe floor), but never silent.
                reg.counter("extractor.plan.dedication_missing").inc(len(missing))
                logger.warning(
                    "GPU %d batch reads from source(s) %s absent from the "
                    "core-dedication map; falling back to 1 dedicated core",
                    dst, missing,
                )
            groups: list[SourceGroup] = []
            local_group: SourceGroup | None = None
            for src in present:
                positions = np.flatnonzero(sources == src)
                group_keys = keys[positions]
                if src == HOST:
                    offsets = np.empty(0, dtype=np.int64)
                else:
                    offsets = self._cache.store(src).offset_of[group_keys]
                group = SourceGroup(
                    source=src,
                    batch_positions=positions,
                    keys=group_keys,
                    offsets=offsets,
                    dedicated_cores=(
                        self.platform.gpu.num_cores
                        if src == dst
                        else dedication.get(src, 1)
                    ),
                )
                reg.counter(
                    "extractor.plan.keys", source=_source_class(src, dst)
                ).inc(len(group_keys))
                reg.histogram(
                    "extractor.plan.dedicated_cores",
                    source=_source_class(src, dst),
                ).observe(group.dedicated_cores)
                if src == dst:
                    local_group = group
                else:
                    groups.append(group)
            # Local extraction is launched last, on a low-priority stream.
            if local_group is not None:
                groups.append(local_group)
        reg.counter("extractor.plan.calls").inc()
        return ExtractionPlan(dst=dst, batch_size=len(keys), groups=tuple(groups))

    def execute(self, plan: ExtractionPlan) -> tuple[np.ndarray, GpuDemand]:
        """Gather values per the plan; returns (values, priced demand)."""
        reg = get_registry()
        entry_bytes = self._cache.entry_bytes
        with timer("extractor.execute.seconds", reg):
            values = np.empty(
                (plan.batch_size, self._cache.dim),
                dtype=self._cache.store(0).data.dtype,
            )
            for group in plan.groups:
                if group.source == HOST:
                    values[group.batch_positions] = self._cache.host_gather(
                        group.keys
                    )
                else:
                    store = self._cache.store(group.source)
                    values[group.batch_positions] = store.data[group.offsets]
                reg.counter(
                    "extractor.execute.bytes",
                    source=_source_class(group.source, plan.dst),
                ).inc(len(group.keys) * entry_bytes)
        reg.counter("extractor.execute.calls").inc()
        return values, plan.demand(entry_bytes)

    def extract(
        self, keys_per_gpu: list[np.ndarray], local_padding: bool = True
    ) -> tuple[list[np.ndarray], BatchReport]:
        """Plan, execute and price one data-parallel batch."""
        plans = [self.plan(i, keys) for i, keys in enumerate(keys_per_gpu)]
        outputs = [self.execute(p) for p in plans]
        report = simulate_batch(
            self.platform,
            [demand for _, demand in outputs],
            mechanism=Mechanism.FACTORED,
            local_padding=local_padding,
        )
        return [values for values, _ in outputs], report

    def price(self, dst: int, keys: np.ndarray, local_padding: bool = True):
        """Timing-only path for one GPU (no value gathering)."""
        plan = self.plan(dst, keys)
        return factored_extraction(
            self.platform,
            plan.demand(self._cache.entry_bytes),
            local_padding=local_padding,
        )
