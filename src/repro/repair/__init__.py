"""Self-healing subsystem: anti-entropy scrubbing, staged recovery, and
the node-lifecycle watchdog.

Three cooperating parts keep the cluster's caches true and its heals
cheap:

* :mod:`repro.repair.scrub` — find silent corruption (checksum
  cross-checks against the host ground truth), quarantine it, repair it
  from the cheapest intact replica;
* :mod:`repro.repair.restage` — refill a healed node's caches in
  hotness order under an idle-link-time budget instead of one burst;
* :mod:`repro.repair.watchdog` — fuse breakers, scrub findings, and the
  health view into one healthy → suspect → ejected → recovering →
  healthy lifecycle the frontend routes by.
"""

from repro.repair.restage import (
    RECOVERY_GOODPUT_FLOOR,
    RestageGrant,
    StagedRecovery,
)
from repro.repair.scrub import CacheScrubber, ScrubConfig, ScrubTick
from repro.repair.watchdog import (
    STATE_CODE,
    NodeState,
    NodeWatchdog,
    WatchdogConfig,
)

__all__ = [
    "CacheScrubber",
    "NodeState",
    "NodeWatchdog",
    "RECOVERY_GOODPUT_FLOOR",
    "RestageGrant",
    "STATE_CODE",
    "ScrubConfig",
    "ScrubTick",
    "StagedRecovery",
    "WatchdogConfig",
]
