"""ASCII charts and the solver/simulator agreement harness."""

import pytest

from repro.bench.plotting import bar_chart, line_chart
from repro.core.solver import SolverConfig
from repro.hardware.platform import server_a, server_c
from repro.bench.validation import validate_model_agreement


class TestLineChart:
    def test_renders_all_series(self):
        chart = line_chart(
            [0, 1, 2],
            {"rep": [1.0, 2.0, 3.0], "part": [3.0, 2.0, 1.0]},
            x_label="ratio",
            y_label="ms",
        )
        assert "o=rep" in chart and "x=part" in chart
        assert "ms" in chart

    def test_handles_none_points(self):
        chart = line_chart([0, 1], {"a": [None, 2.0]})
        assert "o=a" in chart

    def test_constant_series(self):
        chart = line_chart([0, 1], {"a": [5.0, 5.0]})
        assert "o" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {"a": [1.0]})

    def test_empty(self):
        assert line_chart([], {}) == "(no data)"

    def test_extremes_placed_correctly(self):
        chart = line_chart([0, 1], {"a": [0.0, 10.0]}, width=10, height=5)
        rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert rows[-1][1] == "o"  # min at bottom-left


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        a_len = chart.splitlines()[0].count("█")
        b_len = chart.splitlines()[1].count("█")
        assert b_len == 10 and a_len == 5

    def test_none_is_cross(self):
        chart = bar_chart({"WholeGraph": None, "UGache": 1.0})
        assert "✗" in chart

    def test_unit_suffix(self):
        assert "ms" in bar_chart({"a": 1.5}, unit="ms")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"
        assert bar_chart({"a": None}) == "(no data)"


class TestModelAgreement:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_model_agreement(
            [server_a(), server_c()],
            num_entries=800,
            alphas=(0.8, 1.3),
            ratios=(0.05, 0.25),
            solver=SolverConfig(coarse_block_frac=0.05),
        )

    def test_covers_the_grid(self, report):
        assert len(report.samples) == 2 * 2 * 2

    def test_estimates_track_simulation(self, report):
        # The solver must be optimizing (approximately) the same objective
        # the simulator prices: mean error tight, worst bounded.
        assert report.mean_abs_error < 0.15
        assert report.worst_abs_error < 0.45

    def test_within_helper(self, report):
        assert report.within(1.0)
        assert not report.within(0.0) or report.worst_abs_error == 0.0

    def test_sample_fields(self, report):
        s = report.samples[0]
        assert s.platform in ("server-a", "server-c")
        assert s.estimated_time >= 0 and s.simulated_time >= 0
