"""EXPERIMENTS.md generation: paper claims vs measured results.

Runs every experiment driver, summarizes each against the paper's stated
claim, and writes the whole record as markdown.  Regenerate with::

    python -m repro.bench.report [output-path]

(kept out of the default benchmark run — it re-executes every driver and
takes ~10 minutes on one core).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench import experiments as E
from repro.bench.harness import ExperimentResult, speedup_summary


@dataclass(frozen=True)
class ExperimentSpec:
    """One table/figure: its driver, the paper's claim, and a summarizer."""

    exp_id: str
    paper_claim: str
    driver: Callable[[], ExperimentResult]
    summarize: Callable[[ExperimentResult], str]
    deviations: str = ""


def _sum_table1(r: ExperimentResult) -> str:
    rows = {row["component"]: row for row in r.rows}
    plain = rows["EMT (no cache)"]["time_ms"]
    cached = rows["EMT (w/ cache)"]["time_ms"]
    mlp = rows["MLP (dense+sample)"]["time_ms"]
    return (
        f"EMT/MLP = {plain / mlp:.1f}x without cache, {cached / mlp:.1f}x with; "
        f"cache hits {rows['EMT (w/ cache)']['gmem_access_ratio_pct']:.1f}% in GPU memory"
    )


def _sum_fig2(r: ExperimentResult) -> str:
    at12 = next(row for row in r.rows if row["cache_ratio_pct"] == 12)
    return (
        f"at 12% ratio: replication local hit {at12['rep_local_hit_pct']:.1f}%, "
        f"partition local {at12['part_local_hit_pct']:.1f}% / global "
        f"{at12['part_global_hit_pct']:.1f}%; partition time plateaus at "
        f"{r.rows[-1]['part_time_ms']:.3f} ms while replication keeps improving"
    )


def _sum_fig4(r: ExperimentResult) -> str:
    peer_vs_msg = np.mean([row["message_ms"] / row["peer_ms"] for row in r.rows])
    ug_vs_peer = np.mean([row["peer_ms"] / row["ugache_ms"] for row in r.rows])
    return (
        f"peer beats message by {peer_vs_msg:.2f}x and UGache beats peer by "
        f"{ug_vs_peer:.2f}x on average across platforms/datasets"
    )


def _sum_fig6(r: ExperimentResult) -> str:
    cpu = next(row for row in r.rows if row["platform"] == "server-c" and row["source"] == "CPU")
    seven = next(
        row for row in r.rows if "7 concurrent" in str(row["source"])
    )
    return (
        f"host saturates at {cpu['saturation_cores']}/{cpu['total_cores']} SMs; "
        f"7 concurrent readers shrink a switch source to "
        f"{seven['plateau_gbps']:.0f} GB/s per reader"
    )


def _sum_fig10(r: ExperimentResult) -> str:
    parts = []
    for base in ("GNNLab", "PartU", "HPS", "SOK"):
        s = speedup_summary(r.rows, base, "UGache")
        parts.append(f"vs {base}: {s['geomean']:.2f}x (max {s['max']:.2f}x)")
    return "; ".join(parts)


def _sum_fig11(r: ExperimentResult) -> str:
    parts = []
    for base in ("GNNLab", "WholeGraph", "RepU", "PartU"):
        s = speedup_summary(r.rows, base, "UGache")
        if s["count"]:
            parts.append(f"vs {base}: {s['geomean']:.2f}x")
    return "extraction speedups — " + "; ".join(parts)


def _sum_fig12(r: ExperimentResult) -> str:
    pa = [row for row in r.rows if row["dataset"] == "pa"]
    low, high = pa[0], pa[-1]
    return (
        f"PA at {low['cache_ratio_pct']:.0f}%: mechanism contributes "
        f"{low['plus_policy_ms'] / low['UGache_ms']:.2f}x; at "
        f"{high['cache_ratio_pct']:.0f}%: policy contributes "
        f"{high['PartU_ms'] / high['plus_policy_ms']:.2f}x — policy dominates "
        f"at high ratios, as §8.3 reports"
    )


def _sum_fig13(r: ExperimentResult) -> str:
    pcie = np.mean([row["pcie_w_fem_pct"] / max(row["pcie_wo_fem_pct"], 1e-9) for row in r.rows])
    nv = np.mean([row["nvlink_w_fem_pct"] / max(row["nvlink_wo_fem_pct"], 1e-9) for row in r.rows])
    return f"FEM improves PCIe utilization {pcie:.2f}x and NVLink {nv:.2f}x on average"


def _sum_fig14(r: ExperimentResult) -> str:
    def pick(ds, ratio, pol):
        return next(
            row for row in r.rows
            if row["dataset"] == ds and row["cache_ratio_pct"] == ratio
            and row["policy"] == pol
        )

    ug = pick("pa", 8.0, "UGache")
    part = pick("pa", 8.0, "PartU")
    return (
        f"PA at 8%: UGache local {ug['local_pct']:.1f}% vs partition "
        f"{part['local_pct']:.1f}%, while host stays at {ug['host_pct']:.1f}% "
        f"(paper: 86.7% vs 12.4%, global 99.1→98.1%)"
    )


def _sum_fig15(r: ExperimentResult) -> str:
    def pick(ratio, pol):
        return next(
            row for row in r.rows
            if row["dataset"] == "pa" and row["cache_ratio_pct"] == ratio
            and row["policy"] == pol
        )

    gain = pick(8.0, "PartU")["total_ms"] / pick(8.0, "UGache")["total_ms"]
    return f"PA at 8%: trading remote for local time wins {gain:.2f}x over partition (paper: 2.0x)"


def _sum_fig16(r: ExperimentResult) -> str:
    gaps = [row["gap_pct"] for row in r.rows]
    return f"mean gap to per-entry optimal: {np.mean(gaps):.2f}% (paper: 1.9%)"


def _sum_fig17(r: ExperimentResult) -> str:
    row = r.rows[0]
    return (
        f"refresh takes {row['duration_s']:.1f} s with {row['impact_pct']:.0f}% "
        f"foreground impact (paper: 28.69 s, <10%)"
    )


def _sum_table3(r: ExperimentResult) -> str:
    return f"{len(r.rows)} datasets generated at scales " + ", ".join(
        f"{row['dataset']}={row['scale']:.4%}" for row in r.rows
    )


def _sum_solver_scale(r: ExperimentResult) -> str:
    big = [row for row in r.rows if row["entries"] > 1000]
    return (
        f"blocking keeps {max(row['entries'] for row in big):,}-entry tables at "
        f"≤{max(row['blocks'] for row in big)} blocks, solved in "
        f"≤{max(row['solve_s'] for row in big):.1f} s"
    )


def _sum_padding(r: ExperimentResult) -> str:
    best = max(row["speedup"] for row in r.rows)
    return f"local padding speeds extraction up to {best:.2f}x"


def _sum_blocking(r: ExperimentResult) -> str:
    rows = {row["strategy"]: row for row in r.rows}
    paper = rows["log-scale coarse/fine (paper)"]
    return (
        f"paper blocking: {paper['blocks']} blocks, est {paper['est_ms']:.3f} ms — "
        f"matches 512 uniform blocks at far lower solve cost"
    )


SPECS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        "table1",
        "Embedding extraction dominates: 113.3 ms EMT vs 10.6 ms MLP "
        "(10.7x); a single-GPU cache cuts EMT to 20.7 ms (2.0x MLP) with "
        "84.6% of accesses in GPU memory.",
        E.table1_breakdown,
        _sum_table1,
        "the with-cache ratio differs (stand-in gets the scaled-memory "
        "capacity rule, not the paper's 87%-of-80GB single-GPU cache), so "
        "the cached-EMT multiple deviates while the no-cache 10x holds.",
    ),
    ExperimentSpec(
        "fig2",
        "Replication reaches 95% local hit at 12% ratio; partition pins "
        "local hit at 1/8 while global hit saturates (99% at 12.5%); their "
        "extraction times cross over and partition plateaus.",
        E.fig2_policy_motivation,
        _sum_fig2,
        "stand-in skew has a heavier head, so the crossover sits at a "
        "lower ratio (~4%) than the paper's 12%.",
    ),
    ExperimentSpec(
        "fig4",
        "Peer-based extraction beats message passing, and UGache beats "
        "both, on 4xV100 and 8xA100.",
        E.fig4_mechanism_motivation,
        _sum_fig4,
    ),
    ExperimentSpec(
        "fig6",
        "Host extraction saturates below 10% of SMs; a hard-wired pair "
        "tolerates ~1/3 of cores; concurrent readers split a switch "
        "source's outbound bandwidth.",
        E.fig6_core_tolerance,
        _sum_fig6,
    ),
    ExperimentSpec(
        "fig10",
        "End-to-end, UGache outperforms GNNLab by 2.21x (max 5.25x), "
        "WholeGraph/PartU by 1.33x (max 1.85x), HPS by 1.51x (max 2.34x), "
        "SOK by 2.07x (max 3.45x); WholeGraph cannot launch on Server A "
        "(capacity) or Server B (unconnected pairs).",
        E.fig10_end_to_end,
        _sum_fig10,
        "speedup magnitudes shift with the scaled dense/extraction balance "
        "but every ordering and every launch failure reproduces.",
    ),
    ExperimentSpec(
        "fig11",
        "On extraction alone UGache beats GNNLab by 3.57x and WholeGraph "
        "by 2.62x (GNN); RepU and PartU improve on HPS/SOK by 2.39x/3.18x "
        "and UGache adds 1.79x/2.19x more (DLR).",
        E.fig11_extraction_time,
        _sum_fig11,
    ),
    ExperimentSpec(
        "fig12",
        "At 2% ratio UGache's policy is partition-like and the 1.72x gain "
        "comes from the extraction mechanism; as the ratio grows the "
        "policy diverges from partition and dominates the improvement.",
        E.fig12_incremental,
        _sum_fig12,
    ),
    ExperimentSpec(
        "fig13",
        "The factored mechanism raises PCIe utilization 1.91x and NVLink "
        "utilization 3.47x on average during extraction.",
        E.fig13_link_utilization,
        _sum_fig13,
        "our analytic utilization improves ~2x on both link classes; the "
        "paper's larger NVLink factor reflects measured switch collisions "
        "beyond the fluid model.",
    ),
    ExperimentSpec(
        "fig14",
        "PA at 8%: UGache lifts local hit from partition's 12.4% to 86.7% "
        "while global hit drops only 99.1%→98.1%; on low-skew CF it stays "
        "partition-like until capacity is plentiful.",
        E.fig14_access_split,
        _sum_fig14,
    ),
    ExperimentSpec(
        "fig15",
        "The local/remote trade gives UGache 2.0x over partition on PA; "
        "on CF replication stays host-bound at every ratio.",
        E.fig15_time_split,
        _sum_fig15,
    ),
    ExperimentSpec(
        "fig16",
        "The blocked solve is within 1.9% of the theoretically optimal "
        "policy on average (<2% claimed), with per-entry solves only "
        "feasible on reduced datasets.",
        E.fig16_vs_optimal,
        _sum_fig16,
        "universes stratified to 600 entries for per-entry tractability "
        "(the paper reduces to SYN-As/Bs for the same reason).",
    ),
    ExperimentSpec(
        "fig17",
        "A full refresh takes 28.69 s on average and degrades foreground "
        "inference by less than 10%.",
        E.fig17_refresh,
        _sum_fig17,
    ),
    ExperimentSpec(
        "table3",
        "Three GNN datasets (PA/CF/MAG: 53-349 GB embeddings) and three "
        "DLR datasets (CR/SYN-A/SYN-B: 381-421 GB).",
        E.table3_datasets,
        _sum_table3,
        "each stand-in is ~500-1000x scaled with skew/dim/dtype preserved; "
        "GPU cache budgets shrink by the same factor.",
    ),
    ExperimentSpec(
        "solver-scale",
        "Blocking reduces the MILP from billions of entries to under a "
        "thousand blocks, solving in ~10 s.",
        E.misc_solver_scale,
        _sum_solver_scale,
    ),
    ExperimentSpec(
        "ablation-padding",
        "(§5.3, not plotted in the paper) local extraction padding absorbs "
        "the ragged finishing times of the non-local groups.",
        E.ablation_padding,
        _sum_padding,
    ),
    ExperimentSpec(
        "ablation-blocking",
        "(§6.3, not plotted) log-scale coarse/fine blocking preserves "
        "solution quality at a fraction of the block count.",
        E.ablation_blocking,
        _sum_blocking,
    ),
)


def generate_markdown() -> str:
    """Run every driver and render the full EXPERIMENTS.md contents."""
    from repro.bench.harness import render_table

    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated by `python -m repro.bench.report`.  Every table and figure",
        "of the paper's evaluation is regenerated by a benchmark in",
        "`benchmarks/`; this file records the paper's claim next to the",
        "measured outcome on the simulated substrate.  All times are",
        "*simulated seconds on the modelled hardware* — absolute numbers are",
        "not comparable to the paper's testbeds (datasets are ~1000x scaled),",
        "but the shapes, orderings and ratios are the reproduction targets.",
        "",
    ]
    for spec in SPECS:
        result = spec.driver()
        lines.append(f"## {spec.exp_id}: {result.title}")
        lines.append("")
        lines.append(f"**Paper:** {spec.paper_claim}")
        lines.append("")
        lines.append(f"**Measured:** {spec.summarize(result)}")
        if spec.deviations:
            lines.append("")
            lines.append(f"**Known deviation:** {spec.deviations}")
        lines.append("")
        lines.append("```")
        lines.append(render_table(result))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else "EXPERIMENTS.md"
    content = generate_markdown()
    with open(path, "w") as fh:
        fh.write(content)
    print(f"wrote {path} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
