"""Placement evaluation: source resolution, hit rates, demands."""

import numpy as np
import pytest

from repro.core.evaluate import (
    demand_from_keys,
    evaluate_placement,
    expected_demands,
    hit_rates,
    resolve_sources,
)
from repro.core.policy import (
    Placement,
    empty_placement,
    partition_policy,
    replication_policy,
)
from repro.hardware.platform import HOST
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

HOT = zipf_pmf(500, 1.2) * 2000
ENTRY_BYTES = 64


class TestResolveSources:
    def test_local_preferred(self, platform_a):
        placement = replication_policy(HOT, 50, 4)
        srcs = resolve_sources(platform_a, placement)
        for g in range(4):
            assert (srcs[g][:50] == g).all()

    def test_uncached_goes_to_host(self, platform_a):
        placement = replication_policy(HOT, 50, 4)
        srcs = resolve_sources(platform_a, placement)
        assert (srcs[0][50:] == HOST).all()

    def test_partition_reads_remote_holder(self, platform_a):
        placement = partition_policy(HOT, 50, 4)
        srcs = resolve_sources(platform_a, placement)
        mat = placement.storage_matrix()
        for g in range(4):
            cached_somewhere = mat.any(axis=0)
            mask = cached_somewhere & ~mat[g]
            # Non-local cached entries are read from their holder, not host.
            assert (srcs[g][mask] != HOST).all()
            # And the chosen source actually stores the entry.
            for e in np.flatnonzero(mask)[:20]:
                assert mat[srcs[g][e], e]

    def test_unconnected_holder_falls_back_to_host(self, platform_b):
        # Entry cached only on GPU 5; GPU 0 cannot reach it on DGX-1.
        per_gpu = [np.empty(0, dtype=np.int64)] * 8
        per_gpu[5] = np.array([7])
        placement = Placement(num_entries=500, per_gpu=tuple(per_gpu))
        srcs = resolve_sources(platform_b, placement)
        assert srcs[0][7] == HOST
        assert srcs[4][7] == 5  # same quad: reachable

    def test_equal_cost_holders_rotated(self, platform_c):
        # All 7 remote GPUs hold the same entries: readers spread load.
        ids = np.arange(100)
        per_gpu = tuple(ids for _ in range(8))
        placement = Placement(num_entries=500, per_gpu=per_gpu)
        # Remove local copies for GPU 0 to force remote reads.
        per_gpu = (np.empty(0, dtype=np.int64),) + tuple(ids for _ in range(7))
        placement = Placement(num_entries=500, per_gpu=per_gpu)
        srcs = resolve_sources(platform_c, placement)[0][:100]
        assert len(np.unique(srcs)) > 1

    def test_gpu_count_mismatch_rejected(self, platform_a):
        placement = replication_policy(HOT, 10, 8)
        with pytest.raises(ValueError):
            resolve_sources(platform_a, placement)


class TestHitRates:
    def test_replication_has_no_remote(self, platform_a):
        hits = hit_rates(platform_a, replication_policy(HOT, 100, 4), HOT)
        assert hits.remote == 0.0
        assert hits.local + hits.host == pytest.approx(1.0)

    def test_partition_local_is_global_over_gpus(self, platform_c):
        hits = hit_rates(platform_c, partition_policy(HOT, 50, 8), HOT)
        assert hits.local == pytest.approx(hits.global_hit / 8, rel=0.15)

    def test_empty_cache_all_host(self, platform_a):
        hits = hit_rates(platform_a, empty_placement(500, 4), HOT)
        assert hits.host == pytest.approx(1.0)

    def test_splits_sum_to_one(self, platform_b):
        hits = hit_rates(platform_b, partition_policy(HOT, 30, 8), HOT)
        assert hits.local + hits.remote + hits.host == pytest.approx(1.0)

    def test_as_percent(self, platform_a):
        hits = hit_rates(platform_a, replication_policy(HOT, 100, 4), HOT)
        pct = hits.as_percent()
        assert pct["local"] == pytest.approx(100 * hits.local)


class TestExpectedDemands:
    def test_volumes_match_hotness_mass(self, platform_a):
        placement = replication_policy(HOT, 100, 4)
        demands = expected_demands(platform_a, placement, HOT, ENTRY_BYTES)
        total = sum(d.total_bytes for d in demands)
        assert total == pytest.approx(4 * HOT.sum() * ENTRY_BYTES)

    def test_local_volume_is_cached_mass(self, platform_a):
        placement = replication_policy(HOT, 100, 4)
        demands = expected_demands(platform_a, placement, HOT, ENTRY_BYTES)
        expected_local = HOT[:100].sum() * ENTRY_BYTES
        assert demands[0].volume(0) == pytest.approx(expected_local)

    def test_hotness_length_checked(self, platform_a):
        placement = replication_policy(HOT, 10, 4)
        with pytest.raises(ValueError):
            expected_demands(platform_a, placement, HOT[:-1], ENTRY_BYTES)


class TestDemandFromKeys:
    def test_counts_duplicates(self, platform_a):
        placement = replication_policy(HOT, 100, 4)
        srcs = resolve_sources(platform_a, placement)
        keys = np.array([0, 0, 0, 499])
        demand = demand_from_keys(platform_a, srcs, 0, keys, ENTRY_BYTES)
        assert demand.volume(0) == 3 * ENTRY_BYTES
        assert demand.volume(HOST) == 1 * ENTRY_BYTES

    def test_empty_batch(self, platform_a):
        placement = replication_policy(HOT, 100, 4)
        srcs = resolve_sources(platform_a, placement)
        demand = demand_from_keys(
            platform_a, srcs, 0, np.empty(0, dtype=np.int64), ENTRY_BYTES
        )
        assert demand.total_bytes == 0.0


class TestEvaluatePlacement:
    def test_more_cache_never_slower(self, platform_c):
        small = evaluate_placement(
            platform_c, replication_policy(HOT, 20, 8), HOT, ENTRY_BYTES
        ).time
        large = evaluate_placement(
            platform_c, replication_policy(HOT, 200, 8), HOT, ENTRY_BYTES
        ).time
        assert large <= small

    def test_mechanism_affects_time(self, platform_c):
        placement = partition_policy(HOT, 50, 8)
        fem = evaluate_placement(
            platform_c, placement, HOT, ENTRY_BYTES, Mechanism.FACTORED
        ).time
        naive = evaluate_placement(
            platform_c, placement, HOT, ENTRY_BYTES, Mechanism.PEER_NAIVE
        ).time
        assert fem < naive
