"""EXPERIMENTS.md report generator."""

import pytest

from repro.bench import experiments as E
from repro.bench.report import SPECS


class TestSpecs:
    def test_every_paper_experiment_covered(self):
        ids = {spec.exp_id for spec in SPECS}
        expected = {
            "table1", "table3",
            "fig2", "fig4", "fig6", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17",
        }
        assert expected <= ids

    def test_specs_well_formed(self):
        for spec in SPECS:
            assert spec.paper_claim
            assert callable(spec.driver)
            assert callable(spec.summarize)

    def test_no_duplicate_ids(self):
        ids = [spec.exp_id for spec in SPECS]
        assert len(ids) == len(set(ids))


class TestSummarizersOnFastDrivers:
    def _spec(self, exp_id):
        return next(spec for spec in SPECS if spec.exp_id == exp_id)

    def test_table3_summary(self):
        spec = self._spec("table3")
        summary = spec.summarize(spec.driver())
        assert "6 datasets" in summary

    def test_fig6_summary(self):
        spec = self._spec("fig6")
        summary = spec.summarize(spec.driver())
        assert "SMs" in summary and "GB/s" in summary

    def test_fig17_summary(self):
        spec = self._spec("fig17")
        summary = spec.summarize(spec.driver())
        assert "foreground impact" in summary


class TestMarkdownSkeleton:
    def test_render_single_section(self, monkeypatch):
        """generate_markdown structure, with all drivers stubbed fast."""
        import repro.bench.report as report
        from repro.bench.harness import ExperimentResult

        def fake_driver():
            r = ExperimentResult("stub", "stubbed result")
            r.add(x=1)
            return r

        stub_specs = tuple(
            report.ExperimentSpec(
                spec.exp_id, spec.paper_claim, fake_driver, lambda r: "ok",
                spec.deviations,
            )
            for spec in report.SPECS[:3]
        )
        monkeypatch.setattr(report, "SPECS", stub_specs)
        text = report.generate_markdown()
        assert text.startswith("# EXPERIMENTS")
        assert "**Paper:**" in text
        assert "**Measured:** ok" in text
        assert text.count("## ") == 3
