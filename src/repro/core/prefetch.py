"""Lookahead prefetching: an oracle cacher over a knowable future.

In trace-driven serving and in training, the near future is not a guess:
the next K batches' keys are sitting in the arrival trace (BagPipe's
observation).  This module turns that knowledge into a **prefetch stage**
ahead of the extraction pipeline: a :class:`LookaheadWindow` exposes the
next K batches per destination GPU, and an :class:`OracleCacher` diffs
that upcoming demand against current cache residency and pre-stages the
would-be host misses into a capacity-bounded per-GPU
:class:`StagingBuffer` while the GPU's links are otherwise idle.

The accounting mirrors the command-recording idiom (record now, execute
later): staging is *recorded* against the demand diff immediately, but
its transfer cost is *priced* against the idle gap the caller reports —
only the non-overlapped remainder of the PCIe transfer lands on the
critical path (:attr:`PrefetchOutcome.critical_seconds`).  At extraction
time the serving runtime asks :meth:`OracleCacher.stage_hits` which host
keys are already resident in staging and shifts their bytes off the host
path with :func:`~repro.core.pipeline.shift_staged_demand`, so a
prefetched key is priced as a local read instead of a PCIe gather.

Everything is per-GPU state: one buffer + one window per destination, so
the per-GPU serving workers never contend on shared prefetch state.
Values are never approximated — staging only re-prices reads; the actual
bytes still come from the host table, byte-identical.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import price_demand
from repro.hardware.platform import HOST
from repro.obs import get_registry, stage_timer
from repro.sim.mechanisms import GpuDemand
from repro.utils.logging import get_logger

logger = get_logger("core.prefetch")

__all__ = [
    "LookaheadWindow",
    "OracleCacher",
    "PrefetchConfig",
    "PrefetchOutcome",
    "StagingBuffer",
]


@dataclass(frozen=True)
class PrefetchConfig:
    """Knobs of the lookahead prefetcher.

    Attributes:
        lookahead: batches peeked ahead of the one being served; 0
            disables prefetching entirely (the runtime behaves
            byte-identically to one with no prefetcher attached).
        capacity_entries: staging-buffer bound per GPU, in entries — the
            GPU-tier headroom the oracle may fill beyond the solved
            placement.
    """

    lookahead: int = 4
    capacity_entries: int = 4096

    def __post_init__(self) -> None:
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if self.capacity_entries < 1:
            raise ValueError("staging capacity must be at least one entry")


@dataclass
class PrefetchOutcome:
    """What one prefetch issuance staged, and what it cost.

    ``cost_seconds`` is the full priced host→GPU transfer;
    ``overlapped_seconds`` is the share absorbed by the idle gap the
    caller reported.  Only :attr:`critical_seconds` may delay serving.
    """

    gpu: int
    staged_keys: int = 0
    staged_bytes: float = 0.0
    #: upcoming host misses that did not fit in the staging buffer.
    deferred_keys: int = 0
    cost_seconds: float = 0.0
    overlapped_seconds: float = 0.0

    @property
    def critical_seconds(self) -> float:
        """Transfer time not hidden by idle links (lands on the GPU)."""
        return max(0.0, self.cost_seconds - self.overlapped_seconds)


class StagingBuffer:
    """Capacity-bounded staging area for one GPU tier's prefetched entries.

    Tracks which staged entries ever served a hit so evictions can split
    into useful turnover versus :attr:`wasted_bytes` (staged, never
    read — the oracle's prediction was overtaken by a drop, a policy
    swap, or the end of the run).
    """

    def __init__(self, gpu: int, num_entries: int, capacity_entries: int,
                 entry_bytes: int) -> None:
        if capacity_entries < 1:
            raise ValueError("staging capacity must be at least one entry")
        self.gpu = gpu
        self.capacity_entries = capacity_entries
        self.entry_bytes = entry_bytes
        self._staged = np.zeros(num_entries, dtype=bool)
        self._used = np.zeros(num_entries, dtype=bool)
        self._count = 0
        self.staged_total = 0
        self.hits = 0
        self.wasted_bytes = 0.0

    @property
    def occupancy(self) -> int:
        """Entries currently staged (never exceeds the capacity bound)."""
        return self._count

    @property
    def free(self) -> int:
        return self.capacity_entries - self._count

    def staged_mask(self, keys: np.ndarray) -> np.ndarray:
        """Which of ``keys`` are currently resident in staging."""
        return self._staged[keys]

    def stage(self, keys: np.ndarray) -> np.ndarray:
        """Stage as many of ``keys`` as capacity allows, in order.

        ``keys`` must be unique and not already staged.  Returns the
        keys actually staged (a prefix of the input).
        """
        room = self.free
        admitted = keys[:room] if len(keys) > room else keys
        if len(admitted):
            self._staged[admitted] = True
            self._used[admitted] = False
            self._count += len(admitted)
            self.staged_total += len(admitted)
        return admitted

    def record_hits(self, keys: np.ndarray) -> np.ndarray:
        """Mark the staged subset of ``keys`` as read; returns the mask."""
        mask = self._staged[keys]
        n = int(mask.sum())
        if n:
            self._used[keys[mask]] = True
            self.hits += n
        return mask

    def evict_except(self, keep_mask: np.ndarray) -> int:
        """Evict staged entries outside ``keep_mask`` (a bool entry mask).

        Entries that never served a hit count toward
        :attr:`wasted_bytes`.  Returns how many entries were evicted.
        """
        evict = self._staged & ~keep_mask
        n = int(evict.sum())
        if n:
            wasted = int((evict & ~self._used).sum())
            self.wasted_bytes += wasted * self.entry_bytes
            self._staged[evict] = False
            self._used[evict] = False
            self._count -= n
        return n

    def drain(self) -> int:
        """Evict everything (end of run); unread entries count as waste."""
        return self.evict_except(np.zeros_like(self._staged))


class LookaheadWindow:
    """The knowable future of one destination GPU: a FIFO of key batches.

    The feeder (the soak harness's trace, a training loader's prefetch
    queue) appends batches with :meth:`push` in arrival order; the
    serving runtime calls :meth:`advance` as each batch *retires*
    (served, expired, or dropped at admission).  The *window* is the
    next ``lookahead`` unretired batches — the slice of the future the
    oracle is allowed to act on — so staged entries survive a request's
    queueing delay.
    """

    def __init__(self, lookahead: int) -> None:
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.lookahead = lookahead
        self._future: deque[np.ndarray] = deque()

    def __len__(self) -> int:
        return len(self._future)

    def push(self, keys: np.ndarray) -> None:
        """Append one future batch (arrival order)."""
        self._future.append(np.ascontiguousarray(keys, dtype=np.int64))

    def window(self) -> list[np.ndarray]:
        """The next ≤ ``lookahead`` batches, nearest first."""
        k = min(self.lookahead, len(self._future))
        return [self._future[i] for i in range(k)]

    def union(self) -> np.ndarray:
        """Unique keys across the window, in first-need order.

        Ordering matters under capacity pressure: the staging buffer
        admits a prefix, so the earliest-needed keys must come first.
        """
        batches = self.window()
        if not batches:
            return np.empty(0, dtype=np.int64)
        cat = np.concatenate(batches)
        first = np.sort(np.unique(cat, return_index=True)[1])
        return cat[first]

    def advance(self) -> np.ndarray | None:
        """Slide past the batch that just retired; returns it."""
        if not self._future:
            return None
        return self._future.popleft()


class OracleCacher:
    """Diffs upcoming demand against residency and pre-stages the misses.

    One window + one staging buffer per destination GPU.  The caller
    drives three moments:

    * :meth:`announce` — feed the future (the trace) in arrival order;
    * :meth:`prefetch` — during an idle gap, stage the window's would-be
      host misses into the GPU tier, priced against the idle time;
    * :meth:`stage_hits` — at extraction, claim staged keys so the
      demand can be shifted off the host path; then :meth:`advance`
      (called by the runtime as each batch retires) slides the window
      and evicts staging that the future no longer justifies.

    The prefetch diff runs under the cache's read lock and inside the
    pipeline's ``prefetch`` stage timer (``pipeline.prefetch.seconds``),
    so its cost shows up in the same per-stage breakdown as the rest of
    the extraction pipeline.
    """

    def __init__(self, cache, config: PrefetchConfig | None = None) -> None:
        self._cache = cache
        self.config = config or PrefetchConfig()
        G = cache.platform.num_gpus
        self._windows = [LookaheadWindow(self.config.lookahead) for _ in range(G)]
        self._buffers = [
            StagingBuffer(
                g,
                cache.num_entries,
                self.config.capacity_entries,
                cache.entry_bytes,
            )
            for g in range(G)
        ]
        #: per-GPU host-resolved keys seen at extraction (hit-rate base).
        self._host_keys_seen = [0] * G
        self._overlap_seconds = [0.0] * G
        self._critical_seconds = [0.0] * G
        #: priced per-entry transfer seconds, keyed by (gpu, backing src).
        self._entry_cost: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def buffer(self, gpu: int) -> StagingBuffer:
        return self._buffers[gpu]

    def window(self, gpu: int) -> LookaheadWindow:
        return self._windows[gpu]

    @property
    def staged_keys_total(self) -> int:
        return sum(b.staged_total for b in self._buffers)

    @property
    def staged_bytes_total(self) -> float:
        return float(
            sum(b.staged_total * b.entry_bytes for b in self._buffers)
        )

    @property
    def hits_total(self) -> int:
        return sum(b.hits for b in self._buffers)

    @property
    def wasted_bytes_total(self) -> float:
        return float(sum(b.wasted_bytes for b in self._buffers))

    @property
    def overlap_seconds_total(self) -> float:
        return float(sum(self._overlap_seconds))

    @property
    def critical_seconds_total(self) -> float:
        return float(sum(self._critical_seconds))

    @property
    def hit_rate(self) -> float:
        """Staged hits over all host-resolved keys seen at extraction."""
        seen = sum(self._host_keys_seen)
        return self.hits_total / seen if seen else 0.0

    # ------------------------------------------------------------------
    # The three moments
    # ------------------------------------------------------------------
    def announce(self, gpu: int, keys: np.ndarray) -> None:
        """Feed one future batch for ``gpu`` (arrival order)."""
        self._windows[gpu].push(keys)

    def _per_entry_cost(self, gpu: int, src: int = HOST) -> float:
        """Priced tier→GPU transfer seconds per staged entry (cached).

        ``src`` is the backing tier the entry would be pulled from; on a
        single-tier platform that is always :data:`HOST`.
        """
        cost = self._entry_cost.get((gpu, src))
        if cost is None:
            ref = 1024
            demand = GpuDemand(
                dst=gpu,
                volumes={src: float(ref * self._cache.entry_bytes)},
            )
            cost = price_demand(self._cache.platform, demand).time / ref
            self._entry_cost[(gpu, src)] = cost
        return cost

    def prefetch(
        self, gpu: int, now: float = 0.0, idle_seconds: float = 0.0
    ) -> PrefetchOutcome:
        """Stage the window's upcoming host misses during an idle gap.

        ``idle_seconds`` is how long ``gpu``'s links sit idle before its
        next obligation: staging is *budgeted* to the entries that idle
        gap can transfer (``math.inf`` lifts the budget), so prefetch is
        priced against idle link time rather than the serving critical
        path.  Any residual (pricing is not perfectly linear in bytes)
        is reported as :attr:`PrefetchOutcome.critical_seconds` and it
        is the caller's call whether to charge it to the GPU.
        """
        if idle_seconds < 0:
            raise ValueError("idle time must be non-negative")
        buffer = self._buffers[gpu]
        outcome = PrefetchOutcome(gpu=gpu)
        if self.config.lookahead == 0:
            return outcome
        with stage_timer("prefetch"):
            with self._cache.reading():
                upcoming = self._windows[gpu].union()
                if len(upcoming) == 0:
                    return outcome
                sources = self._cache.source_map[gpu][upcoming]
                miss_mask = (sources < 0) & ~buffer.staged_mask(upcoming)
                misses = upcoming[miss_mask]
                miss_src = sources[miss_mask]
                if len(misses) == 0:
                    return outcome
                platform = self._cache.platform
                if math.isinf(idle_seconds):
                    budget = len(misses)
                elif platform.num_tiers == 1:
                    budget = int(idle_seconds / self._per_entry_cost(gpu))
                else:
                    # Misses on deep tiers cost more per entry; budget by
                    # cumulative priced cost in first-need order.
                    per = np.array(
                        [
                            self._per_entry_cost(gpu, int(s))
                            for s in miss_src
                        ]
                    )
                    budget = int((np.cumsum(per) <= idle_seconds).sum())
                outcome.deferred_keys = max(0, len(misses) - budget)
                if budget <= 0:
                    return outcome
                staged = buffer.stage(misses[:budget])
                outcome.staged_keys = len(staged)
                outcome.deferred_keys = len(misses) - len(staged)
                if len(staged) == 0:
                    return outcome
                outcome.staged_bytes = float(
                    len(staged) * self._cache.entry_bytes
                )
                staged_src = miss_src[: len(staged)]
            volumes: dict[int, float] = {}
            for s in np.unique(staged_src):
                volumes[int(s)] = float(
                    int((staged_src == s).sum()) * self._cache.entry_bytes
                )
            demand = GpuDemand(dst=gpu, volumes=volumes)
            outcome.cost_seconds = price_demand(
                self._cache.platform, demand
            ).time
            outcome.overlapped_seconds = min(
                idle_seconds, outcome.cost_seconds
            )
        self._overlap_seconds[gpu] += outcome.overlapped_seconds
        self._critical_seconds[gpu] += outcome.critical_seconds
        reg = get_registry()
        if reg.enabled:
            reg.counter("serve.prefetch.staged_keys", gpu=gpu).inc(
                outcome.staged_keys
            )
            reg.counter("serve.prefetch.staged_bytes", gpu=gpu).inc(
                int(outcome.staged_bytes)
            )
            if outcome.deferred_keys:
                reg.counter("serve.prefetch.deferred_keys", gpu=gpu).inc(
                    outcome.deferred_keys
                )
            reg.histogram("serve.prefetch.overlap.seconds").observe(
                outcome.overlapped_seconds
            )
            reg.histogram("serve.prefetch.critical.seconds").observe(
                outcome.critical_seconds
            )
        return outcome

    def stage_hits(self, gpu: int, host_keys: np.ndarray) -> np.ndarray:
        """Claim staged entries among a plan's host-resolved keys.

        Returns the boolean hit mask over ``host_keys``.  Hit entries
        stay staged while the window still references them (a hot staged
        entry serves every queued batch that needs it).
        """
        self._host_keys_seen[gpu] += len(host_keys)
        if len(host_keys) == 0:
            return np.zeros(0, dtype=bool)
        mask = self._buffers[gpu].record_hits(host_keys)
        n = int(mask.sum())
        if n:
            reg = get_registry()
            if reg.enabled:
                reg.counter("serve.prefetch.hits", gpu=gpu).inc(n)
        return mask

    def advance(self, gpu: int) -> None:
        """Slide ``gpu``'s window past the batch that just retired.

        Staged entries the remaining window no longer references are
        evicted; the never-read ones count as wasted bytes.
        """
        window = self._windows[gpu]
        window.advance()
        buffer = self._buffers[gpu]
        if buffer.occupancy == 0:
            return
        keep = np.zeros(self._cache.num_entries, dtype=bool)
        remaining = window.window()
        if remaining:
            keep[np.concatenate(remaining)] = True
        evicted = buffer.evict_except(keep)
        if evicted:
            reg = get_registry()
            if reg.enabled:
                reg.counter("serve.prefetch.evicted_keys", gpu=gpu).inc(
                    evicted
                )

    def finalize(self) -> None:
        """End of run: drain every buffer, counting unread staging as waste."""
        reg = get_registry()
        for buffer in self._buffers:
            evicted = buffer.drain()
            if evicted and reg.enabled:
                reg.counter(
                    "serve.prefetch.evicted_keys", gpu=buffer.gpu
                ).inc(evicted)
        if reg.enabled:
            reg.counter("serve.prefetch.wasted_bytes").inc(
                int(self.wasted_bytes_total)
            )
