"""Unit constants and conversions.

The whole library works in *bytes* and *seconds* internally.  Benchmarks and
reports convert at the edges using these helpers, so a stray "is this GB or
GiB?" bug cannot silently skew a simulated bandwidth.

Bandwidth figures quoted in the paper (NVLink 25 GB/s per link, HBM
~900 GB/s, PCIe 3.0/4.0 x16 ~16/24 GB/s) use decimal gigabytes, so ``GB``
here is 1e9.
"""

from __future__ import annotations

#: Decimal units (used for bandwidths, matching vendor datasheets).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Binary gibibyte (used for memory capacities, matching `nvidia-smi`).
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Time units, expressed in seconds.
MS = 1e-3
US = 1e-6
NS = 1e-9


def gbps(value: float) -> float:
    """Convert a bandwidth in GB/s to bytes/second."""
    return value * GB


def gb_to_bytes(value: float) -> int:
    """Convert decimal gigabytes to bytes."""
    return int(value * GB)


def gib_to_bytes(value: float) -> int:
    """Convert binary gibibytes to bytes."""
    return int(value * GIB)


def bytes_to_gb(value: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return value / GB


def bytes_to_gib(value: float) -> float:
    """Convert bytes to binary gibibytes."""
    return value / GIB


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value / MS


def seconds_to_us(value: float) -> float:
    """Convert seconds to microseconds."""
    return value / US


def ms_to_seconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS
