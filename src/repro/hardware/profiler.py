"""Platform profiler: measure the tables the Solver consumes (§4, §6.2).

The real UGache profiles its host's bandwidth hierarchy at startup; the
Solver then works only from ``T_{i←j}`` cost coefficients, link tolerances
and core-dedication ratios.  This module reproduces that boundary: it
derives the same tables *by probing the bandwidth model* (running the
Figure-6 microbenchmark per path) rather than by reading `Platform`
attributes, so a differently-sourced platform description — or a future
empirical backend — plugs into the Solver unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.bandwidth import achieved_bandwidth
from repro.hardware.platform import HOST, Platform


@dataclass(frozen=True)
class PlatformProfile:
    """Everything the Solver needs to know about one machine.

    Attributes:
        name: platform display name.
        num_gpus: GPU count.
        sources: per destination GPU, its reachable source list.
        cost_per_byte: ``(dst, src) → seconds/byte`` (measured).
        tolerance: ``(dst, src) → saturating SM count`` (measured).
    """

    name: str
    num_gpus: int
    sources: dict[int, tuple[int, ...]]
    cost_per_byte: dict[tuple[int, int], float]
    tolerance: dict[tuple[int, int], int]

    def bandwidth_matrix(self) -> np.ndarray:
        """``(G, G+1)`` bandwidth table (last column = host), GB/s."""
        out = np.zeros((self.num_gpus, self.num_gpus + 1))
        for (dst, src), cost in self.cost_per_byte.items():
            col = self.num_gpus if src == HOST else src
            out[dst, col] = (1.0 / cost) / 1e9 if cost > 0 else 0.0
        return out


def profile_platform(platform: Platform, probe_points: int = 8) -> PlatformProfile:
    """Run the Figure-6 microbenchmark on every path of ``platform``.

    For each (dst, src) pair, sweeps the participating SM count and
    records the plateau bandwidth (→ ``T_{i←j}``) and the saturation point
    (→ link tolerance).  ``probe_points`` controls the sweep density; the
    plateau estimate is exact because the underlying curve is piecewise
    linear.
    """
    if probe_points < 2:
        raise ValueError("need at least two probe points")
    sources: dict[int, tuple[int, ...]] = {}
    cost: dict[tuple[int, int], float] = {}
    tolerance: dict[tuple[int, int], int] = {}
    max_cores = platform.gpu.num_cores
    sweep = np.unique(
        np.linspace(1, max_cores, probe_points).round().astype(int)
    )
    for dst in platform.gpu_ids:
        srcs = tuple(platform.sources_for(dst))
        sources[dst] = srcs
        for src in srcs:
            readers = (
                platform.num_gpus - 1
                if src not in (dst, HOST)
                and platform.topology.kind.value == "switch"
                else 1
            )
            bandwidths = np.array(
                [
                    achieved_bandwidth(platform, dst, src, int(c), readers)
                    for c in sweep
                ]
            )
            plateau = float(bandwidths.max(initial=0.0))
            cost[(dst, src)] = float("inf") if plateau <= 0 else 1.0 / plateau
            if plateau <= 0:
                tolerance[(dst, src)] = 0
            else:
                per_core = bandwidths[0] / sweep[0]
                tolerance[(dst, src)] = max(1, int(round(plateau / per_core)))
    return PlatformProfile(
        name=platform.name,
        num_gpus=platform.num_gpus,
        sources=sources,
        cost_per_byte=cost,
        tolerance=tolerance,
    )


def verify_profile(platform: Platform, profile: PlatformProfile, rel: float = 0.05) -> bool:
    """Cross-check a profile against the platform's own tables.

    Returns True when every measured cost coefficient is within ``rel`` of
    ``platform.cost_per_byte`` (used by tests and as a self-check when
    loading externally produced profiles).
    """
    for dst in platform.gpu_ids:
        for src in platform.sources_for(dst):
            expected = platform.cost_per_byte(dst, src)
            measured = profile.cost_per_byte[(dst, src)]
            if not np.isfinite(expected):
                if np.isfinite(measured):
                    return False
                continue
            if abs(measured - expected) > rel * expected:
                return False
    return True
