"""One simulated cache-server node: a full single-box stack on a shard.

A :class:`CacheNode` is the parameter-server shape of HugeCTR's inference
tier: every node holds the *whole* host table across its backing-tier
chain — all of DRAM on a classic platform, or a DRAM→CXL/SSD waterfall on
a tiered one (the shard's hot head in DRAM, the cold tail sunk deeper) —
so any read it is asked to serve is answerable and bit-exact.  Its GPUs
cache only the shard the cluster placement assigned to it: hotness
outside the shard is masked to zero before the per-GPU policy runs, so
GPU capacity is spent exclusively on keys this node will actually be
routed.

The node's serving surface is deliberately tiny: price a batch
(:meth:`service_seconds`) or actually gather it (:meth:`serve`), both
through the unchanged extraction pipeline.  Everything fault-related —
whether the node is reachable, how slow it is, when RPCs to it time out —
lives *outside*, in the health view and the RPC layer; the node itself
stays a pure single-box UGache instance.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import Placement, hot_replicate_warm_partition_policy
from repro.core.solver import FallbackConfig, SolverConfig, solve_sharded_policy
from repro.hardware.platform import Platform
from repro.sim.mechanisms import factored_extraction
from repro.utils.logging import get_logger

logger = get_logger("cluster.node")

__all__ = ["CacheNode"]


class CacheNode:
    """A single-box UGache stack serving one shard of the keyspace."""

    def __init__(
        self,
        node_id: int,
        platform: Platform,
        table: np.ndarray,
        hotness: np.ndarray,
        member_mask: np.ndarray,
        capacity_entries: int,
        placement_mode: str = "greedy",
        replicate_fraction: float = 0.5,
    ) -> None:
        if placement_mode not in ("greedy", "solver"):
            raise ValueError(
                f"placement mode must be 'greedy' or 'solver', "
                f"got {placement_mode!r}"
            )
        self.node_id = int(node_id)
        self.platform = platform
        self.member_mask = np.asarray(member_mask, dtype=bool)
        if not self.member_mask.any():
            raise ValueError(f"node {node_id}: shard cannot be empty")
        hotness = np.asarray(hotness, dtype=np.float64)
        shard_hotness = np.where(self.member_mask, hotness, 0.0)

        if placement_mode == "solver":
            # The node-level stage above the per-GPU MILP: mask, solve,
            # intersect.  The last-known-good cache is disabled — nodes
            # share a platform name and must not serve each other's
            # shard policies.
            outcome = solve_sharded_policy(
                platform,
                hotness,
                self.member_mask,
                capacity_entries,
                entry_bytes=table.shape[1] * table.dtype.itemsize,
                config=SolverConfig(time_limit=10.0, coarse_block_frac=0.02),
                fallback=FallbackConfig(deadline_seconds=10.0, use_cached=False),
            )
            placement = outcome.placement
            logger.debug(
                "node %d: solver placement via %s (est %.3es)",
                node_id, outcome.source, outcome.est_time,
            )
        else:
            raw = hot_replicate_warm_partition_policy(
                shard_hotness, capacity_entries, platform.num_gpus,
                replicate_fraction,
            )
            # Capacity beyond the shard's size would otherwise be padded
            # with zero-hotness strangers; keep the caches shard-pure.
            placement = Placement(
                num_entries=raw.num_entries,
                per_gpu=tuple(
                    ids[self.member_mask[ids]] for ids in raw.per_gpu
                ),
            )
        # On a tiered platform the node's backing chain is ranked by the
        # *shard's* hotness: each node keeps its own hot head in DRAM.
        self.cache = MultiGpuEmbeddingCache(
            platform,
            table,
            placement,
            tier_hotness=shard_hotness if platform.num_tiers > 1 else None,
        )
        self.extractor = FactoredExtractor(self.cache)
        self._next_gpu = 0
        #: optional :class:`~repro.repair.scrub.CacheScrubber` — when set,
        #: every served batch passes through its read guard so rotten
        #: slots can never leak corrupt bytes to a caller.
        self.read_guard = None

    # ------------------------------------------------------------------
    # Serving surface
    # ------------------------------------------------------------------
    def _pick_gpu(self) -> int:
        gpu = self._next_gpu
        self._next_gpu = (self._next_gpu + 1) % self.platform.num_gpus
        return gpu

    def service_seconds(self, keys: np.ndarray) -> float:
        """Healthy extraction time for ``keys`` on the next ingress GPU."""
        plan = self.extractor.plan(self._pick_gpu(), keys)
        demand = plan.demand(self.cache.entry_bytes)
        return factored_extraction(self.platform, demand).time

    def serve(self, keys: np.ndarray) -> tuple[np.ndarray, float]:
        """Gather ``keys``; returns ``(values, healthy service seconds)``."""
        gpu = self._pick_gpu()
        plan = self.extractor.plan(gpu, keys)
        values, demand = self.extractor.execute(plan)
        if self.read_guard is not None:
            values, _ = self.read_guard.guard_read(gpu, keys, values)
        return values, factored_extraction(self.platform, demand).time

    # ------------------------------------------------------------------
    # Failover bookkeeping
    # ------------------------------------------------------------------
    @property
    def cached_bytes(self) -> int:
        """Bytes resident in this node's GPU caches — what a recovering
        node must re-stage from its host table (the rebalance cost)."""
        return sum(
            len(self.cache.store(g).cached_entries()) * self.cache.entry_bytes
            for g in range(self.platform.num_gpus)
        )

    def drop_gpu_caches(self) -> Placement:
        """Model a node death: GPU cache contents are lost.

        Every store is emptied (arenas and capacity survive — the
        hardware is fine, the bytes are gone) and the location table is
        rebuilt, so until re-staged every read on this node resolves to
        its host table — slower, still bit-exact.  Returns the lost
        placement, the input a :class:`~repro.repair.restage.StagedRecovery`
        plan needs.
        """
        lost = self.cache.placement
        with self.cache.writing():
            for g in range(self.platform.num_gpus):
                store = self.cache.store(g)
                for entry in store.cached_entries():
                    store.evict(int(entry))
        self.cache.refresh_source_map()
        logger.warning(
            "node %d: dropped %d GPU-cached entries",
            self.node_id, sum(len(ids) for ids in lost.per_gpu),
        )
        return lost

    def restage_all(self, lost: Placement) -> int:
        """Burst re-stage: refill the dropped placement in one shot.

        The naive heal the staged recovery replaces — kept as the
        baseline (and the final-drain fallback).  Returns bytes staged.
        """
        bytes_before = self.cached_bytes
        with self.cache.writing():
            for gpu, ids in enumerate(lost.per_gpu):
                store = self.cache.store(gpu)
                for entry in np.asarray(ids):
                    entry = int(entry)
                    if store.offset_of[entry] < 0:
                        store.insert(entry, self.cache.host_table[entry])
        self.cache.refresh_source_map()
        return self.cached_bytes - bytes_before

    @property
    def shard_entries(self) -> int:
        return int(self.member_mask.sum())

    def verify_integrity(self) -> list[str]:
        return self.cache.verify_integrity()
