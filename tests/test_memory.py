"""Slot arena allocator."""

import pytest

from repro.hardware.memory import OutOfDeviceMemory, SlotArena


def test_slot_count_from_budget():
    arena = SlotArena(capacity_bytes=1000, slot_bytes=64)
    assert arena.num_slots == 15


def test_allocate_returns_distinct_offsets():
    arena = SlotArena(640, 64)
    offsets = [arena.allocate() for _ in range(10)]
    assert len(set(offsets)) == 10


def test_exhaustion_raises():
    arena = SlotArena(128, 64)
    arena.allocate()
    arena.allocate()
    with pytest.raises(OutOfDeviceMemory):
        arena.allocate()


def test_free_recycles():
    arena = SlotArena(128, 64)
    a = arena.allocate()
    arena.allocate()
    arena.free(a)
    assert arena.allocate() == a


def test_used_bytes_accounting():
    arena = SlotArena(1024, 64)
    arena.allocate()
    arena.allocate()
    assert arena.used_bytes == 128
    assert arena.used_slots == 2
    assert arena.free_slots == 14


def test_allocate_many_atomic():
    arena = SlotArena(256, 64)
    with pytest.raises(OutOfDeviceMemory):
        arena.allocate_many(5)
    # Nothing was leaked by the failed bulk allocation.
    assert arena.used_slots == 0
    assert len(arena.allocate_many(4)) == 4


def test_double_free_rejected():
    arena = SlotArena(128, 64)
    a = arena.allocate()
    arena.free(a)
    with pytest.raises(ValueError):
        arena.free(a)


def test_free_unallocated_rejected():
    arena = SlotArena(128, 64)
    with pytest.raises(ValueError):
        arena.free(0)


def test_reset_clears_everything():
    arena = SlotArena(256, 64)
    arena.allocate_many(3)
    arena.reset()
    assert arena.used_slots == 0
    assert len(arena.allocate_many(4)) == 4


def test_zero_capacity_arena():
    arena = SlotArena(0, 64)
    assert arena.num_slots == 0
    with pytest.raises(OutOfDeviceMemory):
        arena.allocate()


def test_rejects_bad_slot_size():
    with pytest.raises(ValueError):
        SlotArena(100, 0)


def test_rejects_negative_capacity():
    with pytest.raises(ValueError):
        SlotArena(-1, 8)
