"""UGache's core: hotness, blocking, MILP policy solver, cache, extractor.

The primary contribution of the paper lives here — everything else in the
library is substrate (hardware model, workloads, baselines) or glue.
"""

from repro.core.blocks import BlockSet, build_blocks, build_uniform_blocks, per_entry_blocks
from repro.core.cache import (
    CacheIntegrityError,
    LookupResult,
    MultiGpuEmbeddingCache,
)
from repro.core.embedding_layer import EmbeddingLayerConfig, UGacheEmbeddingLayer
from repro.core.evaluate import (
    HitRates,
    demand_from_keys,
    evaluate_placement,
    expected_demands,
    hit_rates,
    resolve_sources,
)
from repro.core.extractor import ExtractionPlan, FactoredExtractor, SourceGroup
from repro.core.pipeline import (
    apply_health,
    execute_plan,
    host_fallback_demand,
    plan_extraction,
    price_demand,
    renormalize_dedication,
    shift_staged_demand,
    verify_resolution,
)
from repro.core.prefetch import (
    LookaheadWindow,
    OracleCacher,
    PrefetchConfig,
    PrefetchOutcome,
    StagingBuffer,
)
from repro.core.filler import (
    GpuCacheStore,
    PlacementDiff,
    apply_diff_step,
    fill_all,
    fill_gpu,
    placement_diff,
)
from repro.core.location_table import (
    CorruptEntryError,
    LocationTable,
    ProbeLimitError,
    pack_location,
    unpack_location,
)
from repro.core.serialization import (
    load_placement,
    load_policy_summary,
    policy_summary,
    save_placement,
    save_policy_summary,
)
from repro.core.hotness import (
    HotnessTracker,
    degree_hotness,
    hotness_skew,
    presample_hotness,
)
from repro.core.optimal import MAX_OPTIMAL_ENTRIES, approximation_gap, solve_optimal
from repro.core.planner import CapacityPlan, PlanStep, plan_capacity
from repro.core.policy import (
    Placement,
    clique_partition_policy,
    empty_placement,
    hot_replicate_warm_partition_policy,
    partition_policy,
    replication_policy,
)
from repro.core.refresher import (
    RefreshConfig,
    RefreshInterrupted,
    RefreshOutcome,
    Refresher,
    RefreshTimeline,
    simulate_refresh_timeline,
)
from repro.core.solver import (
    FallbackConfig,
    PolicyOutcome,
    PolicySolveError,
    PolicySolveTimeout,
    SolvedPolicy,
    SolverConfig,
    clear_policy_cache,
    dedication_ratios,
    last_known_good,
    remember_policy,
    solve_policy,
    solve_policy_with_fallback,
)

__all__ = [
    "CorruptEntryError",
    "LocationTable",
    "ProbeLimitError",
    "pack_location",
    "unpack_location",
    "load_placement",
    "load_policy_summary",
    "policy_summary",
    "save_placement",
    "save_policy_summary",
    "CapacityPlan",
    "PlanStep",
    "plan_capacity",
    "BlockSet",
    "build_blocks",
    "build_uniform_blocks",
    "per_entry_blocks",
    "CacheIntegrityError",
    "LookupResult",
    "MultiGpuEmbeddingCache",
    "EmbeddingLayerConfig",
    "UGacheEmbeddingLayer",
    "HitRates",
    "demand_from_keys",
    "evaluate_placement",
    "expected_demands",
    "hit_rates",
    "resolve_sources",
    "ExtractionPlan",
    "FactoredExtractor",
    "SourceGroup",
    "apply_health",
    "execute_plan",
    "host_fallback_demand",
    "plan_extraction",
    "price_demand",
    "renormalize_dedication",
    "shift_staged_demand",
    "verify_resolution",
    "LookaheadWindow",
    "OracleCacher",
    "PrefetchConfig",
    "PrefetchOutcome",
    "StagingBuffer",
    "GpuCacheStore",
    "PlacementDiff",
    "apply_diff_step",
    "fill_all",
    "fill_gpu",
    "placement_diff",
    "HotnessTracker",
    "degree_hotness",
    "hotness_skew",
    "presample_hotness",
    "MAX_OPTIMAL_ENTRIES",
    "approximation_gap",
    "solve_optimal",
    "Placement",
    "clique_partition_policy",
    "empty_placement",
    "hot_replicate_warm_partition_policy",
    "partition_policy",
    "replication_policy",
    "RefreshConfig",
    "RefreshInterrupted",
    "RefreshOutcome",
    "Refresher",
    "RefreshTimeline",
    "simulate_refresh_timeline",
    "FallbackConfig",
    "PolicyOutcome",
    "PolicySolveError",
    "PolicySolveTimeout",
    "SolvedPolicy",
    "SolverConfig",
    "clear_policy_cache",
    "dedication_ratios",
    "last_known_good",
    "remember_policy",
    "solve_policy",
    "solve_policy_with_fallback",
]
