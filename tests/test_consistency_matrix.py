"""Cross-component consistency: the same quantity computed two ways agrees.

Each test computes one observable through two independent code paths —
e.g. hit rates from the resolver vs volume splits from the simulator —
and asserts agreement.  These invariants are what keep the figure drivers
trustworthy: every figure mixes at least two of these components.
"""

import numpy as np
import pytest

from repro.core.evaluate import (
    evaluate_placement,
    expected_demands,
    hit_rates,
    resolve_sources,
)
from repro.core.policy import partition_policy, replication_policy
from repro.core.solver import SolverConfig, solve_policy
from repro.hardware.platform import HOST
from repro.sim.engine import simulate_batch
from repro.sim.mechanisms import Mechanism
from repro.sim.trace import trace_factored
from repro.utils.stats import zipf_pmf

HOT = zipf_pmf(1500, 1.15) * 20_000
EB = 256


@pytest.fixture(params=["replication", "partition", "solved"])
def placement(request, any_platform):
    cap = 150
    if request.param == "replication":
        return replication_policy(HOT, cap, any_platform.num_gpus)
    if request.param == "partition":
        return partition_policy(HOT, cap, any_platform.num_gpus)
    return solve_policy(
        any_platform, HOT, cap, EB, SolverConfig(coarse_block_frac=0.05)
    ).realize()


class TestHitRatesVsVolumes:
    def test_access_split_matches_hit_rates(self, any_platform, placement):
        """Simulator volume split == resolver hit rates (same masses)."""
        hits = hit_rates(any_platform, placement, HOT)
        report = evaluate_placement(any_platform, placement, HOT, EB)
        split = report.access_split()
        assert split["local"] == pytest.approx(hits.local, abs=1e-9)
        assert split["remote"] == pytest.approx(hits.remote, abs=1e-9)
        assert split["host"] == pytest.approx(hits.host, abs=1e-9)

    def test_demand_volumes_match_source_map_mass(self, any_platform, placement):
        source_map = resolve_sources(any_platform, placement)
        demands = expected_demands(any_platform, placement, HOT, EB, source_map)
        for dst, demand in enumerate(demands):
            for src, volume in demand.volumes.items():
                mask = source_map[dst] == src
                assert volume == pytest.approx(HOT[mask].sum() * EB)


class TestTraceVsUtilization:
    def test_trace_busy_time_equals_volume_over_bandwidth(self, platform_a):
        placement = partition_policy(HOT, 150, 4)
        demands = expected_demands(platform_a, placement, HOT, EB)
        trace = trace_factored(platform_a, demands[0])
        for group in trace.groups:
            bw = min(
                group.cores * platform_a.gpu.per_core_bandwidth,
                platform_a.bandwidth(0, group.source),
            )
            # group.cores is the tolerance-clamped busy count; the rate is
            # set by the (possibly larger) dedicated count, so allow the
            # rounding gap between the two.
            assert group.duration == pytest.approx(group.volume / bw, rel=0.05)

    def test_every_source_in_demand_appears_in_trace(self, platform_a):
        placement = partition_policy(HOT, 150, 4)
        demand = expected_demands(platform_a, placement, HOT, EB)[0]
        trace = trace_factored(platform_a, demand)
        traced = {g.source for g in trace.groups}
        if trace.local_volume > 0:
            traced.add(0)
        expected = {s for s, v in demand.volumes.items() if v > 0}
        assert traced == expected


class TestSolverEstimateVsSimulator:
    @pytest.mark.parametrize("ratio", [0.05, 0.2])
    def test_estimate_brackets_simulation(self, any_platform, ratio):
        cap = int(ratio * len(HOT))
        solved = solve_policy(
            any_platform, HOT, cap, EB, SolverConfig(coarse_block_frac=0.005)
        )
        simulated = evaluate_placement(
            any_platform, solved.realize(), HOT, EB, Mechanism.FACTORED
        ).time
        # At tiny capacities the LP relaxation is genuinely loose for
        # ultra-hot single-entry blocks (the paper's binary MILP does not
        # face this); realization + load-balanced resolution keeps the
        # realized time within ~1.6x of the estimate even there, and the
        # two coincide at moderate capacity.
        assert simulated == pytest.approx(solved.est_time, rel=0.8)


class TestEngineVsPerGpuModels:
    def test_engine_factored_equals_direct_calls(self, platform_a):
        from repro.sim.mechanisms import GpuDemand, factored_extraction

        demands = [
            GpuDemand(dst=g, volumes={g: 5e6, (g + 1) % 4: 2e6, HOST: 1e6})
            for g in range(4)
        ]
        report = simulate_batch(platform_a, demands, Mechanism.FACTORED)
        for demand, gpu_report in zip(demands, report.per_gpu):
            direct = factored_extraction(platform_a, demand)
            assert gpu_report.time == pytest.approx(direct.time)

    def test_message_symmetry_across_gpus(self, platform_c):
        from repro.sim.mechanisms import GpuDemand

        demands = [
            GpuDemand(dst=g, volumes={(g + 1) % 8: 4e6}) for g in range(8)
        ]
        report = simulate_batch(platform_c, demands, Mechanism.MESSAGE)
        times = {round(r.time, 12) for r in report.per_gpu}
        assert len(times) == 1
