"""Link-utilization accounting during extraction — paper Figure 13.

The paper measures PCIe and NVLink busy fractions with Nsight during
embedding extraction, showing that FEM raises utilization by avoiding core
stalls (PCIe ×1.91, NVLink ×3.47 on average).  We compute the same
quantity analytically: for each link class, the time the wire is actually
moving bytes divided by the batch extraction time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import Platform
from repro.sim.engine import BatchReport


@dataclass(frozen=True)
class LinkUtilization:
    """Busy fractions (0..1) of each link class during one batch."""

    pcie: float
    nvlink: float

    def as_percent(self) -> dict[str, float]:
        return {"pcie": 100.0 * self.pcie, "nvlink": 100.0 * self.nvlink}


def batch_utilization(platform: Platform, report: BatchReport) -> LinkUtilization:
    """Average PCIe and NVLink utilization over one batch.

    For each GPU the wire-busy time of a link class is the bytes moved over
    it divided by its peak bandwidth; dividing by the batch time gives the
    utilization the profiler would sample.  NVLink capacity is each GPU's
    inbound NVLink bandwidth (the fabric share actually reachable by its
    reads), so a mechanism that stalls cores — stretching batch time
    without moving more bytes — shows up as low utilization, exactly as in
    the paper's measurement.
    """
    total_time = report.time
    if total_time <= 0:
        return LinkUtilization(pcie=0.0, nvlink=0.0)

    pcie_fracs: list[float] = []
    nvlink_fracs: list[float] = []
    for gpu_report in report.per_gpu:
        dst = gpu_report.dst
        host_bytes = gpu_report.volume_host()
        pcie_fracs.append(host_bytes / platform.pcie_bandwidth / total_time)

        remote_bytes = gpu_report.volume_remote()
        inbound_bw = sum(
            platform.bandwidth(dst, src) for src in platform.topology.peers(dst)
        )
        if inbound_bw > 0:
            nvlink_fracs.append(remote_bytes / inbound_bw / total_time)

    pcie = min(1.0, sum(pcie_fracs) / len(pcie_fracs)) if pcie_fracs else 0.0
    nvlink = min(1.0, sum(nvlink_fracs) / len(nvlink_fracs)) if nvlink_fracs else 0.0
    return LinkUtilization(pcie=pcie, nvlink=nvlink)
