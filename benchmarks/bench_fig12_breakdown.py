"""Figure 12: incremental techniques (PartU → +Policy → UGache)."""

from repro.bench.experiments import fig12_incremental
from repro.bench.plotting import line_chart


def bench_fig12_breakdown(run_experiment, capsys):
    result = run_experiment(fig12_incremental)
    with capsys.disabled():
        for dataset in ("pa", "cf"):
            rows = [r for r in result.rows if r["dataset"] == dataset]
            print(f"\n[{dataset}]")
            print(line_chart(
                [r["cache_ratio_pct"] for r in rows],
                {
                    "RepU": [r["RepU_ms"] for r in rows],
                    "PartU": [r["PartU_ms"] for r in rows],
                    "+Policy": [r["plus_policy_ms"] for r in rows],
                    "UGache": [r["UGache_ms"] for r in rows],
                },
                x_label="cache ratio %",
                y_label="extraction ms",
            ))
    for row in result.rows:
        # Each incremental technique helps (or at worst is neutral).
        assert row["plus_policy_ms"] <= row["PartU_ms"] * 1.05
        assert row["UGache_ms"] <= row["plus_policy_ms"] * 1.01
    # At low cache ratio the mechanism dominates; at high ratio the policy
    # does (§8.3): the policy-only gain grows with the cache ratio.
    pa = [r for r in result.rows if r["dataset"] == "pa"]
    low, high = pa[0], pa[-1]
    gain_low = low["PartU_ms"] / low["plus_policy_ms"]
    gain_high = high["PartU_ms"] / high["plus_policy_ms"]
    assert gain_high > gain_low
