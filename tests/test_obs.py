"""Observability: registry semantics, exporters, and hot-path wiring."""

import json

import numpy as np
import pytest

from repro.bench.harness import run_with_metrics
from repro.obs import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    get_registry,
    load_metrics,
    set_registry,
    span,
    summarize,
    timer,
    to_prometheus_text,
    use_registry,
    write_json,
    write_jsonl,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.value("c") == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("keys", source="local").inc(3)
        reg.counter("keys", source="host").inc(4)
        assert reg.value("keys", source="local") == 3
        assert reg.value("keys", source="host") == 4
        assert reg.value("keys") is None

    def test_same_series_is_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)


class TestGauge:
    def test_set_and_adjust(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.inc(-2.0)
        assert reg.value("g") == 3.0


class TestHistogram:
    def test_count_sum_min_max(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.111)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        assert h.mean == pytest.approx(0.037)

    def test_bucket_counts_total_matches(self):
        h = MetricsRegistry().histogram("h")
        rng = np.random.default_rng(0)
        for v in rng.lognormal(size=200):
            h.observe(v)
        assert sum(h.bucket_counts) == 200

    def test_overflow_and_nonpositive_observations(self):
        h = MetricsRegistry().histogram("h")
        h.observe(0.0)  # below the first bound
        h.observe(1e12)  # above the last bound
        assert h.bucket_counts[0] == 1
        assert h.bucket_counts[-1] == 1
        assert h.count == 2

    def test_percentile_within_observed_range(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.002, 0.004, 0.2):
            h.observe(v)
        assert h.min <= h.percentile(50) <= h.max
        assert h.percentile(100) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_buckets_are_fixed_and_increasing(self):
        bounds = np.asarray(BUCKET_BOUNDS)
        assert (np.diff(bounds) > 0).all()
        assert bounds[0] == pytest.approx(1e-9)


class TestRegistry:
    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        assert list(reg.series()) == []
        assert reg.snapshot()["metrics"] == []

    def test_use_registry_swaps_and_restores(self):
        outer = get_registry()
        private = MetricsRegistry("private")
        with use_registry(private):
            assert get_registry() is private
            get_registry().counter("c").inc()
        assert get_registry() is outer
        assert private.value("c") == 1

    def test_set_registry_returns_previous(self):
        previous = set_registry(MetricsRegistry("tmp"))
        try:
            assert get_registry().name == "tmp"
        finally:
            set_registry(previous)

    def test_reset_clears_series(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert list(reg.series()) == []


class TestTracing:
    def test_timer_observes_histogram(self):
        reg = MetricsRegistry()
        with timer("t.seconds", reg):
            pass
        h = reg.histogram("t.seconds")
        assert h.count == 1
        assert h.min >= 0

    def test_span_noop_unless_tracing_enabled(self):
        reg = MetricsRegistry()
        with span("quiet", reg):
            pass
        assert reg.spans == []
        reg.tracing_enabled = True
        with span("loud", reg, gpu=0) as s:
            s.set(keys=128)
        assert len(reg.spans) == 1
        record = reg.spans[0]
        assert record.name == "loud"
        assert record.attrs == {"gpu": 0, "keys": 128}

    def test_span_attrs_captured(self):
        reg = MetricsRegistry()
        reg.tracing_enabled = True
        with span("s", reg, gpu=3) as s:
            s.set(keys=7)
        assert reg.spans[0].attrs == {"gpu": 3, "keys": 7}
        assert reg.spans[0].duration >= 0


class TestExport:
    def _populated(self):
        reg = MetricsRegistry("roundtrip")
        reg.counter("cache.lookup.keys", source="local").inc(10)
        reg.gauge("cache.hit_rate", source="local").set(0.9)
        h = reg.histogram("solver.solve.seconds")
        h.observe(0.5)
        h.observe(0.05)
        return reg

    def test_json_roundtrip(self, tmp_path):
        reg = self._populated()
        path = write_json(reg, tmp_path / "m.json")
        doc = load_metrics(path)
        assert doc["schema"] == "repro.obs/v1"
        assert doc["registry"] == "roundtrip"
        by_name = {(m["name"], tuple(sorted(m["labels"].items()))): m
                   for m in doc["metrics"]}
        assert by_name[("cache.lookup.keys", (("source", "local"),))]["value"] == 10
        hist = by_name[("solver.solve.seconds", ())]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.55)

    def test_jsonl_roundtrip_matches_json(self, tmp_path):
        reg = self._populated()
        json_doc = load_metrics(write_json(reg, tmp_path / "m.json"))
        jsonl_doc = load_metrics(write_jsonl(reg, tmp_path / "m.jsonl"))
        assert jsonl_doc["metrics"] == json_doc["metrics"]
        assert jsonl_doc["registry"] == json_doc["registry"]

    def test_prometheus_text_format(self):
        text = to_prometheus_text(self._populated())
        assert '# TYPE repro_cache_lookup_keys counter' in text
        assert 'repro_cache_lookup_keys{source="local"} 10' in text
        assert 'repro_solver_solve_seconds_count 2' in text
        assert 'le="+Inf"' in text

    def test_prometheus_bucket_counts_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (0.01, 0.01, 100.0):
            h.observe(v)
        lines = [l for l in to_prometheus_text(reg).splitlines() if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_summarize_mentions_series(self):
        text = summarize(self._populated().snapshot())
        assert "cache.lookup.keys{source=local}" in text
        assert "solver.solve.seconds" in text
        assert "count=2" in text


class TestHotPathWiring:
    """The instrumented runtime actually records what the README promises."""

    def _cache(self, platform, table, hotness):
        from repro.core.cache import MultiGpuEmbeddingCache
        from repro.core.policy import partition_policy

        placement = partition_policy(hotness, 200, platform.num_gpus)
        return MultiGpuEmbeddingCache(platform, table, placement)

    def test_lookup_records_hit_split(self, platform_a, small_table, skewed_hotness):
        cache = self._cache(platform_a, small_table, skewed_hotness)
        reg = MetricsRegistry("t")
        with use_registry(reg):
            cache.lookup(0, np.arange(800))
        total = sum(
            reg.value("cache.lookup.keys", source=s) or 0
            for s in ("local", "remote", "host")
        )
        assert total == 800
        assert reg.value("cache.lookup.calls") == 1

    def test_extractor_records_plan_and_execute(
        self, platform_a, small_table, skewed_hotness
    ):
        from repro.core.extractor import FactoredExtractor

        cache = self._cache(platform_a, small_table, skewed_hotness)
        extractor = FactoredExtractor(cache)
        reg = MetricsRegistry("t")
        with use_registry(reg):
            plan = extractor.plan(0, np.arange(800))
            extractor.execute(plan)
        assert reg.value("extractor.plan.calls") == 1
        assert reg.value("extractor.execute.calls") == 1
        assert reg.histogram("extractor.plan.seconds").count == 1
        assert reg.histogram("extractor.execute.seconds").count == 1
        executed = sum(
            reg.value("extractor.execute.bytes", source=s) or 0
            for s in ("local", "remote", "host")
        )
        assert executed == 800 * cache.entry_bytes

    def test_simulate_batch_records_per_gpu_timing(self, platform_a):
        from repro.sim.engine import simulate_batch
        from repro.sim.mechanisms import GpuDemand

        demands = [
            GpuDemand(dst=i, volumes={i: 1e6}) for i in platform_a.gpu_ids
        ]
        reg = MetricsRegistry("t")
        with use_registry(reg):
            simulate_batch(platform_a, demands)
        for i in platform_a.gpu_ids:
            assert reg.histogram("extract.gpu_seconds", gpu=i).count == 1
        assert reg.value("extract.volume_bytes", source="local") == pytest.approx(
            4e6
        )

    def test_solver_records_build_and_solve(self, platform_a, skewed_hotness):
        from repro.core.solver import solve_policy

        reg = MetricsRegistry("t")
        with use_registry(reg):
            solve_policy(platform_a, skewed_hotness, 200, 32)
        assert reg.value("solver.solves") == 1
        assert reg.histogram("solver.solve.seconds").count == 1
        assert reg.histogram("solver.build.seconds").count == 1
        assert reg.value("solver.num_variables") > 0
        assert reg.value("solver.num_constraints") > 0

    def test_refresher_records_swap_and_staleness(
        self, platform_a, small_table, skewed_hotness
    ):
        from repro.core.policy import partition_policy, replication_policy
        from repro.core.refresher import Refresher

        cache = self._cache(platform_a, small_table, skewed_hotness)
        refresher = Refresher(cache)
        reg = MetricsRegistry("t")
        with use_registry(reg):
            outcome = refresher.refresh(
                replication_policy(skewed_hotness, 200, platform_a.num_gpus)
            )
        assert outcome.triggered
        assert reg.value("refresher.refreshes") == 1
        assert reg.value("refresher.entries_moved") == outcome.entries_moved
        assert reg.histogram("refresher.swap.seconds").count == 1
        assert reg.histogram("refresher.staleness.seconds").count == 1


class TestRunWithMetrics:
    def test_driver_artifact_is_parseable_and_complete(self, tmp_path):
        """One benchmark-driver run emits a machine-readable artifact."""
        from repro.bench.contexts import platform_by_name
        from repro.core.evaluate import evaluate_placement, hit_rates
        from repro.core.solver import SolverConfig, solve_policy
        from repro.bench.harness import ExperimentResult
        from repro.utils.stats import zipf_pmf

        def tiny_driver() -> ExperimentResult:
            platform = platform_by_name("server-a")
            hotness = zipf_pmf(600, 1.2) * 1000.0
            solved = solve_policy(
                platform, hotness, 60, 64, SolverConfig(coarse_block_frac=0.1)
            )
            placement = solved.realize()
            hit_rates(platform, placement, hotness)
            evaluate_placement(platform, placement, hotness, 64)
            return ExperimentResult(experiment="tiny", title="tiny")

        out = tmp_path / "metrics.json"
        result = run_with_metrics(tiny_driver, metrics_out=out)
        assert result.metrics is not None
        doc = load_metrics(out)
        names = {m["name"] for m in doc["metrics"]}
        # The acceptance triad: hit split, per-GPU timing, solver time.
        assert "cache.hit_rate" in names
        assert "extract.gpu_seconds" in names
        assert "solver.solve.seconds" in names

    def test_global_registry_untouched(self):
        from repro.bench.harness import ExperimentResult

        marker = "obs.test.isolated"

        def driver():
            get_registry().counter(marker).inc()
            return ExperimentResult(experiment="e", title="t")

        result = run_with_metrics(driver)
        assert get_registry().value(marker) is None
        assert any(m["name"] == marker for m in result.metrics["metrics"])
