"""Core-count bandwidth model — the Figure 6 microbenchmark.

Figure 6 measures, for one destination GPU, the extraction bandwidth
achieved from each source (local HBM, a remote GPU, host DRAM) as a
function of the number of SMs participating.  The observed shape is linear
scaling at ``per_core_bandwidth`` per SM until the path's peak bandwidth,
then a flat plateau: extra SMs add nothing and merely stall.

This module exposes that curve so the microbenchmark can be regenerated
and so the simulator and tests share one definition of "link tolerance".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.platform import HOST, Platform


def achieved_bandwidth(
    platform: Platform,
    dst: int,
    src: int,
    num_cores: int,
    concurrent_readers: int = 1,
) -> float:
    """Bandwidth GPU ``dst`` achieves reading ``src`` with ``num_cores`` SMs.

    ``concurrent_readers`` models the right half of Figure 6(b): on a
    switch platform, ``k`` GPUs simultaneously pulling from the same source
    share its outbound bandwidth, so each reader's plateau drops to
    ``outbound / k``.  Hard-wired pair links are physically dedicated, so
    the parameter has no effect there (or for local/host paths).
    """
    if num_cores < 0:
        raise ValueError("core count must be non-negative")
    if concurrent_readers < 1:
        raise ValueError("at least one reader must be present")
    num_cores = min(num_cores, platform.gpu.num_cores)
    linear = num_cores * platform.gpu.per_core_bandwidth
    peak = platform.peak_pair_bandwidth(dst, src)
    if src not in (dst, HOST) and platform.topology.kind.value == "switch":
        peak = peak / concurrent_readers
    return float(min(linear, peak))


@dataclass(frozen=True)
class ToleranceCurve:
    """A sampled Figure-6 curve: bandwidth vs number of cores."""

    source_label: str
    cores: np.ndarray
    bandwidth: np.ndarray

    @property
    def plateau_bandwidth(self) -> float:
        """Peak sustained bandwidth of this path, bytes/second."""
        return float(self.bandwidth.max(initial=0.0))

    @property
    def saturation_cores(self) -> int:
        """Smallest sampled core count reaching ≥99% of the plateau."""
        plateau = self.plateau_bandwidth
        if plateau <= 0:
            return 0
        mask = self.bandwidth >= 0.99 * plateau
        return int(self.cores[np.argmax(mask)])


def tolerance_curves(
    platform: Platform, dst: int = 0, concurrent_readers: int = 1
) -> list[ToleranceCurve]:
    """Regenerate Figure 6 for a platform: one curve per source class.

    Returns curves for host (``CPU``), local HBM (``Local``), and one
    representative remote GPU per distinct pair bandwidth (hard-wired
    platforms have several; a switch platform has one).
    """
    cores = np.arange(0, platform.gpu.num_cores + 1)
    curves = [
        _sample(platform, dst, HOST, cores, "CPU", 1),
        _sample(platform, dst, dst, cores, "Local", 1),
    ]
    seen_bandwidths: set[float] = set()
    for src in platform.topology.peers(dst):
        pair_bw = platform.peak_pair_bandwidth(dst, src)
        if pair_bw in seen_bandwidths:
            continue
        seen_bandwidths.add(pair_bw)
        curves.append(
            _sample(
                platform,
                dst,
                src,
                cores,
                f"Remote(G{dst}<-G{src})",
                concurrent_readers,
            )
        )
    return curves


def _sample(
    platform: Platform,
    dst: int,
    src: int,
    cores: np.ndarray,
    label: str,
    concurrent_readers: int,
) -> ToleranceCurve:
    bandwidth = np.array(
        [
            achieved_bandwidth(platform, dst, src, int(c), concurrent_readers)
            for c in cores
        ]
    )
    return ToleranceCurve(source_label=label, cores=cores, bandwidth=bandwidth)
