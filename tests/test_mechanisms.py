"""Extraction mechanism timing models (§3.2 / §5.3)."""

import pytest

from repro.hardware.platform import HOST
from repro.sim.mechanisms import (
    GpuDemand,
    Mechanism,
    core_dedication,
    factored_extraction,
    message_extraction,
    naive_peer_extraction,
)


def _demand(dst, **volumes):
    vols = {}
    for key, val in volumes.items():
        src = HOST if key == "host" else int(key.lstrip("g"))
        vols[src] = val
    return GpuDemand(dst=dst, volumes=vols)


class TestGpuDemand:
    def test_total_bytes(self):
        d = _demand(0, g0=10.0, host=5.0)
        assert d.total_bytes == 15.0

    def test_nonlocal_sources(self):
        d = _demand(0, g0=1.0, g1=2.0, host=3.0)
        assert d.nonlocal_sources == [1, HOST] or set(d.nonlocal_sources) == {1, HOST}

    def test_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            GpuDemand(dst=0, volumes={0: -1.0})


class TestCoreDedication:
    def test_host_gets_few_cores(self, platform_c):
        ded = core_dedication(platform_c, 0, [0, 1, HOST])
        assert 1 <= ded[HOST] <= platform_c.gpu.num_cores // 4

    def test_switch_equal_split(self, platform_c):
        ded = core_dedication(platform_c, 0, [0, 1, 2, 3, HOST])
        assert ded[1] == ded[2] == ded[3]

    def test_switch_split_is_per_peer_count(self, platform_c):
        # Claims stay at outbound/(N-1) even with few active sources.
        ded = core_dedication(platform_c, 0, [0, 1, HOST])
        expected = (platform_c.gpu.num_cores - ded[HOST]) // 7
        assert ded[1] == expected

    def test_hardwired_proportional_to_bandwidth(self, platform_b):
        # GPU0's peers: 3 (2 lanes), 4 (2 lanes), 1 (1 lane), 2 (1 lane).
        ded = core_dedication(platform_b, 0, [0, 1, 2, 3, 4, HOST])
        assert ded[3] > ded[1]
        assert ded[3] == pytest.approx(2 * ded[1], abs=2)

    def test_total_never_exceeds_cores(self, any_platform):
        sources = any_platform.sources_for(0)
        ded = core_dedication(any_platform, 0, sources)
        assert sum(ded.values()) <= any_platform.gpu.num_cores

    def test_local_not_in_dedication(self, platform_a):
        ded = core_dedication(platform_a, 0, [0, 1, HOST])
        assert 0 not in ded


class TestFactoredExtraction:
    def test_local_only_time(self, platform_c):
        vol = 65e6
        report = factored_extraction(platform_c, _demand(0, g0=vol))
        assert report.time == pytest.approx(vol / platform_c.gpu.local_bandwidth)

    def test_host_only_time(self, platform_a):
        vol = 16e6
        report = factored_extraction(platform_a, _demand(0, host=vol))
        # Dedicated host cores run the link at (close to) PCIe speed.
        assert report.time == pytest.approx(vol / platform_a.pcie_bandwidth, rel=0.3)

    def test_remote_runs_at_link_bandwidth(self, platform_a):
        vol = 50e6
        report = factored_extraction(platform_a, _demand(0, g1=vol))
        assert report.time == pytest.approx(vol / 50e9, rel=0.3)

    def test_padding_hides_local_work(self, platform_c):
        # Local work that fits in the ragged time is free with padding.
        remote_only = factored_extraction(platform_c, _demand(0, g1=40e6))
        with_local = factored_extraction(platform_c, _demand(0, g1=40e6, g0=1e6))
        assert with_local.time == pytest.approx(remote_only.time, rel=0.05)

    def test_no_padding_serializes_local(self, platform_c):
        padded = factored_extraction(platform_c, _demand(0, g1=40e6, g0=30e6))
        serial = factored_extraction(
            platform_c, _demand(0, g1=40e6, g0=30e6), local_padding=False
        )
        assert serial.time > padded.time

    def test_parallel_groups_beat_serial_sum(self, platform_a):
        d = _demand(0, g1=20e6, g2=20e6, g3=20e6)
        report = factored_extraction(platform_a, d)
        serial = sum(20e6 / 50e9 for _ in range(3))
        assert report.time < serial

    def test_work_conservation_bound(self, platform_c):
        # Enough local volume forces the work-conservation term.
        d = _demand(0, g0=650e6, g1=1e6)
        report = factored_extraction(platform_c, d)
        local_floor = 650e6 / platform_c.gpu.local_bandwidth
        assert report.time >= local_floor

    def test_mechanism_tag(self, platform_a):
        assert (
            factored_extraction(platform_a, _demand(0, g0=1.0)).mechanism
            is Mechanism.FACTORED
        )


class TestNaivePeer:
    def test_matches_factored_on_pure_local(self, platform_c):
        d = _demand(0, g0=65e6)
        naive = naive_peer_extraction(platform_c, d)
        fem = factored_extraction(platform_c, d)
        assert naive.time == pytest.approx(fem.time, rel=0.01)

    def test_slower_than_factored_under_congestion(self, platform_a):
        # Host + local mix: random dispatch stalls cores on PCIe.
        d = _demand(0, g0=50e6, g1=30e6, host=20e6)
        naive = naive_peer_extraction(platform_a, d)
        fem = factored_extraction(platform_a, d)
        assert naive.time > fem.time

    def test_congestion_loss_bounded_at_2x_per_link(self, platform_a):
        d = _demand(0, host=16e6)
        naive = naive_peer_extraction(platform_a, d)
        floor = 16e6 / platform_a.pcie_bandwidth
        assert floor <= naive.time <= 2.1 * floor

    def test_switch_collisions_hurt(self, platform_c):
        d = _demand(0, g1=40e6)
        alone = naive_peer_extraction(platform_c, d, readers_per_source={1: 1})
        crowded = naive_peer_extraction(platform_c, d, readers_per_source={1: 7})
        assert crowded.time > alone.time


class TestMessage:
    def _partition_demands(self, platform, per_gpu_vol=10e6):
        demands = []
        for dst in platform.gpu_ids:
            vols = {}
            for src in platform.gpu_ids:
                vols[src] = per_gpu_vol
            demands.append(GpuDemand(dst=dst, volumes=vols))
        return demands

    def test_all_gpus_report_same_time(self, platform_c):
        reports = message_extraction(platform_c, self._partition_demands(platform_c))
        times = {round(r.time, 9) for r in reports}
        assert len(times) == 1

    def test_slower_than_factored(self, platform_c):
        demands = self._partition_demands(platform_c)
        msg = message_extraction(platform_c, demands)[0].time
        fem = max(factored_extraction(platform_c, d).time for d in demands)
        assert msg > fem

    def test_unconnected_pairs_fall_back_to_pcie(self, platform_b):
        # GPU0 ← GPU5 is unconnected on DGX-1; message routing still works.
        demands = [GpuDemand(dst=0, volumes={5: 10e6})]
        report = message_extraction(platform_b, demands)[0]
        assert report.time >= 10e6 / platform_b.pcie_bandwidth

    def test_includes_stage_overheads(self, platform_c):
        report = message_extraction(platform_c, [GpuDemand(dst=0, volumes={1: 1.0})])[0]
        assert report.time >= 3 * 30e-6

    def test_empty_demands(self, platform_c):
        assert message_extraction(platform_c, []) == []

    def test_rejects_duplicate_dst(self, platform_c):
        demands = [GpuDemand(dst=0, volumes={1: 1.0})] * 2
        with pytest.raises(ValueError):
            message_extraction(platform_c, demands)


class TestReportAccessors:
    def test_volume_split(self, platform_a):
        report = factored_extraction(platform_a, _demand(1, g1=5.0, g2=3.0, host=2.0))
        assert report.volume_local() == 5.0
        assert report.volume_remote() == 3.0
        assert report.volume_host() == 2.0
