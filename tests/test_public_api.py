"""Public API integrity: exports resolve, version present, docs exist."""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.hardware",
    "repro.sim",
    "repro.datasets",
    "repro.gnn",
    "repro.dlr",
    "repro.baselines",
    "repro.framework",
    "repro.bench",
    "repro.obs",
    "repro.faults",
    "repro.serve",
    "repro.utils",
]


class TestExports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        assert exported, f"{name} must declare __all__"
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_covers_primary_workflow(self):
        import repro

        for symbol in (
            "UGacheEmbeddingLayer",
            "EmbeddingLayerConfig",
            "solve_policy",
            "server_a",
            "server_b",
            "server_c",
            "Mechanism",
            "simulate_batch",
        ):
            assert symbol in repro.__all__

    def test_no_duplicate_exports(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            exported = getattr(module, "__all__", [])
            assert len(exported) == len(set(exported)), f"duplicates in {name}.__all__"


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_module_docstrings(self, name):
        module = importlib.import_module(name)
        assert (module.__doc__ or "").strip(), f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert (obj.__doc__ or "").strip(), f"{name}.{symbol} lacks a docstring"

    def test_public_methods_documented_on_core_classes(self):
        from repro.core import MultiGpuEmbeddingCache, UGacheEmbeddingLayer
        from repro.core.solver import SolvedPolicy

        for cls in (MultiGpuEmbeddingCache, UGacheEmbeddingLayer, SolvedPolicy):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.isfunction(member):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name} undocumented"
