"""Capacity planner, platform profiler, and drifting traces."""

import numpy as np
import pytest

from repro.core.planner import plan_capacity
from repro.core.solver import SolverConfig
from repro.dlr.drift import DriftingTrace, hot_set_overlap
from repro.dlr.workload import DlrWorkload
from repro.hardware.profiler import profile_platform, verify_profile
from repro.utils.stats import zipf_pmf

FAST = SolverConfig(coarse_block_frac=0.05)


class TestCapacityPlanner:
    @pytest.fixture
    def hotness(self):
        return zipf_pmf(2000, 1.2) * 50_000

    def test_finds_small_ratio_for_loose_target(self, platform_c, hotness):
        loose = 1.0  # a full second: trivially satisfiable
        plan = plan_capacity(platform_c, hotness, 512, loose, solver=FAST)
        assert plan.feasible
        assert plan.cache_ratio == 0.0

    def test_infeasible_target_detected(self, platform_c, hotness):
        plan = plan_capacity(platform_c, hotness, 512, 1e-12, solver=FAST)
        assert not plan.feasible
        assert plan.cache_ratio == 1.0

    def test_bisection_meets_target(self, platform_c, hotness):
        # Pick a target between the all-host and all-local extremes.
        none = plan_capacity(platform_c, hotness, 512, 1.0, solver=FAST)
        floor = none.steps[0].extraction_time  # ratio=1.0 probe
        zero_time = none.steps[1].extraction_time  # ratio=0.0 probe
        target = (floor + zero_time) / 4
        plan = plan_capacity(
            platform_c, hotness, 512, target, ratio_resolution=0.05, solver=FAST
        )
        assert plan.feasible
        assert plan.extraction_time <= target
        assert 0.0 < plan.cache_ratio < 1.0

    def test_steps_recorded(self, platform_c, hotness):
        plan = plan_capacity(platform_c, hotness, 512, 1.0, solver=FAST)
        assert len(plan.steps) >= 1

    def test_rejects_bad_args(self, platform_c, hotness):
        with pytest.raises(ValueError):
            plan_capacity(platform_c, hotness, 512, 0.0)
        with pytest.raises(ValueError):
            plan_capacity(platform_c, hotness, 512, 1.0, ratio_resolution=0.0)


class TestProfiler:
    def test_profile_matches_platform(self, any_platform):
        profile = profile_platform(any_platform)
        assert verify_profile(any_platform, profile)

    def test_sources_recorded(self, platform_b):
        profile = profile_platform(platform_b)
        # DGX-1 GPU 0 reaches 4 peers + itself + host.
        assert len(profile.sources[0]) == 6

    def test_tolerances_sane(self, platform_c):
        profile = profile_platform(platform_c)
        from repro.hardware.platform import HOST

        assert profile.tolerance[(0, HOST)] < profile.tolerance[(0, 0)]

    def test_bandwidth_matrix_shape(self, platform_a):
        profile = profile_platform(platform_a)
        matrix = profile.bandwidth_matrix()
        assert matrix.shape == (4, 5)
        assert matrix[0, 0] == pytest.approx(280, rel=0.01)  # local GB/s
        assert matrix[0, 4] == pytest.approx(16, rel=0.01)  # host GB/s

    def test_verify_detects_mismatch(self, platform_a, platform_c):
        profile = profile_platform(platform_a)
        # A profile from another machine must not verify.
        from dataclasses import replace

        wrong = replace(profile, cost_per_byte={
            k: v * 3 for k, v in profile.cost_per_byte.items()
        })
        assert not verify_profile(platform_a, wrong)

    def test_rejects_bad_probe_points(self, platform_a):
        with pytest.raises(ValueError):
            profile_platform(platform_a, probe_points=1)


class TestDriftingTrace:
    @pytest.fixture
    def base(self):
        return DlrWorkload(
            table_sizes=(500, 300), alpha=1.2, batch_size=64, num_gpus=2, seed=0
        )

    def test_day_count(self, base):
        trace = DriftingTrace(base=base, churn=0.1, num_days=4)
        assert len(list(trace.days())) == 4

    def test_zero_churn_is_static(self, base):
        trace = DriftingTrace(base=base, churn=0.0, num_days=3)
        days = list(trace.days())
        assert np.allclose(days[0].hotness(), days[-1].hotness())

    def test_consecutive_days_highly_alike(self, base):
        # §2: "hot entries in different daily traces are highly alike".
        trace = DriftingTrace(base=base, churn=0.1, num_days=3, seed=1)
        days = list(trace.days())
        assert hot_set_overlap(days[0], days[1], top_frac=0.05) > 0.5

    def test_churn_accumulates(self, base):
        trace = DriftingTrace(base=base, churn=0.3, num_days=8, seed=1)
        days = list(trace.days())
        near = hot_set_overlap(days[0], days[1], top_frac=0.05)
        far = hot_set_overlap(days[0], days[-1], top_frac=0.05)
        assert far <= near

    def test_mass_conserved(self, base):
        trace = DriftingTrace(base=base, churn=0.5, num_days=3)
        for day in trace.days():
            assert day.hotness().sum() == pytest.approx(base.hotness().sum())

    def test_batches_respect_drifted_hot_set(self, base):
        trace = DriftingTrace(base=base, churn=0.5, num_days=2, seed=3)
        days = list(trace.days())
        last = days[-1]
        hot = last.hotness()
        counts = np.zeros(last.num_entries)
        for batch in last.take_batches(20, seed=9):
            counts += np.bincount(batch[0], minlength=last.num_entries)
        # Empirical frequency tracks the drifted analytic hotness.
        top = np.argsort(-hot)[:5]
        assert counts[top].sum() > counts.sum() * 0.2

    def test_validation(self, base):
        with pytest.raises(ValueError):
            DriftingTrace(base=base, churn=1.5)
        with pytest.raises(ValueError):
            DriftingTrace(base=base, num_days=0)
        with pytest.raises(ValueError):
            hot_set_overlap(base, base, top_frac=0.0)


class TestWorkloadPermutationsParam:
    def test_explicit_permutations_used(self):
        perm = (np.array([2, 0, 1]),)
        wl = DlrWorkload(table_sizes=(3,), alpha=1.0, batch_size=4,
                         num_gpus=1, permutations=perm)
        hot = wl.hotness()
        # Rank-0 (most popular) maps to entry perm[0] = 2.
        assert hot.argmax() == 2

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            DlrWorkload(table_sizes=(3,), alpha=1.0,
                        permutations=(np.array([0, 0, 1]),))
        with pytest.raises(ValueError):
            DlrWorkload(table_sizes=(3, 4), alpha=1.0,
                        permutations=(np.array([0, 1, 2]),))
