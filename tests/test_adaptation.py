"""Drift adaptation: detector mechanics, adapter loop, drift soak smoke."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.drift_adapt import DriftDetector, DriftDetectorConfig
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.dlr.drift import DRIFT_SCENARIOS, build_drift_schedule
from repro.hardware.platform import server_a
from repro.serve import (
    AdaptationConfig,
    DriftAdapter,
    PolicyManager,
    SoakConfig,
    run_soak,
)
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.drift

N = 1200


def _make_detector(**over):
    cfg = DriftDetectorConfig(**{"min_batches": 0, **over})
    snapshot = zipf_pmf(N, 1.1) * 256
    return DriftDetector(snapshot, cfg), snapshot


def _drifted(snapshot):
    return np.roll(snapshot, N // 2)


class TestDriftDetector:
    def test_hysteresis_requires_consecutive_breaches(self):
        det, snap = _make_detector(hysteresis=3)
        bad = _drifted(snap)
        assert not det.check(bad).fired          # streak 1
        assert not det.check(snap).fired         # streak reset
        assert not det.check(bad).fired          # streak 1
        assert not det.check(bad).fired          # streak 2
        assert det.check(bad).fired              # streak 3 → fire
        assert det.detections == 1

    def test_cooldown_suppresses_refire(self):
        det, snap = _make_detector(hysteresis=1, cooldown_checks=3)
        bad = _drifted(snap)
        assert det.check(bad).fired
        for _ in range(3):
            s = det.check(bad)
            assert s.breached and not s.fired
        assert det.check(bad).fired
        assert det.detections == 2

    def test_rebase_clears_divergence(self):
        det, snap = _make_detector(hysteresis=1)
        bad = _drifted(snap)
        assert det.check(bad).fired
        det.rebase(bad)
        for _ in range(20):
            s = det.check(bad)
            assert not s.breached
        assert det.detections == 1

    def test_warmup_scores_but_never_breaches(self):
        det, snap = _make_detector(hysteresis=1, min_batches=16)
        bad = _drifted(snap)
        s = det.check(bad, batches=8)
        assert s.jaccard < 0.5 and not s.breached and not s.fired
        assert det.check(bad, batches=16).fired

    def test_tape_records_every_check(self):
        det, snap = _make_detector()
        for i in range(5):
            det.check(snap, at=float(i))
        assert [s.at for s in det.tape] == [0.0, 1.0, 2.0, 3.0, 4.0]
        d = det.tape[0].to_dict()
        assert set(d) == {"at", "jaccard", "rank_corr", "breached", "fired"}


def _adapter_rig(config=None):
    platform = server_a()
    rng = make_rng(0)
    table = rng.standard_normal((N, 8)).astype(np.float32)
    hotness = zipf_pmf(N, 1.1) * 1024
    cap = N // 8
    placement = hot_replicate_warm_partition_policy(
        hotness, cap, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    manager = PolicyManager(cache)
    adapter = DriftAdapter(manager, cap, hotness, config=config)
    return adapter, manager, hotness, cap


class TestDriftAdapter:
    def test_sample_every_bounds_recording(self):
        adapter, _m, _h, _cap = _adapter_rig(
            config=AdaptationConfig(sample_every=4)
        )
        keys = np.arange(32)
        for _ in range(16):
            adapter.observe(0, keys, now=0.0)
        assert adapter.observed == 16
        assert adapter.estimator.batches_recorded == 4

    def test_no_fire_no_resolve(self):
        """Stationary traffic: maybe_adapt checks but never re-solves."""
        adapter, manager, hotness, _cap = _adapter_rig(
            config=AdaptationConfig(check_every=4, min_batches=4)
        )
        rng = np.random.default_rng(0)
        pmf = hotness / hotness.sum()
        for i in range(32):
            adapter.observe(0, rng.choice(N, size=256, p=pmf), now=float(i))
            adapter.maybe_adapt(float(i))
        assert adapter.detections == 0 and adapter.resolves == 0
        assert manager.version == 0
        assert len(adapter.detector.tape) == 8  # 32 recorded / check_every=4

    def test_detect_resolve_swap_loop(self):
        """A rotated head fires the detector, re-solves, and lands a swap
        through the manager's guarded path."""
        adapter, manager, hotness, _cap = _adapter_rig(
            config=AdaptationConfig(
                check_every=4, min_batches=4, hysteresis=2, decay=0.8,
                hotness_scale=1.0,
            )
        )
        rng = np.random.default_rng(1)
        rolled = np.roll(hotness, N // 2)
        pmf = rolled / rolled.sum()
        report = None
        for i in range(64):
            adapter.observe(0, rng.choice(N, size=256, p=pmf), now=float(i))
            report = adapter.maybe_adapt(float(i)) or report
        assert adapter.detections >= 1
        assert adapter.resolves >= 1
        assert adapter.swaps_landed >= 1
        assert manager.version >= 1
        assert report is not None and report.swapped
        kinds = [e.kind for e in adapter.events]
        assert kinds[:3] == ["detect", "resolve", "swap"]
        # the landed swap rebased the detector and re-seeded the warm start
        assert adapter.warm is not None or adapter.events[-1].kind != "swap"

    def test_events_serialize(self):
        adapter, _m, hotness, _cap = _adapter_rig(
            config=AdaptationConfig(check_every=2, min_batches=2, hysteresis=1)
        )
        rng = np.random.default_rng(2)
        rolled = np.roll(hotness, N // 2)
        pmf = rolled / rolled.sum()
        for i in range(16):
            adapter.observe(0, rng.choice(N, size=256, p=pmf), now=float(i))
            adapter.maybe_adapt(float(i))
        assert adapter.events
        for e in adapter.events:
            d = e.to_dict()
            assert set(d) == {"at", "kind", "detail", "version"}


class TestDriftSchedules:
    @pytest.mark.parametrize("name", sorted(DRIFT_SCENARIOS))
    def test_schedule_shape(self, name):
        sched = build_drift_schedule(name, 2000, seed=3)
        assert sched.name == name
        assert sched.phases[0].start == 0.0
        assert len(sched.transitions) == len(sched.phases) - 1
        for phase in sched.phases:
            assert phase.pmf.shape == (2000,)
            assert phase.pmf.sum() == pytest.approx(1.0)
        # the pmf actually changes across each transition
        for frac in sched.transitions:
            before = sched.pmf_at(frac - 1e-6)
            after = sched.pmf_at(frac)
            assert np.abs(before - after).sum() > 0.1

    def test_phase_at_boundaries(self):
        sched = build_drift_schedule("rotating-head", 1000)
        assert sched.phase_at(0.0) == 0
        assert sched.phase_at(0.999) == len(sched.phases) - 1
        for k, t in enumerate(sched.transitions, start=1):
            assert sched.phase_at(t) == k
            assert sched.phase_at(t - 1e-6) == k - 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_drift_schedule("nope", 1000)


class TestDriftSoak:
    def test_adapt_soak_detects_and_swaps(self):
        """End-to-end: rotating-head drift is detected, incrementally
        re-solved, and swapped — and transition goodput beats adapt-off
        on the same seed."""
        base = SoakConfig.quick(seed=0, drift="rotating-head")
        off = run_soak(base)
        on = run_soak(SoakConfig.quick(seed=0, drift="rotating-head", adapt=True))

        assert on.adapt_enabled and not off.adapt_enabled
        assert on.drift_transitions == 2
        assert on.drift_detections >= 1
        assert on.adapt_resolves >= 1
        assert on.adapt_incremental_resolves >= 1
        assert on.adapt_swaps_landed >= 1
        assert on.drift_tape and on.adapt_events
        assert on.transition_goodput_ratio > off.transition_goodput_ratio

    def test_adapt_off_leaves_loop_untouched(self):
        r = run_soak(SoakConfig.quick(seed=1, drift="table-shift"))
        assert r.drift_scenario == "table-shift"
        assert r.drift_detections == 0
        assert r.adapt_events == [] and r.drift_tape == []
        assert r.transition_requests > 0

    def test_adapt_requires_drift(self):
        with pytest.raises(ValueError):
            SoakConfig.quick(adapt=True)

    def test_drift_rejects_cluster_mode(self):
        with pytest.raises(ValueError):
            SoakConfig.quick(drift="rotating-head", nodes=2)
