"""GNN training with UGache — the paper's first application domain (§8).

Trains supervised GraphSAGE over a synthetic power-law citation graph on
the modelled 8×A100 server: pre-samples one epoch to estimate hotness
(GNNLab-style, §6.1), builds the unified cache, then runs an epoch of
2-hop sampled mini-batches through it and compares against the
replication- and partition-cache baselines.

Run:  python examples/gnn_training.py
"""

import numpy as np

from repro import EmbeddingLayerConfig, Mechanism, UGacheEmbeddingLayer, server_c
from repro.core.evaluate import evaluate_placement, hit_rates
from repro.core.policy import partition_policy, replication_policy
from repro.gnn import GnnWorkload, power_law_graph

NUM_NODES, NUM_EDGES, DIM = 40_000, 800_000, 32
BATCH, NUM_GPUS = 512, 8
CACHE_RATIO = 0.08


def main() -> None:
    platform = server_c()
    rng = np.random.default_rng(0)

    print("generating power-law graph and embedding table...")
    graph = power_law_graph(NUM_NODES, NUM_EDGES, degree_alpha=1.2, seed=0)
    train_ids = rng.choice(NUM_NODES, size=NUM_NODES // 8, replace=False)
    table = rng.standard_normal((NUM_NODES, DIM)).astype(np.float32)
    workload = GnnWorkload(
        graph, train_ids, "sage-sup", batch_size=BATCH, num_gpus=NUM_GPUS
    )

    print("pre-sampling one epoch for hotness (§6.1)...")
    hotness = workload.presampled_hotness(seed=1)
    entry_bytes = DIM * 4
    capacity = int(CACHE_RATIO * NUM_NODES)

    layer = UGacheEmbeddingLayer(
        platform, table, hotness, EmbeddingLayerConfig(capacity_entries=capacity)
    )

    print(f"\ntraining one epoch ({workload.iterations_per_epoch()} iterations):")
    epoch_time = 0.0
    for it, batches in enumerate(workload.epoch(seed=2)):
        values, report = layer.extract(batches)
        # `values[g]` would now feed GPU g's GraphSAGE forward pass.
        assert values[0].shape[1] == DIM
        epoch_time += report.time
        if it < 3:
            split = report.access_split()
            print(f"  iter {it}: {report.time * 1e3:7.3f} ms extraction  "
                  f"(local {split['local']:.0%}, remote {split['remote']:.0%}, "
                  f"host {split['host']:.0%})")
    print(f"epoch embedding-extraction total: {epoch_time * 1e3:.2f} ms (simulated)")

    print("\nversus the §8.1 baseline policies (same factored mechanism):")
    for name, placement in (
        ("replication (GNNLab-style)", replication_policy(hotness, capacity, NUM_GPUS)),
        ("partition (WholeGraph-style)", partition_policy(hotness, capacity, NUM_GPUS)),
        ("UGache (solved)", layer.placement),
    ):
        t = evaluate_placement(
            platform, placement, hotness, entry_bytes, Mechanism.FACTORED
        ).time
        h = hit_rates(platform, placement, hotness)
        print(f"  {name:30s} {t * 1e3:7.3f} ms/iter   "
              f"local {h.local:5.1%}  global {h.global_hit:5.1%}")


if __name__ == "__main__":
    main()
