"""Exporters and readers for metrics artifacts.

Two on-disk formats, both zero-dependency:

* **JSON** (:func:`write_json`) — one document with ``schema``,
  ``registry``, ``metrics`` (list of series snapshots) and ``spans``;
  the format ``--metrics-out`` produces and ``python -m repro metrics``
  consumes.
* **JSON-lines** (:func:`write_jsonl`) — one series snapshot per line,
  preceded by a header line; convenient for appending across runs and
  for ``jq``/line-oriented tooling.

:func:`to_prometheus_text` renders the Prometheus text exposition format
for scraping-style integration; :func:`load_metrics` reads either disk
format back; :func:`summarize` turns a loaded document into the terse
text report the CLI prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "load_metrics",
    "summarize",
    "to_prometheus_text",
    "write_json",
    "write_jsonl",
]


def write_json(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write one registry snapshot as a single JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry.snapshot(), indent=2) + "\n")
    return path


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write a registry as JSON-lines: header line, then one series/line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snap = registry.snapshot()
    lines = [json.dumps({"schema": snap["schema"], "registry": snap["registry"]})]
    lines += [json.dumps(m) for m in snap["metrics"]]
    lines += [json.dumps({"span": s}) for s in snap["spans"]]
    path.write_text("\n".join(lines) + "\n")
    return path


def load_metrics(path: str | Path) -> dict[str, Any]:
    """Read a metrics artifact written by either exporter.

    Returns the single-document form (``{"schema", "registry",
    "metrics", "spans"}``) regardless of which format is on disk.
    """
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "metrics" in doc:
        return doc
    # JSON-lines: header then one object per line.
    out: dict[str, Any] = {"schema": "repro.obs/v1", "registry": "?",
                           "metrics": [], "spans": []}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if "span" in obj:
            out["spans"].append(obj["span"])
        elif "name" in obj:
            out["metrics"].append(obj)
        else:
            out["schema"] = obj.get("schema", out["schema"])
            out["registry"] = obj.get("registry", out["registry"])
    return out


def _prom_name(name: str) -> str:
    return "repro_" + "".join(c if c.isalnum() else "_" for c in name)


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Histograms follow the convention: cumulative ``_bucket{le=...}``
    series plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for series in registry.series():
        snap = series.snapshot()
        base = _prom_name(snap["name"])
        if base not in typed:
            lines.append(f"# TYPE {base} {snap['type']}")
            typed.add(base)
        labels = snap["labels"]
        if snap["type"] == "histogram":
            cumulative = 0
            for bound, count in snap["buckets"]:
                cumulative += count
                le = "+Inf" if bound is None else f"{bound:.6g}"
                lines.append(
                    f"{base}_bucket{_prom_labels(labels, {'le': le})} {cumulative}"
                )
            if snap["buckets"] and snap["buckets"][-1][0] is not None:
                lines.append(
                    f"{base}_bucket{_prom_labels(labels, {'le': '+Inf'})} {cumulative}"
                )
            lines.append(f"{base}_sum{_prom_labels(labels)} {snap['sum']:.9g}")
            lines.append(f"{base}_count{_prom_labels(labels)} {snap['count']}")
        else:
            lines.append(f"{base}{_prom_labels(labels)} {snap['value']:.9g}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3g}"
    return f"{value:.4g}"


def _stage_breakdown(metrics: list[dict[str, Any]]) -> list[str]:
    """Extraction-pipeline breakdown: seconds per stage, in stage order."""
    from repro.obs.tracing import PIPELINE_STAGES

    totals = {
        stage: sum(
            m.get("sum", 0.0)
            for m in metrics
            if m.get("name") == f"pipeline.{stage}.seconds"
        )
        for stage in PIPELINE_STAGES
    }
    grand = sum(totals.values())
    if grand <= 0:
        return []
    lines = ["pipeline stage breakdown:"]
    for stage in PIPELINE_STAGES:
        if totals[stage] > 0:
            lines.append(
                f"  {stage:10s} {_fmt(totals[stage])}s "
                f"({100 * totals[stage] / grand:.1f}%)"
            )
    return lines


def summarize(doc: dict[str, Any]) -> str:
    """Terse text summary of a loaded metrics document.

    Counters and gauges print name/labels/value; histograms print
    count/mean/min/max; any ``pipeline.<stage>.seconds`` series are
    additionally rolled up into a per-stage breakdown (stages in
    :data:`~repro.obs.tracing.PIPELINE_STAGES` order).  This is what
    ``python -m repro metrics PATH`` shows.
    """
    lines = [f"metrics artifact: registry={doc.get('registry', '?')} "
             f"({len(doc.get('metrics', []))} series, "
             f"{len(doc.get('spans', []))} spans)"]
    lines += _stage_breakdown(doc.get("metrics", []))
    for m in doc.get("metrics", []):
        labels = m.get("labels") or {}
        label_text = (
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        name = f"{m['name']}{label_text}"
        if m.get("type") == "histogram":
            count = m.get("count", 0)
            mean = (m.get("sum", 0.0) / count) if count else 0.0
            lines.append(
                f"  {name:48s} count={count} mean={_fmt(mean)} "
                f"min={_fmt(m.get('min') or 0.0)} max={_fmt(m.get('max') or 0.0)}"
            )
        else:
            lines.append(f"  {name:48s} {_fmt(m.get('value', 0.0))}")
    return "\n".join(lines)
