"""Inter-node RPC model: timeout, seeded-jitter retry, replica hedging.

A front-end read of a remote cache node is one *exchange*: a primary
attempt with a per-call timeout, retried on the
:class:`~repro.utils.retry.RetryPolicy`'s seeded-jitter schedule, with an
optional hedged duplicate sent to the next replica once the primary has
been quiet for ``hedge_factor`` healthy exchange legs.  The wire itself is priced
as one more topology tier (:class:`~repro.core.pipeline.NetworkTier`
through :func:`~repro.core.pipeline.price_node_read`), and the timeline is
walked by :func:`~repro.sim.event_sim.simulate_rpc_exchange` — the same
deterministic event-walking style as the hedged-extraction simulator.

How a node's health shapes an attempt:

* **up** — the attempt takes latency + node extraction + payload wire
  time and succeeds (unless that exceeds the timeout);
* **slow** — extraction stretches by ``1 / node_service_factor``; a bad
  enough slowdown turns the attempt into a timeout;
* **down** — the attempt burns its full timeout and fails;
* **partitioned** — the attempt fails *fast* (connection refused after
  one latency), costing far less than a timeout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.pipeline import NetworkTier
from repro.faults.spec import HealthView
from repro.utils.retry import RetryPolicy

__all__ = ["RpcConfig", "attempt_profile"]


@dataclass(frozen=True)
class RpcConfig:
    """The cluster tier's wire and failure-handling knobs.

    Timeout and hedge trigger are expressed as multiples of the healthy
    *exchange leg* — wire latency + node extraction + payload transfer —
    not of the bare service time.  On CI-sized tables the wire dominates
    the leg and on paper-sized ones extraction does; scaling from the
    whole leg keeps the same config meaningful in both regimes (a timeout
    below one wire round-trip would declare every healthy call dead).
    """

    network: NetworkTier = field(default_factory=NetworkTier)
    #: per-attempt timeout, in units of the healthy exchange leg.
    timeout_factor: float = 8.0
    #: hedge to the next replica once the primary has run this many
    #: healthy legs without answering.
    hedge_factor: float = 3.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=2, base_delay=0.0, jitter=0.2
        )
    )

    def __post_init__(self) -> None:
        if self.timeout_factor <= 0:
            raise ValueError("rpc timeout factor must be positive")
        if self.hedge_factor <= 0:
            raise ValueError("hedge factor must be positive")

    def healthy_leg(self, service_seconds: float, payload_bytes: float) -> float:
        """One fault-free exchange: request latency + extraction + reply."""
        return (
            self.network.latency_seconds
            + service_seconds
            + self.network.transfer_seconds(payload_bytes)
        )

    def timeout_seconds(self, leg_seconds: float) -> float:
        return self.timeout_factor * leg_seconds

    def hedge_issue_at(self, leg_seconds: float) -> float:
        return self.hedge_factor * leg_seconds


def attempt_profile(
    node: int,
    service_seconds: float,
    network: NetworkTier,
    health: HealthView,
    payload_bytes: float,
) -> tuple[float, bool]:
    """One RPC attempt at ``node`` as ``(elapsed, ok)``.

    ``service_seconds`` is the node's healthy extraction time for the
    batch; health turns it into what the attempt actually experiences
    (see the module docstring for the four cases).
    """
    if node in health.partitioned_nodes:
        return network.latency_seconds, False
    if node in health.down_nodes:
        return math.inf, False
    factor = health.node_service_factor(node)
    elapsed = (
        network.latency_seconds
        + service_seconds / factor
        + network.transfer_seconds(payload_bytes)
    )
    return elapsed, True
