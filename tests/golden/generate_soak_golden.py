"""Regenerate ``soak_single_box.json``: the PR-6 single-box soak anchor.

The cluster layer must leave the one-node path untouched: a soak with
``--nodes 1 --replication 1`` (the defaults) has to keep producing
byte-for-byte the report the pre-cluster code produced.  This script pins
two CI-sized runs — the fault-free ``steady`` scenario and the
``dgx_a100_partial_failure`` chaos scenario — at seed 0.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate_soak_golden.py

The golden test compares only the keys present in the fixture, so later
PRs may *add* report fields but never change the pinned ones.
"""

from __future__ import annotations

import json
import pathlib

SCENARIOS = ("steady", "dgx_a100_partial_failure")


def build() -> dict:
    from repro.obs import MetricsRegistry, use_registry
    from repro.serve.soak import SoakConfig, run_soak

    scenarios = {}
    for scenario in SCENARIOS:
        cfg = SoakConfig.quick(seed=0, scenario=scenario)
        with use_registry(MetricsRegistry(f"golden-soak-{scenario}")):
            report = run_soak(cfg)
        scenarios[scenario] = report.to_dict()
    return {"scenarios": scenarios}


if __name__ == "__main__":
    out = pathlib.Path(__file__).parent / "soak_single_box.json"
    out.write_text(json.dumps(build(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
