"""Online hotness drift: streaming estimation and detection (§2, §7.2).

The solver places the cache from a *static* hotness snapshot, justified
by the paper's observation that "hot entries in different daily traces
are highly alike" (§2).  Production recommendation traffic is not that
polite: heads rotate with diurnal cycles, whole tables change popularity
when a model is promoted, and flash crowds mint new hot entries in
minutes.  This module supplies the two building blocks the serving tier
needs to notice:

* :class:`StreamingHotnessEstimator` — exponentially decayed access
  counts layered on :class:`~repro.core.hotness.HotnessTracker`, cheap
  enough to feed from the serving hot path and thread-safe against the
  per-GPU worker pool;
* :class:`DriftDetector` — windowed comparison of the live estimate
  against the solved policy's snapshot (hot-set Jaccard + rank
  correlation), with hysteresis and a post-fire cooldown so noise never
  thrashes the re-solver.

The *reaction* to a detection — the incremental warm-start re-solve and
the guarded policy swap — lives in :func:`~repro.core.solver.warm_start_policy`
and :class:`~repro.serve.adaptation.DriftAdapter`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.hotness import HotnessTracker
from repro.obs import get_registry
from repro.utils.logging import get_logger

logger = get_logger("core.drift_adapt")

__all__ = [
    "DriftDetector",
    "DriftDetectorConfig",
    "DriftScore",
    "StreamingHotnessEstimator",
    "hot_set_jaccard",
    "rank_correlation",
]


class StreamingHotnessEstimator(HotnessTracker):
    """Exponentially decayed streaming hotness over a fixed entry universe.

    Each recorded batch first decays every accumulated count by
    ``decay``, so the estimate is a sliding exponential window over the
    stream: with decay ``d`` the effective window holds
    ``(1 - d**b) / (1 - d)`` batches (→ ``1 / (1 - d)`` in steady
    state).  On a *stationary* stream the estimate converges to the true
    per-batch access frequencies (the base tracker's semantics); under
    drift it forgets the old regime at a controlled half-life of
    ``log(0.5) / log(d)`` batches.

    ``decay=1.0`` degrades to the base tracker's plain counting (every
    batch weighted equally, forever).

    Unlike the base tracker — which the foreground Refresher feeds from
    a single thread — this estimator is recorded from the serving hot
    path, concurrently from every per-GPU worker, while the drift
    detector reads snapshots.  All public state transitions happen under
    one mutex: no lost updates, no torn hot-set reads.

    Cold start mirrors :class:`~repro.serve.queueing.LatencyEstimator`'s
    ``estimator_prior``: with ``prior`` set, :meth:`hotness` answers a
    uniform ``prior`` per entry *before* the first batch instead of
    raising — callers that poll the estimate on a schedule never trip
    over an empty window.  ``prior=None`` keeps the base tracker's loud
    zero-batch :class:`RuntimeError`.
    """

    def __init__(
        self,
        num_entries: int,
        decay: float = 0.95,
        prior: float | None = None,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if prior is not None and prior < 0:
            raise ValueError("cold-start prior must be non-negative")
        super().__init__(num_entries)
        self.decay = float(decay)
        self.prior = prior
        self._lock = threading.Lock()

    @property
    def effective_batches(self) -> float:
        """Decayed window size: total weight of all recorded batches."""
        with self._lock:
            return self._effective_batches_locked()

    def _effective_batches_locked(self) -> float:
        if self.decay >= 1.0:
            return float(self._batches)
        return (1.0 - self.decay**self._batches) / (1.0 - self.decay)

    def record(self, keys: np.ndarray) -> None:
        """Account one batch: decay the window, then add the accesses."""
        keys = np.asarray(keys)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_entries):
            raise ValueError("keys out of range for this tracker")
        counts = np.bincount(keys, minlength=self.num_entries)
        with self._lock:
            if self.decay < 1.0:
                self._counts *= self.decay
            self._counts += counts
            self._batches += 1

    def hotness(self) -> np.ndarray:
        """Expected accesses per entry per batch over the decayed window.

        Before any batch is recorded this is undefined; with a ``prior``
        the estimator answers a uniform cold-start estimate, otherwise
        it raises like the base tracker.
        """
        with self._lock:
            if self._batches == 0:
                if self.prior is not None:
                    return np.full(self.num_entries, self.prior)
                raise RuntimeError("no batches recorded yet")
            return self._counts / self._effective_batches_locked()

    def counts(self) -> np.ndarray:
        with self._lock:
            return self._counts.copy()

    def snapshot(self) -> tuple[np.ndarray, int]:
        """Atomic ``(hotness, batches_recorded)`` pair for the detector.

        Reading the two separately could pair a post-batch estimate with
        a pre-batch count (a torn read); the detector's ``min_batches``
        warm-up gate needs them consistent.
        """
        with self._lock:
            if self._batches == 0:
                if self.prior is None:
                    raise RuntimeError("no batches recorded yet")
                return np.full(self.num_entries, self.prior), 0
            hot = self._counts / self._effective_batches_locked()
            return hot, self._batches

    def merge(self, other: HotnessTracker) -> None:
        if other.num_entries != self.num_entries:
            raise ValueError("trackers cover different entry universes")
        counts = other.counts()
        batches = other.batches_recorded
        with self._lock:
            self._counts += counts
            self._batches += batches

    def reset(self) -> None:
        with self._lock:
            self._counts[:] = 0.0
            self._batches = 0


# ---------------------------------------------------------------------------
# Drift scoring
# ---------------------------------------------------------------------------


def hot_set_jaccard(
    live: np.ndarray, snapshot: np.ndarray, top_frac: float = 0.01
) -> float:
    """Jaccard overlap of the two estimates' hottest ``top_frac`` entries.

    This is :func:`~repro.dlr.drift.hot_set_overlap`'s §2 stability
    metric, applied to hotness vectors instead of workloads: 1.0 means
    the live head is exactly the solved policy's head, 0.0 means the
    cache is hot for yesterday's traffic.
    """
    if not 0 < top_frac <= 1:
        raise ValueError("top_frac must be in (0, 1]")
    live = np.asarray(live, dtype=np.float64)
    snapshot = np.asarray(snapshot, dtype=np.float64)
    if live.shape != snapshot.shape:
        raise ValueError("live and snapshot hotness must align")
    k = max(1, int(top_frac * len(live)))
    top_live = set(np.argsort(-live, kind="stable")[:k].tolist())
    top_snap = set(np.argsort(-snapshot, kind="stable")[:k].tolist())
    union = top_live | top_snap
    if not union:
        return 1.0
    return len(top_live & top_snap) / len(union)


def rank_correlation(
    live: np.ndarray, snapshot: np.ndarray, top_frac: float = 0.01
) -> float:
    """Spearman rank correlation over the union of the two hot sets.

    Restricting to the joint head keeps the statistic sensitive: over
    the full table the huge all-but-unobserved cold tail dominates and
    drowns any head rotation in tied near-zero ranks.
    """
    if not 0 < top_frac <= 1:
        raise ValueError("top_frac must be in (0, 1]")
    live = np.asarray(live, dtype=np.float64)
    snapshot = np.asarray(snapshot, dtype=np.float64)
    if live.shape != snapshot.shape:
        raise ValueError("live and snapshot hotness must align")
    k = max(1, int(top_frac * len(live)))
    top_live = np.argsort(-live, kind="stable")[:k]
    top_snap = np.argsort(-snapshot, kind="stable")[:k]
    union = np.union1d(top_live, top_snap)
    if len(union) < 3:
        return 1.0
    a, b = live[union], snapshot[union]
    if np.ptp(a) == 0 or np.ptp(b) == 0:
        # A constant vector has no ranking to disagree with.
        return 1.0
    from scipy.stats import spearmanr

    rho = spearmanr(a, b).statistic
    if not np.isfinite(rho):
        return 1.0
    return float(rho)


@dataclass(frozen=True)
class DriftDetectorConfig:
    """Knobs of the windowed drift detector.

    Attributes:
        top_frac: hot-set size (fraction of the table) both scores use.
        jaccard_floor: hot-set overlap below this breaches.
        corr_floor: rank correlation below this breaches.
        hysteresis: consecutive breaching checks required before the
            detector fires — one noisy window never triggers a re-solve.
        cooldown_checks: checks after a fire during which the detector
            scores but cannot fire again (the re-solve + swap it
            triggered needs time to land and the estimator needs time to
            converge on the new regime).
        min_batches: estimator warm-up; checks before this many recorded
            batches score but never breach (a cold window is noise).
    """

    top_frac: float = 0.01
    jaccard_floor: float = 0.5
    corr_floor: float = 0.2
    hysteresis: int = 2
    cooldown_checks: int = 8
    min_batches: int = 16

    def __post_init__(self) -> None:
        if not 0 < self.top_frac <= 1:
            raise ValueError("top_frac must be in (0, 1]")
        if not 0 <= self.jaccard_floor <= 1:
            raise ValueError("jaccard floor must be in [0, 1]")
        if not -1 <= self.corr_floor <= 1:
            raise ValueError("correlation floor must be in [-1, 1]")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be at least 1 check")
        if self.cooldown_checks < 0:
            raise ValueError("cooldown must be non-negative")
        if self.min_batches < 0:
            raise ValueError("min_batches must be non-negative")


@dataclass(frozen=True)
class DriftScore:
    """One detector check, kept on the tape for goldens and reports."""

    at: float
    jaccard: float
    rank_corr: float
    #: this window's scores crossed a floor (after warm-up).
    breached: bool
    #: hysteresis satisfied and not cooling down — the caller should
    #: trigger a re-solve.
    fired: bool

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "jaccard": self.jaccard,
            "rank_corr": self.rank_corr,
            "breached": self.breached,
            "fired": self.fired,
        }


class DriftDetector:
    """Compares a live hotness estimate against the solved snapshot.

    Stateful: consecutive breaches accumulate toward ``hysteresis``, a
    fire starts a cooldown, and :meth:`rebase` re-anchors the reference
    snapshot after a policy swap lands (the new placement *is* the new
    normal, so the old divergence must not re-fire).  Every check is
    appended to :attr:`tape` — the golden fixture pins this tape.
    """

    def __init__(
        self,
        snapshot: np.ndarray,
        config: DriftDetectorConfig | None = None,
    ) -> None:
        self.config = config or DriftDetectorConfig()
        self._snapshot = np.asarray(snapshot, dtype=np.float64).copy()
        if self._snapshot.ndim != 1 or self._snapshot.size == 0:
            raise ValueError("snapshot hotness must be a non-empty 1-D array")
        self._streak = 0
        self._cooldown = 0
        self.tape: list[DriftScore] = []
        self.detections = 0

    @property
    def snapshot(self) -> np.ndarray:
        return self._snapshot.copy()

    def rebase(self, snapshot: np.ndarray) -> None:
        """Re-anchor on a freshly solved snapshot (after a swap lands)."""
        snapshot = np.asarray(snapshot, dtype=np.float64)
        if snapshot.shape != self._snapshot.shape:
            raise ValueError("rebased snapshot must cover the same universe")
        self._snapshot = snapshot.copy()
        self._streak = 0

    def check(
        self, live: np.ndarray, at: float = 0.0, batches: int | None = None
    ) -> DriftScore:
        """Score one window; returns the (taped) verdict.

        Args:
            live: current streaming hotness estimate.
            at: timestamp stamped on the tape entry (simulated seconds).
            batches: the estimator's recorded-batch count; below
                ``min_batches`` the window scores but cannot breach.
        """
        cfg = self.config
        jac = hot_set_jaccard(live, self._snapshot, cfg.top_frac)
        rho = rank_correlation(live, self._snapshot, cfg.top_frac)
        warm = batches is None or batches >= cfg.min_batches
        breached = warm and (jac < cfg.jaccard_floor or rho < cfg.corr_floor)

        fired = False
        if self._cooldown > 0:
            self._cooldown -= 1
            self._streak = 0
        elif breached:
            self._streak += 1
            if self._streak >= cfg.hysteresis:
                fired = True
                self.detections += 1
                self._streak = 0
                self._cooldown = cfg.cooldown_checks
        else:
            self._streak = 0

        score = DriftScore(
            at=float(at), jaccard=jac, rank_corr=rho,
            breached=breached, fired=fired,
        )
        self.tape.append(score)
        reg = get_registry()
        if reg.enabled:
            reg.counter("drift.detector.checks").inc()
            reg.gauge("drift.detector.jaccard").set(jac)
            reg.gauge("drift.detector.rank_corr").set(rho)
            if fired:
                reg.counter("drift.detections").inc()
        if fired:
            logger.info(
                "drift detected at t=%.3f: hot-set jaccard %.3f, "
                "rank corr %.3f (floors %.2f / %.2f)",
                at, jac, rho, cfg.jaccard_floor, cfg.corr_floor,
            )
        return score
