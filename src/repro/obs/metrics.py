"""Process-local metrics: counters, gauges, histograms, and the registry.

Zero-dependency instrumentation for the runtime's hot paths.  Instruments
are plain Python objects updated in place (one dict lookup + one float
add), so a default-on registry costs next to nothing; a registry can also
be disabled outright, in which case :meth:`MetricsRegistry.counter` and
friends hand back shared no-op instruments and the hot path does no work
at all.

Histograms use *fixed* log-scale buckets (half-decade steps spanning
1 ns .. 1 Ms) so two artifacts are always mergeable bucket-by-bucket and
export never needs per-histogram bucket negotiation.

The module keeps one process-local default registry.  Code that wants a
private capture (the CLI's ``--metrics-out``, the benchmark harness)
swaps its own registry in with :func:`use_registry` for the duration of a
run; instrumented modules always call :func:`get_registry` at record time
so the swap redirects them.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Half-decade log-scale bucket upper bounds: 1e-9, ~3.16e-9, 1e-8, … 1e6.
#: Fixed for every histogram so artifacts merge bucket-by-bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (e / 2.0) for e in range(-18, 13))

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing counter (e.g. lookups, bytes moved).

    Updates are guarded by a per-instrument lock: ``self.value += x`` is a
    read-modify-write (three bytecodes), so concurrent workers would lose
    increments without it.  The lock is uncontended on the single-threaded
    paths and per-series under the worker pool, so the cost stays at one
    uncontended acquire per update.
    """

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of this series."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Last-value instrument (e.g. current hit rate, LP variable count).

    ``set`` is a single store (atomic under the GIL) but ``inc`` is a
    read-modify-write, so both share the per-instrument lock for a
    consistent thread-safety contract.
    """

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the latest observed value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of this series."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Log-bucketed distribution (timings, batch sizes, byte volumes).

    Buckets are the fixed :data:`BUCKET_BOUNDS`; an extra overflow bucket
    catches anything above the last bound and observations ``<= 0`` land
    in the first bucket (they still count toward ``count``/``sum``).

    ``observe`` mutates five fields; the per-instrument lock keeps them
    mutually consistent (count matches the bucket totals) under the
    serving worker pool.
    """

    __slots__ = (
        "name", "labels", "count", "sum", "min", "max", "bucket_counts",
        "_lock",
    )
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bucket_counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile (``q`` in [0, 100]) from the buckets.

        Returns the upper bound of the bucket holding the q-th
        observation, clamped to the observed min/max — good to within one
        half-decade, which is plenty for latency summaries.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                bound = (
                    BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else self.max
                )
                return float(min(max(bound, self.min), self.max))
        return float(self.max)

    def percentiles(self, qs: tuple[float, ...] = (50.0, 99.0, 99.9)) -> dict[str, float]:
        """Several percentiles at once, keyed ``"p50"``/``"p99"``/``"p99.9"``.

        The serving layer's latency summaries (p50/p99/p999) come from
        here, so reports and exported artifacts share one bucket view.
        """
        out: dict[str, float] = {}
        for q in qs:
            label = f"p{q:g}"
            out[label] = self.percentile(q)
        return out

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of this series (sparse non-empty buckets)."""
        buckets = [
            [BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else None, n]
            for i, n in enumerate(self.bucket_counts)
            if n
        ]
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": buckets,
        }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Process-local collection of named, labelled instruments.

    Series are keyed by ``(name, sorted labels)``; asking twice for the
    same series returns the same object.  A disabled registry hands out
    shared no-op instruments so instrumented code needs no branching of
    its own.
    """

    def __init__(self, name: str = "default", enabled: bool = True) -> None:
        self.name = name
        self.enabled = enabled
        self._series: dict[tuple[str, str, LabelKey], Instrument] = {}
        self._lock = threading.Lock()
        #: trace spans land here when :attr:`tracing_enabled` is set
        self.spans: list[Any] = []
        self.tracing_enabled = False

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, Any]) -> Instrument:
        key = (cls.kind, name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, cls(name, key[2]))
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter series."""
        if not self.enabled:
            return _NOOP_COUNTER
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge series."""
        if not self.enabled:
            return _NOOP_GAUGE
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Get or create a histogram series."""
        if not self.enabled:
            return _NOOP_HISTOGRAM
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def series(self) -> Iterator[Instrument]:
        """All series, sorted by (name, kind, labels) for stable export."""
        for key in sorted(self._series):
            yield self._series[key]

    def value(self, name: str, **labels: Any) -> float | None:
        """Current value of a counter/gauge series, or None if absent."""
        for kind in ("counter", "gauge"):
            series = self._series.get((kind, name, _label_key(labels)))
            if series is not None:
                return series.value  # type: ignore[union-attr]
        return None

    def snapshot(self) -> dict[str, Any]:
        """One JSON-able document for the whole registry."""
        return {
            "schema": "repro.obs/v1",
            "registry": self.name,
            "metrics": [s.snapshot() for s in self.series()],
            "spans": [s.snapshot() for s in self.spans],
        }

    def reset(self) -> None:
        """Drop every series and buffered span."""
        with self._lock:
            self._series.clear()
            self.spans.clear()


class _NoopCounter(Counter):
    """Discards updates; what a disabled registry hands out."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NoopGauge(Gauge):
    """Discards updates; what a disabled registry hands out."""

    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NoopHistogram(Histogram):
    """Discards updates; what a disabled registry hands out."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


#: Shared no-op instruments handed out by disabled registries.
_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_GAUGE = _NoopGauge("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop")

_default_registry = MetricsRegistry("global")
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The currently active process-local registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the active registry; returns the previous one."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


class use_registry:
    """Context manager: route all instrumentation into ``registry``.

    Re-entrant in the nesting sense (restores whatever was active on
    exit), which is how the CLI and benchmark harness capture one run
    into a private registry without disturbing the global one.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self._registry)
        return self._registry

    def __exit__(self, *exc_info: Any) -> None:
        assert self._previous is not None
        set_registry(self._previous)
