"""Invariant: the analytic models match independent discrete simulation."""

from repro.bench.experiments import misc_event_sim_agreement


def bench_misc_event_sim(run_experiment):
    result = run_experiment(misc_event_sim_agreement)
    for row in result.rows:
        assert row["factored_err_pct"] < 12.0
        assert row["naive_err_pct"] < 30.0
