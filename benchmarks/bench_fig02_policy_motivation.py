"""Figure 2: replication vs partition hit rate and extraction time."""

from repro.bench.experiments import fig2_policy_motivation
from repro.bench.plotting import line_chart


def bench_fig02_policy_motivation(run_experiment, capsys):
    result = run_experiment(fig2_policy_motivation)
    with capsys.disabled():
        print(line_chart(
            result.series("cache_ratio_pct"),
            {
                "rep": result.series("rep_time_ms"),
                "part": result.series("part_time_ms"),
                "ugache": result.series("ugache_time_ms"),
            },
            x_label="cache ratio %",
            y_label="extraction ms",
        ))
    first, last = result.rows[0], result.rows[-1]
    # Partition's local hit stays pinned near 1/G while replication's local
    # hit climbs with capacity (§3.1).
    assert last["part_local_hit_pct"] < 15
    assert last["rep_local_hit_pct"] > first["rep_local_hit_pct"]
    # Partition hits its marginal-utility plateau: time stops improving.
    assert abs(last["part_time_ms"] - result.rows[-2]["part_time_ms"]) < 0.05 * last["part_time_ms"] + 1e-6
    # UGache tracks or beats the better of the two everywhere.
    for row in result.rows:
        assert row["ugache_time_ms"] <= min(row["rep_time_ms"], row["part_time_ms"]) * 1.05
