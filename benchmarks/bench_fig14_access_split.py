"""Figure 14: local/remote/host access split per policy vs cache ratio."""

from repro.bench.experiments import fig14_access_split


def bench_fig14_access_split(run_experiment):
    result = run_experiment(fig14_access_split)
    rows = {(r["dataset"], r["cache_ratio_pct"], r["policy"]): r for r in result.rows}
    # PA at a generous ratio: UGache recovers replication-level local hit
    # while keeping partition-level global hit (§8.5, Figure 14 top).
    partu = rows[("pa", 8.0, "PartU")]
    ugache = rows[("pa", 8.0, "UGache")]
    assert ugache["local_pct"] > 5 * partu["local_pct"]
    assert ugache["host_pct"] < 10
    # CF (low skew): UGache stays close to partition at small ratios.
    partu_cf = rows[("cf", 4.0, "PartU")]
    ugache_cf = rows[("cf", 4.0, "UGache")]
    assert abs(ugache_cf["local_pct"] - partu_cf["local_pct"]) < 10
