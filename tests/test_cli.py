"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.platform == "server-c"
        assert args.cache_ratio == 0.08

    def test_solve_overrides(self):
        args = build_parser().parse_args(
            ["solve", "--platform", "server-a", "--entries", "100", "--alpha", "0.9"]
        )
        assert args.platform == "server-a"
        assert args.entries == 100
        assert args.alpha == 0.9

    def test_invalid_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--platform", "server-z"])


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for key in ("fig2", "fig10", "table1", "fig16"):
            assert key in out

    def test_experiment_registry_complete(self):
        # Every paper table/figure has a CLI id.
        expected = {
            "table1", "table3",
            "fig2", "fig4", "fig6", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_platforms_command(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "server-a" in out and "server-c" in out
        assert "GB/s" in out

    def test_solve_command_small(self, capsys):
        code = main(
            ["solve", "--entries", "500", "--cache-ratio", "0.1",
             "--platform", "server-a", "--coarse-frac", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated extraction time" in out
        assert "hit rates" in out

    def test_experiment_command_fast_driver(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Criteo-TB" in capsys.readouterr().out


class TestMetrics:
    def test_solve_writes_metrics_artifact(self, capsys, tmp_path):
        from repro.obs import load_metrics

        out = tmp_path / "solve.json"
        code = main(
            ["solve", "--entries", "500", "--cache-ratio", "0.1",
             "--platform", "server-a", "--coarse-frac", "0.1",
             "--metrics-out", str(out)]
        )
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        doc = load_metrics(out)
        names = {m["name"] for m in doc["metrics"]}
        # Hit split, per-GPU extraction timing, and solver solve time all
        # land in one artifact.
        assert "cache.hit_rate" in names
        assert "extract.gpu_seconds" in names
        assert "solver.solve.seconds" in names

    def test_experiment_writes_metrics_artifact(self, capsys, tmp_path):
        from repro.obs import load_metrics

        out = tmp_path / "exp.json"
        assert main(["experiment", "table3", "--metrics-out", str(out)]) == 0
        doc = load_metrics(out)
        assert doc["schema"] == "repro.obs/v1"

    def test_metrics_command_summarizes(self, capsys, tmp_path):
        out = tmp_path / "m.json"
        main(["solve", "--entries", "500", "--cache-ratio", "0.1",
              "--platform", "server-a", "--coarse-frac", "0.1",
              "--metrics-out", str(out)])
        capsys.readouterr()
        assert main(["metrics", str(out)]) == 0
        text = capsys.readouterr().out
        assert "metrics artifact" in text
        assert "solver.solve.seconds" in text

    def test_metrics_command_missing_file(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


@pytest.mark.serve
class TestSoakCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.scenario == "dgx_a100_partial_failure"
        assert args.load == 0.8
        assert not args.closed_loop

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--scenario", "nope"])

    def test_quick_soak_passes_and_writes_artifacts(self, tmp_path, capsys):
        import json

        summary = tmp_path / "soak.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["soak", "--quick", "--requests", "60", "--seed", "0",
             "--json-out", str(summary), "--metrics-out", str(metrics)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "policy swaps" in out
        doc = json.loads(summary.read_text())
        assert doc["ok"] is True
        assert doc["integrity_failures"] == 0
        assert doc["served_ok"] > 0
        from repro.obs import load_metrics

        names = {m["name"] for m in load_metrics(metrics)["metrics"]}
        assert "serve.latency.seconds" in names
        assert "soak.goodput_rps" in names

    def test_queue_policy_flag_round_trips(self, capsys):
        code = main(
            ["soak", "--quick", "--requests", "40", "--scenario", "steady",
             "--queue-policy", "shed-oldest"]
        )
        assert code == 0
