"""Device memory arena used to back per-GPU cache storage.

The real system carves cache slots out of GPU HBM; here an arena tracks a
byte budget and hands out fixed-size *slots* (one embedding entry each).
The Filler and Refresher allocate and free slots through this interface, so
capacity accounting — the ``Cap_j`` constraint of the solver — is enforced
at runtime, not just at planning time.
"""

from __future__ import annotations


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation does not fit in the arena's budget."""


class SlotArena:
    """Fixed-slot allocator over a byte budget.

    Slots are identified by integer offsets (0-based slot indices), matching
    the paper's per-GPU hashtable values ``<GPU_i, Offset>``.  Freed slots
    are recycled LIFO so long-running refresh cycles do not fragment.
    """

    def __init__(self, capacity_bytes: int, slot_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if slot_bytes <= 0:
            raise ValueError("slot size must be positive")
        self._slot_bytes = slot_bytes
        self._num_slots = capacity_bytes // slot_bytes
        self._next_fresh = 0
        self._free_list: list[int] = []

    @property
    def num_slots(self) -> int:
        """Total slots the arena can ever hold."""
        return self._num_slots

    @property
    def slot_bytes(self) -> int:
        return self._slot_bytes

    @property
    def used_slots(self) -> int:
        return self._next_fresh - len(self._free_list)

    @property
    def free_slots(self) -> int:
        return self._num_slots - self.used_slots

    @property
    def used_bytes(self) -> int:
        return self.used_slots * self._slot_bytes

    def allocate(self) -> int:
        """Claim one slot; returns its offset."""
        if self._free_list:
            return self._free_list.pop()
        if self._next_fresh >= self._num_slots:
            raise OutOfDeviceMemory(
                f"arena exhausted: {self._num_slots} slots of {self._slot_bytes} B"
            )
        offset = self._next_fresh
        self._next_fresh += 1
        return offset

    def allocate_many(self, count: int) -> list[int]:
        """Claim ``count`` slots atomically (all or nothing)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.free_slots:
            raise OutOfDeviceMemory(
                f"requested {count} slots, only {self.free_slots} free"
            )
        return [self.allocate() for _ in range(count)]

    def free(self, offset: int) -> None:
        """Release a slot previously returned by :meth:`allocate`."""
        if not 0 <= offset < self._next_fresh:
            raise ValueError(f"offset {offset} was never allocated")
        if offset in self._free_list:
            raise ValueError(f"double free of slot {offset}")
        self._free_list.append(offset)

    def reset(self) -> None:
        """Release every slot (used by full cache refills)."""
        self._next_fresh = 0
        self._free_list.clear()
