"""Cluster soak: sustained traffic through the fan-out front-end under
node-level chaos.

``python -m repro soak --nodes N --replication R`` lands here (the
single-box path in :mod:`repro.serve.soak` is untouched — ``--nodes 1``
never enters this module, which is what keeps it byte-identical to the
pre-cluster harness).  The loop drives Poisson arrivals (open loop) or a
fixed client population (closed loop) through
:class:`~repro.cluster.frontend.ClusterFrontend` on a simulated clock
while a node-kill/partition/flap fault plan takes whole nodes away
mid-run, and — the part the CI gate cares about — measures goodput
*during* the failover window, not just after recovery:

* requests are bucketed into steady time (no node fault active) and the
  failover window (some node fault active);
* ``failover_goodput_ratio`` is the OK-rate inside the window over the
  steady OK-rate; the report's ``ok`` gate requires ≥ 70%;
* every served value is checked bit-exact against the host table, and
  every node's cache is reconciled (``verify_integrity``) after recovery;
* a healed node re-stages its GPU caches from DRAM — the bytes show up
  as ``rebalance_bytes`` (and the ``cluster.rebalance.bytes`` counter).

With ``--repair`` the self-healing layer (:mod:`repro.repair`) rides
along: node death actually *drops* the dead node's GPU caches, heals
refill them either all at once (``--restage burst``, the baseline) or in
hotness-ordered blocks under an idle-link-time budget (``--restage
staged``); every node runs an anti-entropy scrubber plus a read guard
(so bit-rot chaos can never serve a corrupt value), and a node-lifecycle
watchdog steers the front-end's routing while a node is RECOVERING.
Requests inside a post-heal recovery window are bucketed separately and
gated: ``recovery_goodput_ratio`` must stay ≥ 85% of steady.
"""

from __future__ import annotations

import heapq
from dataclasses import replace

import numpy as np

from repro.cluster.frontend import ClusterConfig, ClusterFrontend
from repro.cluster.node import CacheNode
from repro.core.policy import Placement
from repro.faults.injector import FaultInjector
from repro.faults.spec import HEALTHY, FaultKind, FaultPlan
from repro.obs import get_registry
from repro.repair import CacheScrubber, NodeWatchdog, StagedRecovery
from repro.serve.soak import (
    SOAK_SCENARIOS,
    SoakConfig,
    SoakReport,
    build_soak_plan,
)
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import zipf_pmf

logger = get_logger("cluster.soak")

__all__ = ["FAILOVER_GOODPUT_FLOOR", "run_cluster_soak"]

#: Minimum fraction of steady-state goodput the failover window must keep
#: (the acceptance gate enforced by ``SoakReport.ok`` for cluster runs).
FAILOVER_GOODPUT_FLOOR = 0.70


def _node_fault_windows(plan) -> list[tuple[float, float]]:
    """(onset, clear) for every node-scoped fault in the plan."""
    if plan is None:
        return []
    kinds = (FaultKind.NODE_DOWN, FaultKind.NODE_SLOW, FaultKind.NODE_PARTITION)
    return [(f.onset, f.clears_at) for f in plan if f.kind in kinds]


def _in_any_window(t: float, windows: list[tuple[float, float]]) -> bool:
    return any(a <= t < b for a, b in windows)


def _node_counter_values(reg, name: str) -> dict[str, int]:
    """Per-``node``-label values of one counter (registry is cumulative
    across runs in a process, so callers diff two of these snapshots)."""
    series = getattr(reg, "series", None)
    if series is None:
        return {}
    return {
        str(dict(s.labels).get("node")): int(s.value)
        for s in series()
        if s.kind == "counter" and s.name == name
    }


def run_cluster_soak(cfg: SoakConfig) -> SoakReport:
    """Run one multi-node soak scenario end to end."""
    from repro.serve.soak import _soak_platform

    platform_name, _desc = SOAK_SCENARIOS[cfg.scenario]
    # Honours --tiers: every node then holds its shard across the same
    # backing chain (CacheNode ranks the chain by its shard's hotness).
    platform = _soak_platform(cfg, platform_name)
    rng = make_rng(cfg.seed)
    dim = max(1, cfg.entry_bytes // 4)
    table = rng.standard_normal((cfg.num_entries, dim)).astype(np.float32)
    pmf = zipf_pmf(cfg.num_entries, cfg.alpha)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))

    cluster_cfg = ClusterConfig(
        nodes=cfg.nodes,
        replication=cfg.replication,
        placement=cfg.placement,
        seed=cfg.seed,
    )
    # The owner table comes first so each node knows its shard; the
    # front-end then adopts the very same table.
    placement = ClusterFrontend.build_placement(cluster_cfg, hotness)
    entries = np.arange(cfg.num_entries, dtype=np.int64)
    owners = placement.owners_for(entries)
    nodes = []
    for node_id in range(cfg.nodes):
        # Solver placements may wide-replicate a hot head beyond the
        # owner columns; membership comes from the placement when it can
        # say, from the owner table otherwise (the ring).
        member_mask = (
            placement.member_mask(node_id)
            if hasattr(placement, "member_mask")
            else (owners == node_id).any(axis=1)
        )
        nodes.append(
            CacheNode(
                node_id=node_id,
                platform=platform,
                table=table,
                hotness=hotness,
                member_mask=member_mask,
                capacity_entries=capacity,
                placement_mode=(
                    "solver" if cfg.placement == "solver" else "greedy"
                ),
            )
        )
    # Baseline node service time: one warm batch on node 0 (the ingress
    # round-robin pointer is restored so the probe leaves no trace).
    s0 = nodes[0].service_seconds(
        make_rng(cfg.seed + 3).choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
    )
    nodes[0]._next_gpu = 0
    rate = cfg.load * cfg.nodes / s0
    # One healthy leg = wire + extraction + payload reply; the request
    # deadline scales from it so the network tier never eats the whole
    # latency budget on CI-sized tables where the wire dominates.
    leg0 = cluster_cfg.rpc.healthy_leg(
        s0, cfg.batch_keys * nodes[0].cache.entry_bytes
    )
    deadline = cfg.deadline_factor * leg0
    # The breaker's cooldown has to live on the *simulated* clock: the
    # default wall-clock seconds would outlast the whole run, so an
    # ejected node could never re-admit probes.  ~50 mean inter-arrival
    # times keeps a few probe rounds inside even a quick soak's window.
    cluster_cfg = replace(
        cluster_cfg,
        breaker=replace(cluster_cfg.breaker, cooldown_seconds=50.0 / rate),
    )
    frontend = ClusterFrontend(
        nodes, cluster_cfg, baseline_service=s0,
        hotness=hotness, placement=placement,
    )

    arrival_rng, key_rng = spawn_rngs(cfg.seed + 17, 2)
    total_requests = cfg.requests_per_gpu * cfg.nodes
    duration = total_requests / rate
    plan = build_soak_plan(cfg.scenario, duration, cfg.seed)
    windows = _node_fault_windows(plan)

    reg = get_registry()
    node_requests_start = _node_counter_values(reg, "cluster.node.requests")

    # ------------------------------------------------------------------
    # Self-healing machinery (inert — and allocation-free — without
    # --repair, so the repair-off path stays byte-identical to the
    # pre-repair harness; bit-rot injectors follow the *scenario* so an
    # unguarded bit-rot run visibly serves corruption).
    # ------------------------------------------------------------------
    repair = cfg.repair
    injectors: dict[int, FaultInjector] = {}
    if plan is not None:
        for node in nodes:
            rot = tuple(
                f for f in plan
                if f.kind is FaultKind.BIT_ROT
                and f.node in (None, node.node_id)
            )
            if rot:
                injectors[node.node_id] = FaultInjector(
                    FaultPlan(
                        faults=rot,
                        seed=plan.seed + 7919 * (node.node_id + 1),
                        name=f"{plan.name}-rot-{node.node_id}",
                    ),
                    cache=node.cache,
                )
    scrubbers: dict[int, CacheScrubber] = {}
    watchdog: NodeWatchdog | None = None
    if repair:
        watchdog = NodeWatchdog(range(cfg.nodes))
        frontend.watchdog = watchdog
        for node in nodes:
            scrubbers[node.node_id] = CacheScrubber(
                node.cache, node=node.node_id
            )
            node.read_guard = scrubbers[node.node_id]

    served_ok = 0
    expired = 0
    failed = 0
    hedges = 0
    hedge_wins = 0
    failovers = 0
    replica_keys = 0
    served_keys = 0
    host_fallback_keys = 0
    partial_responses = 0
    rpc_retries = 0
    rpc_timeouts = 0
    latencies: list[float] = []
    steady_ok = steady_total = 0
    window_ok = window_total = 0
    recovery_ok = recovery_total = 0
    rebalance_bytes = 0
    restage_bytes = 0
    restage_blocks = 0
    corrupt_rows_served = 0
    values_exact = True
    prev_down: frozenset[int] = frozenset()
    prev_t = 0.0
    lost_placements: dict[int, Placement] = {}
    recoveries: dict[int, StagedRecovery] = {}
    recovery_start: dict[int, float] = {}
    idle_credit: dict[int, float] = {}
    busy_until: dict[int, float] = {}
    recovery_windows: list[tuple[float, float]] = []
    recovery_latencies: list[float] = []
    sim_end = duration

    def account_restage(grant) -> None:
        nonlocal rebalance_bytes, restage_bytes, restage_blocks
        rebalance_bytes += grant.bytes
        restage_bytes += grant.bytes
        restage_blocks += grant.blocks
        reg.counter("cluster.rebalance.bytes").inc(grant.bytes)

    def handle_arrival(t: float) -> float:
        """One request's full lifecycle at arrival time ``t``; returns
        its completion time (the closed loop's resubmit instant)."""
        nonlocal served_ok, expired, failed, hedges, hedge_wins, failovers
        nonlocal replica_keys, served_keys, host_fallback_keys
        nonlocal partial_responses, rpc_retries, rpc_timeouts
        nonlocal steady_ok, steady_total, window_ok, window_total
        nonlocal recovery_ok, recovery_total, rebalance_bytes
        nonlocal corrupt_rows_served, values_exact, prev_down, prev_t
        nonlocal sim_end
        dt = max(0.0, t - prev_t)
        prev_t = t
        health = plan.health_at(t) if plan is not None else HEALTHY
        for injector in injectors.values():
            injector.advance(t)
        if repair:
            newly_down = health.down_nodes - prev_down
            for node_id in sorted(newly_down):
                dropped = frontend.nodes[node_id].drop_gpu_caches()
                if node_id in recoveries:
                    # Died again mid-refill: void the plan; the next heal
                    # cuts a fresh one over the union, so the tail of the
                    # interrupted refill is not forgotten.
                    rem = recoveries[node_id].remaining_placement()
                    dropped = Placement(
                        num_entries=dropped.num_entries,
                        per_gpu=tuple(
                            np.union1d(a, b)
                            for a, b in zip(dropped.per_gpu, rem.per_gpu)
                        ),
                    )
                    recovery_windows.append(
                        (recovery_start.pop(node_id), t)
                    )
                    del recoveries[node_id]
                lost_placements[node_id] = dropped
        healed = prev_down - health.down_nodes
        if repair:
            for node_id in sorted(healed):
                node = frontend.nodes[node_id]
                rec = StagedRecovery(
                    node, lost_placements.pop(node_id), hotness
                )
                if cfg.restage == "burst":
                    grant = rec.finish()
                    account_restage(grant)
                    busy_until[node_id] = t + grant.cost_seconds
                    recovery_windows.append((t, t + grant.cost_seconds))
                    logger.info(
                        "node %d healed at t=%.3g: burst re-staged %d "
                        "bytes, slow until t=%.3g",
                        node_id, t, grant.bytes, busy_until[node_id],
                    )
                else:
                    recoveries[node_id] = rec
                    recovery_start[node_id] = t
                    idle_credit[node_id] = 0.0
                    watchdog.attach_recovery(node_id, rec)
                    logger.info(
                        "node %d healed at t=%.3g: staged refill of %d "
                        "entries in %d blocks begins",
                        node_id, t, rec.remaining_entries, rec.blocks_total,
                    )
        else:
            for node_id in healed:
                staged = frontend.nodes[node_id].cached_bytes
                rebalance_bytes += staged
                reg.counter("cluster.rebalance.bytes").inc(staged)
                logger.info(
                    "node %d healed at t=%.3f: re-staged %d bytes",
                    node_id, t, staged,
                )
        prev_down = health.down_nodes
        serve_health = health
        if repair:
            # Staged refills spend only the idle share of link time; the
            # credit accrues between arrivals and whole blocks stage when
            # it covers their priced transfer.
            slack = max(0.0, 1.0 - cfg.load)
            for node_id, rec in list(recoveries.items()):
                idle_credit[node_id] += dt * slack
                grant = rec.grant(idle_credit[node_id])
                if grant.blocks:
                    idle_credit[node_id] -= grant.cost_seconds
                    account_restage(grant)
                if rec.done:
                    recovery_windows.append(
                        (recovery_start.pop(node_id), t)
                    )
                    del recoveries[node_id]
            for scrubber in scrubbers.values():
                scrubber.tick(t)
            watchdog.observe(
                t, health, frontend.breakers.states(),
                {n: s.quarantine_depth for n, s in scrubbers.items()},
            )
            for node_id in [n for n, u in busy_until.items() if t >= u]:
                del busy_until[node_id]
            if busy_until:
                # A burst-re-staging node is bulk-loading its stores and
                # serves nothing until the refill lands: requests to it
                # time out and fail over, exactly as if it were down.
                serve_health = replace(
                    health,
                    down_nodes=health.down_nodes | frozenset(busy_until),
                )
        keys = key_rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
        resp = frontend.serve(keys, t, health=serve_health, execute=True)
        sim_end = max(sim_end, t + resp.elapsed)
        hedges += resp.hedges
        hedge_wins += resp.hedge_wins
        failovers += resp.failovers
        replica_keys += resp.replica_keys
        served_keys += resp.served
        host_fallback_keys += resp.host_fallback_keys
        partial_responses += int(resp.partial)
        rpc_retries += resp.rpc_retries
        rpc_timeouts += resp.rpc_timeouts
        ok = resp.ok and resp.elapsed <= deadline
        if ok:
            served_ok += 1
            latencies.append(resp.elapsed)
            if resp.values is not None:
                served = np.ones(len(keys), dtype=bool)
                served[resp.failed_positions] = False
                if not np.array_equal(resp.values[served], table[keys[served]]):
                    values_exact = False
        elif resp.partial:
            failed += 1
        else:
            expired += 1
        if (repair or injectors) and resp.values is not None:
            served = np.ones(len(keys), dtype=bool)
            served[resp.failed_positions] = False
            if served.any():
                corrupt_rows_served += int(
                    (resp.values[served] != table[keys[served]])
                    .any(axis=1).sum()
                )
        if _in_any_window(t, windows):
            window_total += 1
            window_ok += int(ok)
        elif repair and (recoveries or _in_any_window(t, recovery_windows)):
            recovery_total += 1
            recovery_ok += int(ok)
            if ok:
                recovery_latencies.append(resp.elapsed)
        else:
            steady_total += 1
            steady_ok += int(ok)
        return t + resp.elapsed

    if cfg.closed_loop:
        # A fixed client population per node: each client resubmits the
        # moment its previous request completes, until the nominal run
        # duration elapses — the same resubmit-heap idiom as the
        # single-box closed loop, with identical per-request accounting.
        events: list[tuple[float, int]] = []
        seq = 0
        for _ in range(cfg.clients * cfg.nodes):
            heapq.heappush(events, (0.0, seq))
            seq += 1
        requests = 0
        while events:
            t, _s = heapq.heappop(events)
            if t >= duration:
                continue
            completed = handle_arrival(t)
            requests += 1
            heapq.heappush(events, (completed, seq))
            seq += 1
    else:
        t = 0.0
        for _ in range(total_requests):
            t += float(arrival_rng.exponential(1.0 / rate))
            handle_arrival(t)
        requests = total_requests

    if repair:
        # Any node still down when arrivals stop heals during the drain:
        # its dropped caches refill completely (priced, counted), every
        # unfinished staged plan runs to completion, and a full
        # anti-entropy pass reconciles every store before the final
        # integrity gate.
        for node_id in sorted(lost_placements):
            rec = StagedRecovery(
                frontend.nodes[node_id], lost_placements.pop(node_id), hotness
            )
            account_restage(rec.finish())
        for node_id, rec in list(recoveries.items()):
            account_restage(rec.finish())
            recovery_windows.append((recovery_start.pop(node_id), sim_end))
            del recoveries[node_id]
        for scrubber in scrubbers.values():
            scrubber.scrub_all()
        watchdog.observe(
            sim_end, HEALTHY, frontend.breakers.states(),
            {n: s.quarantine_depth for n, s in scrubbers.items()},
        )
    elif prev_down:
        # Any node still down when arrivals stop heals during the drain.
        for node_id in prev_down:
            staged = frontend.nodes[node_id].cached_bytes
            rebalance_bytes += staged
            reg.counter("cluster.rebalance.bytes").inc(staged)

    violations = frontend.verify_integrity()
    integrity_failures = len(violations) + (0 if values_exact else 1)
    for v in violations:
        logger.error("cluster integrity: %s", v)

    steady_rate = steady_ok / steady_total if steady_total else 0.0
    if window_total == 0:
        ratio = 1.0
    elif steady_rate > 0:
        ratio = (window_ok / window_total) / steady_rate
    else:
        ratio = 0.0
    if recovery_total == 0:
        recovery_ratio = 1.0
    elif steady_rate > 0:
        recovery_ratio = (recovery_ok / recovery_total) / steady_rate
    else:
        recovery_ratio = 0.0

    node_requests_end = _node_counter_values(reg, "cluster.node.requests")
    node_requests = {
        node: count - node_requests_start.get(node, 0)
        for node, count in node_requests_end.items()
        if count - node_requests_start.get(node, 0) > 0
    }
    lat = np.array(latencies) if latencies else np.array([0.0])
    report = SoakReport(
        scenario=cfg.scenario,
        requests=requests,
        served_ok=served_ok,
        expired=expired,
        failed=failed,
        goodput_rps=served_ok / sim_end if sim_end > 0 else 0.0,
        hedges=hedges,
        hedge_wins=hedge_wins,
        p50_latency=float(np.percentile(lat, 50)),
        p99_latency=float(np.percentile(lat, 99)),
        p999_latency=float(np.percentile(lat, 99.9)),
        max_queue_depth=0,
        queue_capacity=cfg.queue_capacity,
        breaker_transitions=frontend.breakers.transition_counts(),
        breaker_transitions_by_source=(
            frontend.breakers.transition_counts_by_source()
        ),
        breaker_time_in_state=frontend.breakers.time_in_state(sim_end),
        integrity_failures=integrity_failures,
        duration=sim_end,
        arrival_rate=rate,
        baseline_service=s0,
        nodes=cfg.nodes,
        replication=cfg.replication,
        failovers=failovers,
        replica_read_fraction=(
            replica_keys / served_keys if served_keys else 0.0
        ),
        host_fallback_keys=host_fallback_keys,
        partial_responses=partial_responses,
        rpc_retries=rpc_retries,
        rpc_timeouts=rpc_timeouts,
        failover_goodput_ratio=ratio,
        steady_goodput_rps=steady_rate * rate,
        rebalance_bytes=rebalance_bytes,
        node_requests=node_requests,
        repair_enabled=repair,
        restage_mode=cfg.restage if repair else "",
        recovery_goodput_ratio=recovery_ratio,
        recovery_requests=recovery_total,
        recovery_p99_latency=(
            float(np.percentile(np.array(recovery_latencies), 99))
            if recovery_latencies else 0.0
        ),
        restage_bytes=restage_bytes,
        restage_blocks=restage_blocks,
        scrub_scanned_slots=sum(
            s.scanned_total for s in scrubbers.values()
        ),
        scrub_mismatches=sum(
            s.mismatches_total for s in scrubbers.values()
        ),
        scrub_repaired=sum(s.repaired_total for s in scrubbers.values()),
        scrub_read_repairs=sum(
            s.read_repairs_total for s in scrubbers.values()
        ),
        corrupt_values_served=corrupt_rows_served,
        watchdog_transitions=(
            len(watchdog.transitions) if watchdog is not None else 0
        ),
    )
    if platform.num_tiers > 1:
        from repro.serve.soak import _chain_label

        report.tiers = _chain_label(platform)
        report.tier_demotions = sum(
            n.cache.tier_chain.demotions
            for n in nodes if n.cache.tier_chain is not None
        )
        report.tier_moved_bytes = sum(
            n.cache.tier_chain.moved_bytes
            for n in nodes if n.cache.tier_chain is not None
        )
    if reg.enabled:
        reg.gauge("cluster.failover_goodput_ratio").set(ratio)
        reg.gauge("cluster.replica_read_fraction").set(
            report.replica_read_fraction
        )
        for node, count in report.node_requests.items():
            reg.gauge("cluster.node.qps", node=node).set(
                count / sim_end if sim_end > 0 else 0.0
            )
        if repair:
            reg.gauge("repair.recovery_goodput_ratio").set(recovery_ratio)
    logger.info(
        "cluster soak %s: %d nodes R=%d, %d ok / %d requests, "
        "failover goodput %.0f%%, %d failovers, %d rebalanced bytes",
        cfg.scenario, cfg.nodes, cfg.replication,
        served_ok, requests, 100 * ratio,
        report.failovers, rebalance_bytes,
    )
    if repair:
        logger.info(
            "repair (%s): recovery goodput %.0f%% over %d requests, "
            "%d blocks / %d B re-staged, %d scrub mismatches, "
            "%d read-guard patches, %d corrupt rows served",
            cfg.restage, 100 * recovery_ratio, recovery_total,
            restage_blocks, restage_bytes,
            report.scrub_mismatches, report.scrub_read_repairs,
            corrupt_rows_served,
        )
    return report
