"""CSR graph storage and the power-law generator."""

import numpy as np
import pytest

from repro.gnn.graph import CSRGraph, power_law_graph


class TestCSRGraph:
    def test_from_edges_roundtrip(self):
        g = CSRGraph.from_edges(4, np.array([0, 0, 2]), np.array([1, 3, 0]))
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 3]
        assert g.neighbors(2).tolist() == [0]
        assert g.neighbors(1).size == 0

    def test_degrees(self):
        g = CSRGraph.from_edges(3, np.array([0, 0, 1]), np.array([1, 2, 2]))
        assert g.degrees().tolist() == [2, 1, 0]

    def test_topology_bytes_positive(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]))
        assert g.topology_bytes() > 0

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([0]), np.array([2]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([0, 1]), np.array([1]))

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))

    def test_immutable(self):
        g = CSRGraph.from_edges(2, np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            g.indices[0] = 0


class TestPowerLawGraph:
    def test_deterministic(self):
        a = power_law_graph(500, 2000, seed=5)
        b = power_law_graph(500, 2000, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = power_law_graph(500, 2000, seed=5)
        b = power_law_graph(500, 2000, seed=6)
        assert not np.array_equal(a.indices, b.indices)

    def test_symmetric_by_default(self):
        g = power_law_graph(200, 1000, seed=0)
        # Spot-check: every edge has its reverse.
        for u in range(0, 200, 37):
            for v in g.neighbors(u)[:5]:
                assert u in g.neighbors(int(v))

    def test_degree_floor(self):
        g = power_law_graph(300, 500, degree_alpha=1.5, seed=1)
        assert g.degrees().min() >= 1

    def test_higher_alpha_more_skewed_degrees(self):
        flat = power_law_graph(1000, 10_000, degree_alpha=0.3, seed=2)
        steep = power_law_graph(1000, 10_000, degree_alpha=1.4, seed=2)
        assert steep.degrees().max() > flat.degrees().max()

    def test_no_self_loops(self):
        g = power_law_graph(100, 1000, seed=3)
        for u in range(100):
            assert u not in g.neighbors(u)

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            power_law_graph(1, 10)

    def test_rejects_negative_edges(self):
        with pytest.raises(ValueError):
            power_law_graph(10, -1)
