"""The per-GPU location hashtable of §4: key → ``<GPU_i, Offset>``.

The real UGache coordinates Extractor and Solver/Filler through a GPU
hashtable mapping each embedding key to its source location and slot
offset.  This module implements that structure faithfully — an
open-addressing (linear-probing) table over packed 64-bit slots — rather
than the dense arrays the rest of the library uses for convenience, so the
lookup-path semantics (probe sequences, tombstone-free deletes, load
limits) can be tested and its memory/probe trade-offs measured.

Packing: ``[16 bits source | 48 bits offset]`` with source biased by 1 so
that host (:data:`~repro.hardware.platform.HOST` = -1) packs to 0.
Vectorized batch lookups keep it usable at workload scale.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.platform import HOST

_EMPTY_KEY = np.int64(-1)
_OFFSET_BITS = 48
_OFFSET_MASK = (np.int64(1) << _OFFSET_BITS) - 1


class ProbeLimitError(RuntimeError):
    """A probe chain visited every slot: the table is full or corrupt.

    With the load-factor invariant intact this is unreachable — every
    probe sequence meets an empty slot within ``capacity`` steps.  Raising
    instead of spinning turns an invariant violation (external mutation,
    a bypassed grow) into a diagnosable error rather than a hang.
    """


class CorruptEntryError(RuntimeError):
    """A slot unpacked to an out-of-range ``<gpu, offset>``.

    Raised by lookups when a stored location falls outside the bounds the
    table was built with (see ``LocationTable``'s ``num_sources`` /
    ``max_offset``) — a flipped bit, an external poke, or a fault-injected
    corruption.  Carries the key and the garbage location so the degraded
    router can reroute exactly the poisoned entries to host.
    """

    def __init__(self, key: int, source: int, offset: int) -> None:
        super().__init__(
            f"key {key} maps to out-of-range location <gpu {source}, "
            f"offset {offset}>"
        )
        self.key = key
        self.source = source
        self.offset = offset


def pack_location(source: int, offset: int) -> np.int64:
    """Pack ``(source, offset)`` into one int64 slot value."""
    if source < HOST or source > 2**15 - 2:
        raise ValueError(f"source {source} out of packable range")
    if not 0 <= offset < 2**_OFFSET_BITS:
        raise ValueError(f"offset {offset} out of packable range")
    return (np.int64(source + 1) << _OFFSET_BITS) | np.int64(offset)


def unpack_location(packed: np.int64) -> tuple[int, int]:
    """Inverse of :func:`pack_location`."""
    return int(packed >> _OFFSET_BITS) - 1, int(packed & _OFFSET_MASK)


class LocationTable:
    """Open-addressing hashtable: embedding key → packed location.

    Linear probing with a power-of-two capacity and a bounded load factor
    (default 0.7), matching what a GPU-resident table uses (probing is
    branch-light and coalescing-friendly).  Deletion uses backward-shift
    compaction, so lookups never traverse tombstones — the property that
    keeps worst-case probe lengths bounded after many refresh cycles.
    """

    def __init__(
        self,
        expected_entries: int,
        max_load: float = 0.7,
        num_sources: int | None = None,
        max_offset: int | None = None,
    ) -> None:
        if expected_entries < 0:
            raise ValueError("expected_entries must be non-negative")
        if not 0.1 <= max_load < 1.0:
            raise ValueError("max_load must be in [0.1, 1.0)")
        if num_sources is not None and num_sources <= 0:
            raise ValueError("num_sources must be positive")
        if max_offset is not None and max_offset < 0:
            raise ValueError("max_offset must be non-negative")
        capacity = 8
        while capacity * max_load < max(expected_entries, 1):
            capacity *= 2
        self._capacity = capacity
        self._mask = capacity - 1
        self._max_load = max_load
        #: validation bounds for unpacked locations (None = unbounded):
        #: valid sources are HOST plus GPU ids ``0..num_sources-1``, valid
        #: offsets ``0..max_offset``.
        self._num_sources = num_sources
        self._max_offset = max_offset
        self._keys = np.full(capacity, _EMPTY_KEY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def load_factor(self) -> float:
        return self._size / self._capacity

    def _slot(self, key: int) -> int:
        # Fibonacci hashing spreads sequential ids well; plain Python ints
        # avoid numpy's unsigned-overflow warnings.
        hashed = (key * 11400714819323198485) & 0xFFFFFFFFFFFFFFFF
        return (hashed >> (64 - self._capacity.bit_length() + 1)) & self._mask

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: int, source: int, offset: int) -> None:
        """Insert or overwrite one key's location."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        if (self._size + 1) / self._capacity > self._max_load:
            self._grow()
        packed = pack_location(source, offset)
        slot = self._slot(key)
        for _ in range(self._capacity):
            existing = self._keys[slot]
            if existing == _EMPTY_KEY:
                self._keys[slot] = key
                self._values[slot] = packed
                self._size += 1
                return
            if existing == key:
                self._values[slot] = packed
                return
            slot = (slot + 1) & self._mask
        raise ProbeLimitError(
            f"insert({key}) probed all {self._capacity} slots: table full or corrupt"
        )

    def remove(self, key: int) -> bool:
        """Delete one key; returns False if absent.

        Uses backward-shift deletion: subsequent probe-chain entries are
        relocated so no tombstones accumulate.
        """
        slot = self._slot(key)
        for _ in range(self._capacity):
            existing = self._keys[slot]
            if existing == _EMPTY_KEY:
                return False
            if existing == key:
                break
            slot = (slot + 1) & self._mask
        else:
            raise ProbeLimitError(
                f"remove({key}) probed all {self._capacity} slots: "
                "table full or corrupt"
            )
        # Backward-shift the rest of the cluster.
        hole = slot
        probe = (slot + 1) & self._mask
        shifts = 0
        while self._keys[probe] != _EMPTY_KEY:
            shifts += 1
            if shifts > self._capacity:
                raise ProbeLimitError(
                    f"remove({key}) shift pass found no empty slot in "
                    f"{self._capacity} probes: table full or corrupt"
                )
            ideal = self._slot(int(self._keys[probe]))
            distance_probe = (probe - ideal) & self._mask
            distance_hole = (probe - hole) & self._mask
            if distance_probe >= distance_hole:
                self._keys[hole] = self._keys[probe]
                self._values[hole] = self._values[probe]
                hole = probe
            probe = (probe + 1) & self._mask
        self._keys[hole] = _EMPTY_KEY
        self._size -= 1
        return True

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        self._capacity *= 2
        self._mask = self._capacity - 1
        self._keys = np.full(self._capacity, _EMPTY_KEY, dtype=np.int64)
        self._values = np.zeros(self._capacity, dtype=np.int64)
        self._size = 0
        for key, value in zip(old_keys, old_values):
            if key != _EMPTY_KEY:
                source, offset = unpack_location(value)
                self.insert(int(key), source, offset)

    def corrupt_slot(self, key: int, source: int, offset: int) -> None:
        """Fault-injection hook: overwrite ``key``'s stored location.

        Bypasses the bounds validation lookups enforce, so the injector
        can plant an out-of-range ``<gpu, offset>`` and tests can verify
        the read path raises :class:`CorruptEntryError` instead of
        returning garbage.  The location must still be *packable*
        (16-bit source, 48-bit offset).
        """
        slot = self._slot(key)
        for _ in range(self._capacity):
            existing = self._keys[slot]
            if existing == _EMPTY_KEY:
                raise KeyError(f"cannot corrupt absent key {key}")
            if existing == key:
                self._values[slot] = pack_location(source, offset)
                return
            slot = (slot + 1) & self._mask
        raise ProbeLimitError(
            f"corrupt_slot({key}) probed all {self._capacity} slots: "
            "table full or corrupt"
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _checked_location(self, key: int, packed: np.int64) -> tuple[int, int]:
        source, offset = unpack_location(packed)
        if source != HOST:
            if source < 0 or (
                self._num_sources is not None and source >= self._num_sources
            ):
                raise CorruptEntryError(key, source, offset)
            if self._max_offset is not None and offset > self._max_offset:
                raise CorruptEntryError(key, source, offset)
        return source, offset

    def get(self, key: int) -> tuple[int, int] | None:
        """Location of one key, or None if absent.

        Raises:
            CorruptEntryError: the stored location is outside the table's
                ``num_sources`` / ``max_offset`` bounds.
        """
        slot = self._slot(key)
        for _ in range(self._capacity):
            existing = self._keys[slot]
            if existing == _EMPTY_KEY:
                return None
            if existing == key:
                return self._checked_location(key, self._values[slot])
            slot = (slot + 1) & self._mask
        raise ProbeLimitError(
            f"get({key}) probed all {self._capacity} slots: table full or corrupt"
        )

    def lookup_batch(
        self, keys: np.ndarray, on_corrupt: str = "raise"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized-ish batch lookup.

        Returns ``(sources, offsets)``; absent keys get source
        :data:`HOST` and offset = key (host storage is addressed by key).
        ``on_corrupt`` picks the degraded behaviour for poisoned slots:
        ``"raise"`` propagates :class:`CorruptEntryError`, ``"host"``
        routes the corrupt key to host like a miss (the fault-tolerant
        extraction path — host always has the truth).
        """
        if on_corrupt not in ("raise", "host"):
            raise ValueError("on_corrupt must be 'raise' or 'host'")
        keys = np.asarray(keys, dtype=np.int64)
        sources = np.empty(len(keys), dtype=np.int16)
        offsets = np.empty(len(keys), dtype=np.int64)
        for i, key in enumerate(keys):
            try:
                hit = self.get(int(key))
            except CorruptEntryError:
                if on_corrupt == "raise":
                    raise
                hit = None
            if hit is None:
                sources[i] = HOST
                offsets[i] = key
            else:
                sources[i], offsets[i] = hit
        return sources, offsets

    def max_probe_length(self) -> int:
        """Longest probe chain currently in the table (a health metric)."""
        worst = 0
        for slot in range(self._capacity):
            key = self._keys[slot]
            if key == _EMPTY_KEY:
                continue
            ideal = self._slot(int(key))
            worst = max(worst, (slot - ideal) & self._mask)
        return worst

    @staticmethod
    def from_source_map(
        sources: np.ndarray,
        offsets: np.ndarray,
        num_sources: int | None = None,
        max_offset: int | None = None,
    ) -> "LocationTable":
        """Build a table from dense source/offset arrays (cache-fill path).

        Host-resident entries (source == HOST) are not inserted — absence
        *means* host, exactly as the runtime treats misses.  Pass
        ``num_sources``/``max_offset`` (e.g. GPU count and slot count) to
        arm the corruption bounds check on the read path.
        """
        sources = np.asarray(sources)
        cached = np.flatnonzero(sources != HOST)
        table = LocationTable(
            expected_entries=len(cached),
            num_sources=num_sources,
            max_offset=max_offset,
        )
        for key in cached:
            table.insert(int(key), int(sources[key]), int(offsets[key]))
        return table
