"""Chaos scenario matrix: end-to-end fault drills over a live cache.

Each scenario builds a small but complete stack — platform, Zipf workload,
filled :class:`~repro.core.cache.MultiGpuEmbeddingCache`, degraded-mode
:class:`~repro.core.extractor.FactoredExtractor` with an attached
:class:`~repro.faults.injector.FaultInjector` — then runs a batch loop
across the fault's onset, active window, and recovery, asserting that

* no exception escapes the extractor (degraded mode reroutes instead),
* every gathered value stays bit-identical to the host table,
* latency degrades while the fault is active and recovers after it clears.

The ``solver-timeout`` and ``refresh-interrupt`` scenarios exercise the
fallback chain and the transactional refresh directly instead of a batch
loop.  The ``node_*`` scenarios lift the drill one tier up: a 3-node
replicated cluster served through the fan-out front-end loses a whole
node (cleanly, flapping, or by partition) and must keep answering
bit-exactly via hedges, replica failover, and host fallback, then return
to baseline latency once the node heals.  ``python -m repro chaos`` is
the CLI front end.
"""

from __future__ import annotations

import time as _time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.refresher import RefreshConfig, Refresher
from repro.core.solver import (
    FallbackConfig,
    PolicySolveTimeout,
    clear_policy_cache,
    solve_policy_with_fallback,
)
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.faults.injector import FaultInjector
from repro.obs import get_registry
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

logger = get_logger("faults.chaos")

#: Every scenario the matrix knows how to run, in display order.
SCENARIOS: tuple[str, ...] = (
    "gpu-failure",
    "link-degradation",
    "link-partition",
    "host-stall",
    "corrupt-slot",
    "solver-timeout",
    "refresh-interrupt",
    "node_down",
    "node_flap",
    "node_partition",
    "bit-rot",
    "slow-leak-corruption",
    "heal-storm",
)

#: One-line descriptions, in SCENARIOS order (``chaos --list-scenarios``).
SCENARIO_DESCRIPTIONS: dict[str, str] = {
    "gpu-failure": "one GPU dies mid-run; reads reroute around it",
    "link-degradation": "an interconnect link loses most of its bandwidth",
    "link-partition": "an interconnect link goes fully dark",
    "host-stall": "host memory bandwidth collapses (swap/NUMA storm)",
    "corrupt-slot": "location-table slots corrupted to out-of-range targets",
    "solver-timeout": "MILP times out; the fallback chain must answer",
    "refresh-interrupt": "a policy refresh dies mid-flight and rolls back",
    "node_down": "a whole cache-server node dies and later heals",
    "node_flap": "a node dies, heals, and dies again inside the window",
    "node_partition": "a node is reachable but partitioned from traffic",
    "bit-rot": "cached bytes silently flip in a burst; the scrubber and "
               "read guard must keep every served value exact",
    "slow-leak-corruption": "low-rate bit-rot drips over the whole run; "
                            "anti-entropy scrubbing must converge",
    "heal-storm": "staggered node deaths with overlapping staged "
                  "recoveries under the lifecycle watchdog",
}

#: Node-level scenarios: these run against a 3-node replicated cluster
#: tier (R=2) through the fan-out front-end instead of a single box.
NODE_SCENARIOS: frozenset[str] = frozenset(
    {"node_down", "node_flap", "node_partition"}
)

#: Self-healing drills: single-box scrub loops plus the cluster-tier
#: heal-storm (scrubber + staged recovery + watchdog from repro.repair).
REPAIR_SCENARIOS: frozenset[str] = frozenset(
    {"bit-rot", "slow-leak-corruption", "heal-storm"}
)

#: Default ceiling on post-fault latency relative to baseline; beyond this
#: a scenario "never recovered" and the chaos CLI exits non-zero.
DEFAULT_RECOVERY_TOLERANCE: float = 1.25


@dataclass(frozen=True)
class ChaosConfig:
    """Workload and timeline knobs shared by every scenario."""

    platform: str = "server-a"
    num_entries: int = 20_000
    alpha: float = 1.1
    cache_ratio: float = 0.12
    entry_bytes: int = 32
    batch_keys: int = 2048
    num_batches: int = 12
    onset: float = 4.0
    duration: float = 4.0
    seed: int = 0

    @classmethod
    def quick(cls, seed: int = 0) -> "ChaosConfig":
        """CI-sized variant (< a second per scenario)."""
        return cls(
            num_entries=3_000,
            batch_keys=512,
            num_batches=8,
            onset=3.0,
            duration=2.0,
            seed=seed,
        )


@dataclass
class ScenarioResult:
    """One scenario's verdict and headline numbers."""

    scenario: str
    ok: bool
    completed_batches: int = 0
    values_exact: bool = True
    baseline_time: float = 0.0
    degraded_time: float = 0.0
    recovered_time: float = 0.0
    rerouted_keys: int = 0
    notes: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def degradation(self) -> float:
        """During-fault latency relative to baseline (1.0 = unaffected)."""
        if self.baseline_time <= 0:
            return 1.0
        return self.degraded_time / self.baseline_time

    @property
    def recovery(self) -> float:
        """Post-fault latency relative to baseline (≈1.0 = fully recovered)."""
        if self.baseline_time <= 0:
            return 1.0
        return self.recovered_time / self.baseline_time

    def recovered(self, tolerance: float = DEFAULT_RECOVERY_TOLERANCE) -> bool:
        """Whether post-fault latency returned to within ``tolerance`` ×
        baseline.  Scenarios with no post-fault window (``recovered_time``
        is 0) can't be judged and count as recovered."""
        if tolerance < 1.0:
            raise ValueError("recovery tolerance must be >= 1.0")
        if self.baseline_time <= 0 or self.recovered_time <= 0:
            return True
        return self.recovery <= tolerance

    def to_dict(self, tolerance: float = DEFAULT_RECOVERY_TOLERANCE) -> dict:
        """JSON-able summary of this scenario (for ``--json-out``)."""
        doc = asdict(self)
        doc["degradation"] = self.degradation
        doc["recovery"] = self.recovery
        doc["recovered"] = self.recovered(tolerance)
        return doc


def build_fault_plan(scenario: str, cfg: ChaosConfig) -> FaultPlan:
    """The fault schedule a batch-loop scenario injects."""
    onset, duration = cfg.onset, cfg.duration
    if scenario == "gpu-failure":
        spec = FaultSpec(FaultKind.GPU_FAILURE, onset, duration, gpu=1)
    elif scenario == "link-degradation":
        spec = FaultSpec(
            FaultKind.LINK_DEGRADATION, onset, duration, severity=0.75, link=(0, 1)
        )
    elif scenario == "link-partition":
        spec = FaultSpec(FaultKind.LINK_PARTITION, onset, duration, link=(0, 1))
    elif scenario == "host-stall":
        spec = FaultSpec(FaultKind.HOST_STALL, onset, duration, severity=0.9)
    elif scenario == "corrupt-slot":
        spec = FaultSpec(FaultKind.CORRUPT_SLOT, onset, duration, severity=0.05, gpu=1)
    elif scenario == "bit-rot":
        # A burst of flips inside the fault window.
        spec = FaultSpec(
            FaultKind.BIT_ROT, onset, duration, rate=6.0, seed=cfg.seed
        )
    elif scenario == "slow-leak-corruption":
        # A low drip across the whole run — the shape scrubbing exists
        # for, since no single read pattern sweeps every rotten slot.
        spec = FaultSpec(
            FaultKind.BIT_ROT, 0.0, float(cfg.num_batches),
            rate=1.5, seed=cfg.seed,
        )
    elif scenario == "heal-storm":
        # Staggered single-node deaths whose staged recoveries overlap:
        # node 1 dies twice around node 2's stint.
        T = float(cfg.num_batches)
        specs = (
            FaultSpec(FaultKind.NODE_DOWN, 0.25 * T, 0.15 * T, node=1),
            FaultSpec(FaultKind.NODE_DOWN, 0.45 * T, 0.15 * T, node=2),
            FaultSpec(FaultKind.NODE_DOWN, 0.65 * T, 0.15 * T, node=1),
        )
        return FaultPlan(faults=specs, seed=cfg.seed, name=scenario)
    else:
        raise ValueError(f"unknown batch-loop scenario {scenario!r}")
    return FaultPlan(faults=(spec,), seed=cfg.seed, name=scenario)


def build_node_fault_plan(scenario: str, cfg: ChaosConfig) -> FaultPlan:
    """The node-level fault schedule a cluster scenario injects."""
    onset, duration = cfg.onset, cfg.duration
    if scenario == "node_down":
        specs = (FaultSpec(FaultKind.NODE_DOWN, onset, duration, node=1),)
    elif scenario == "node_flap":
        # Down, briefly back, down again — two stints inside the window.
        stint = 0.4 * duration
        specs = (
            FaultSpec(FaultKind.NODE_DOWN, onset, stint, node=1),
            FaultSpec(
                FaultKind.NODE_DOWN, onset + 0.5 * duration, stint, node=1
            ),
        )
    elif scenario == "node_partition":
        specs = (FaultSpec(FaultKind.NODE_PARTITION, onset, duration, node=1),)
    else:
        raise ValueError(f"unknown node scenario {scenario!r}")
    return FaultPlan(faults=specs, seed=cfg.seed, name=scenario)


def _sum_counter(name: str) -> float:
    """Sum one counter over all of its label combinations."""
    reg = get_registry()
    series = getattr(reg, "series", None)
    if series is None:
        return 0.0
    return float(
        sum(s.value for s in series() if s.kind == "counter" and s.name == name)
    )


def _build_stack(cfg: ChaosConfig, plan: FaultPlan | None = None):
    """Platform + workload + filled cache + extractor (injector attached)."""
    from repro.bench.contexts import platform_by_name

    platform = platform_by_name(cfg.platform)
    rng = make_rng(cfg.seed)
    dim = max(1, cfg.entry_bytes // 4)
    table = rng.standard_normal((cfg.num_entries, dim)).astype(np.float32)
    pmf = zipf_pmf(cfg.num_entries, cfg.alpha)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))
    placement = hot_replicate_warm_partition_policy(
        hotness, capacity, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    injector = FaultInjector(plan, cache=cache) if plan is not None else None
    extractor = FactoredExtractor(cache, injector=injector)
    return platform, table, pmf, hotness, capacity, cache, extractor, injector, rng


def _run_batch_loop(scenario: str, cfg: ChaosConfig) -> ScenarioResult:
    """Drive the extractor through onset → fault → recovery."""
    plan = build_fault_plan(scenario, cfg)
    (platform, table, pmf, _hotness, _cap, _cache, extractor, injector, rng) = (
        _build_stack(cfg, plan)
    )
    rerouted_before = _sum_counter("faults.rerouted_keys")
    times: list[float] = []
    values_exact = True
    completed = 0
    for t in range(cfg.num_batches):
        now = float(t)
        injector.advance(now)
        keys = [
            rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
            for _ in range(platform.num_gpus)
        ]
        values, report = extractor.extract(keys, now=now)
        for got, want in zip(values, keys):
            if not np.array_equal(got, table[want]):
                values_exact = False
        times.append(report.time)
        completed += 1
    rerouted = int(_sum_counter("faults.rerouted_keys") - rerouted_before)

    clear = plan.last_clear_time()
    baseline = [x for t, x in enumerate(times) if t < cfg.onset]
    during = [x for t, x in enumerate(times) if cfg.onset <= t < clear]
    after = [x for t, x in enumerate(times) if t >= clear]
    result = ScenarioResult(
        scenario=scenario,
        ok=values_exact and completed == cfg.num_batches,
        completed_batches=completed,
        values_exact=values_exact,
        baseline_time=float(np.mean(baseline)) if baseline else 0.0,
        degraded_time=float(np.mean(during)) if during else 0.0,
        recovered_time=float(np.mean(after)) if after else 0.0,
        rerouted_keys=rerouted,
        notes=f"{completed}/{cfg.num_batches} batches, {rerouted} keys rerouted",
    )
    return result


def _run_node_loop(scenario: str, cfg: ChaosConfig) -> ScenarioResult:
    """Drive the cluster front-end through onset → node fault → recovery.

    Same shape as :func:`_run_batch_loop`, one tier up: the stack is a
    3-node replicated cluster (R=2) and the fault takes a whole node
    away.  "Rerouted keys" here are keys served off their primary owner
    (replica reads + host fallback).
    """
    from repro.bench.contexts import platform_by_name
    from repro.cluster.frontend import ClusterConfig, ClusterFrontend
    from repro.cluster.node import CacheNode

    plan = build_node_fault_plan(scenario, cfg)
    platform = platform_by_name(cfg.platform)
    rng = make_rng(cfg.seed)
    dim = max(1, cfg.entry_bytes // 4)
    table = rng.standard_normal((cfg.num_entries, dim)).astype(np.float32)
    pmf = zipf_pmf(cfg.num_entries, cfg.alpha)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))

    cluster_cfg = ClusterConfig(nodes=3, replication=2, seed=cfg.seed)
    placement = ClusterFrontend.build_placement(cluster_cfg, hotness)
    owners = placement.owners_for(np.arange(cfg.num_entries, dtype=np.int64))
    nodes = [
        CacheNode(
            node_id=node_id,
            platform=platform,
            table=table,
            hotness=hotness,
            member_mask=(owners == node_id).any(axis=1),
            capacity_entries=capacity,
        )
        for node_id in range(cluster_cfg.nodes)
    ]
    s0 = nodes[0].service_seconds(
        make_rng(cfg.seed + 3).choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
    )
    nodes[0]._next_gpu = 0
    frontend = ClusterFrontend(
        nodes, cluster_cfg, baseline_service=s0,
        hotness=hotness, placement=placement,
    )

    times: list[float] = []
    values_exact = True
    all_served = True
    completed = 0
    rerouted = 0
    for t in range(cfg.num_batches):
        now = float(t)
        health = plan.health_at(now)
        keys = rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
        resp = frontend.serve(keys, now, health=health, execute=True)
        if resp.partial:
            all_served = False
        served = np.ones(len(keys), dtype=bool)
        served[resp.failed_positions] = False
        if not np.array_equal(resp.values[served], table[keys[served]]):
            values_exact = False
        rerouted += resp.replica_keys + resp.host_fallback_keys
        times.append(resp.elapsed)
        completed += 1

    violations = frontend.verify_integrity()
    clear = plan.last_clear_time()
    baseline = [x for t, x in enumerate(times) if t < cfg.onset]
    during = [x for t, x in enumerate(times) if cfg.onset <= t < clear]
    after = [x for t, x in enumerate(times) if t >= clear]
    return ScenarioResult(
        scenario=scenario,
        ok=(
            values_exact
            and all_served
            and not violations
            and completed == cfg.num_batches
        ),
        completed_batches=completed,
        values_exact=values_exact,
        baseline_time=float(np.mean(baseline)) if baseline else 0.0,
        degraded_time=float(np.mean(during)) if during else 0.0,
        recovered_time=float(np.mean(after)) if after else 0.0,
        rerouted_keys=rerouted,
        notes=(
            f"{completed}/{cfg.num_batches} batches, "
            f"{rerouted} keys served off-primary, "
            f"{len(violations)} integrity violation(s)"
        ),
    )


def _run_scrub_loop(scenario: str, cfg: ChaosConfig) -> ScenarioResult:
    """Silent-corruption drill: bit-rot flips cached bytes while the
    anti-entropy scrubber and the read-path guard race to catch it.

    ``bit-rot`` is a burst (high event rate over the fault window);
    ``slow-leak-corruption`` drips a low rate across the *whole* run —
    the shape scrubbing exists for, since no single read pattern will
    sweep every rotten slot.  Pass criteria: every *served* value stays
    bit-exact (the guard patches rot in flight), the drill detected the
    corruption at all, and a final full scrub + integrity scan comes
    back clean.
    """
    from repro.repair import CacheScrubber

    plan = build_fault_plan(scenario, cfg)
    (platform, table, pmf, _hotness, _cap, cache, extractor, injector, rng) = (
        _build_stack(cfg, plan)
    )
    scrubber = CacheScrubber(cache)
    times: list[float] = []
    values_exact = True
    completed = 0
    patched = 0
    for t in range(cfg.num_batches):
        now = float(t)
        injector.advance(now)
        keys = [
            rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
            for _ in range(platform.num_gpus)
        ]
        values, report = extractor.extract(keys, now=now)
        for gpu, (got, want) in enumerate(zip(values, keys)):
            got, n = scrubber.guard_read(gpu, want, got)
            patched += n
            if not np.array_equal(got, table[want]):
                values_exact = False
        scrubber.tick(now)
        times.append(report.time)
        completed += 1
    scrubber.scrub_all()
    violations = cache.verify_integrity()
    detected = scrubber.mismatches_total + scrubber.read_repairs_total

    clear = plan.last_clear_time()
    onset = plan.faults[0].onset
    baseline = [x for t, x in enumerate(times) if t < onset]
    during = [x for t, x in enumerate(times) if onset <= t < clear]
    after = [x for t, x in enumerate(times) if t >= clear]
    return ScenarioResult(
        scenario=scenario,
        ok=(
            values_exact
            and not violations
            and detected > 0
            and completed == cfg.num_batches
        ),
        completed_batches=completed,
        values_exact=values_exact,
        baseline_time=float(np.mean(baseline)) if baseline else 0.0,
        degraded_time=float(np.mean(during)) if during else 0.0,
        recovered_time=float(np.mean(after)) if after else 0.0,
        rerouted_keys=patched,
        notes=(
            f"{completed}/{cfg.num_batches} batches, "
            f"{scrubber.mismatches_total} scrub mismatch(es), "
            f"{scrubber.read_repairs_total} read-guard patch(es), "
            f"{scrubber.repaired_total} slot(s) repaired, "
            f"{len(violations)} integrity violation(s)"
        ),
        extra={
            "scrub_mismatches": scrubber.mismatches_total,
            "read_repairs": scrubber.read_repairs_total,
            "repaired": scrubber.repaired_total,
            "scanned": scrubber.scanned_total,
        },
    )


def _run_heal_storm(cfg: ChaosConfig) -> ScenarioResult:
    """Staggered node deaths whose staged recoveries overlap.

    Node 1 dies, heals and begins a rate-limited refill; node 2 dies
    *during* that refill; node 1 dies a second time before the dust
    settles.  The watchdog must track every node through
    healthy → ejected → recovering → healthy, the front-end must keep
    answering bit-exactly throughout, and when the storm passes every
    cache must hold its full placement again (integrity-verified).
    """
    from repro.bench.contexts import platform_by_name
    from repro.cluster.frontend import ClusterConfig, ClusterFrontend
    from repro.cluster.node import CacheNode
    from repro.core.policy import Placement
    from repro.repair import CacheScrubber, NodeWatchdog, StagedRecovery
    from repro.faults.spec import HEALTHY

    plan = build_fault_plan("heal-storm", cfg)
    platform = platform_by_name(cfg.platform)
    rng = make_rng(cfg.seed)
    dim = max(1, cfg.entry_bytes // 4)
    table = rng.standard_normal((cfg.num_entries, dim)).astype(np.float32)
    pmf = zipf_pmf(cfg.num_entries, cfg.alpha)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))

    cluster_cfg = ClusterConfig(nodes=3, replication=2, seed=cfg.seed)
    placement = ClusterFrontend.build_placement(cluster_cfg, hotness)
    owners = placement.owners_for(np.arange(cfg.num_entries, dtype=np.int64))
    nodes = [
        CacheNode(
            node_id=node_id,
            platform=platform,
            table=table,
            hotness=hotness,
            member_mask=(owners == node_id).any(axis=1),
            capacity_entries=capacity,
        )
        for node_id in range(cluster_cfg.nodes)
    ]
    s0 = nodes[0].service_seconds(
        make_rng(cfg.seed + 3).choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
    )
    nodes[0]._next_gpu = 0
    frontend = ClusterFrontend(
        nodes, cluster_cfg, baseline_service=s0,
        hotness=hotness, placement=placement,
    )
    watchdog = NodeWatchdog(range(cluster_cfg.nodes))
    frontend.watchdog = watchdog
    scrubbers = {}
    for node in nodes:
        scrubbers[node.node_id] = CacheScrubber(node.cache, node=node.node_id)
        node.read_guard = scrubbers[node.node_id]

    times: list[float] = []
    values_exact = True
    all_served = True
    completed = 0
    rerouted = 0
    restage_blocks = 0
    prev_down: frozenset[int] = frozenset()
    lost: dict[int, Placement] = {}
    recoveries: dict[int, StagedRecovery] = {}
    for t in range(cfg.num_batches):
        now = float(t)
        health = plan.health_at(now)
        for node_id in sorted(health.down_nodes - prev_down):
            dropped = frontend.nodes[node_id].drop_gpu_caches()
            if node_id in recoveries:
                rem = recoveries.pop(node_id).remaining_placement()
                dropped = Placement(
                    num_entries=dropped.num_entries,
                    per_gpu=tuple(
                        np.union1d(a, b)
                        for a, b in zip(dropped.per_gpu, rem.per_gpu)
                    ),
                )
            lost[node_id] = dropped
        for node_id in sorted(prev_down - health.down_nodes):
            rec = StagedRecovery(
                frontend.nodes[node_id], lost.pop(node_id), hotness,
                chunk_entries=64,
            )
            recoveries[node_id] = rec
            watchdog.attach_recovery(node_id, rec)
        prev_down = health.down_nodes
        # Each batch's idle link time funds a slice of every refill —
        # small enough that recoveries span batches and overlap.
        for node_id, rec in list(recoveries.items()):
            restage_blocks += rec.grant(0.5 * s0).blocks
            if rec.done:
                del recoveries[node_id]
        for scrubber in scrubbers.values():
            scrubber.tick(now)
        watchdog.observe(
            now, health, frontend.breakers.states(),
            {n: s.quarantine_depth for n, s in scrubbers.items()},
        )
        keys = rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)
        resp = frontend.serve(keys, now, health=health, execute=True)
        if resp.partial:
            all_served = False
        served = np.ones(len(keys), dtype=bool)
        served[resp.failed_positions] = False
        if not np.array_equal(resp.values[served], table[keys[served]]):
            values_exact = False
        rerouted += resp.replica_keys + resp.host_fallback_keys
        times.append(resp.elapsed)
        completed += 1

    # Storm over: finish every refill, scrub everything, final verify.
    end = float(cfg.num_batches)
    for node_id in sorted(lost):
        rec = StagedRecovery(frontend.nodes[node_id], lost.pop(node_id), hotness)
        restage_blocks += rec.finish().blocks
    for node_id, rec in list(recoveries.items()):
        restage_blocks += rec.finish().blocks
        del recoveries[node_id]
    for scrubber in scrubbers.values():
        scrubber.scrub_all()
    watchdog.observe(
        end, HEALTHY, frontend.breakers.states(),
        {n: s.quarantine_depth for n, s in scrubbers.items()},
    )
    violations = frontend.verify_integrity()

    clear = plan.last_clear_time()
    first_onset = plan.faults[0].onset
    baseline = [x for t, x in enumerate(times) if t < first_onset]
    during = [x for t, x in enumerate(times) if first_onset <= t < clear]
    after = [x for t, x in enumerate(times) if t >= clear]
    transitions = len(watchdog.transitions)
    return ScenarioResult(
        scenario="heal-storm",
        ok=(
            values_exact
            and all_served
            and not violations
            and transitions >= 6  # 3 deaths + 3 returns, at minimum
            and completed == cfg.num_batches
        ),
        completed_batches=completed,
        values_exact=values_exact,
        baseline_time=float(np.mean(baseline)) if baseline else 0.0,
        degraded_time=float(np.mean(during)) if during else 0.0,
        recovered_time=float(np.mean(after)) if after else 0.0,
        rerouted_keys=rerouted,
        notes=(
            f"{completed}/{cfg.num_batches} batches, "
            f"{transitions} watchdog transition(s), "
            f"{restage_blocks} block(s) re-staged, "
            f"{rerouted} keys served off-primary, "
            f"{len(violations)} integrity violation(s)"
        ),
        extra={
            "watchdog_transitions": transitions,
            "restage_blocks": restage_blocks,
        },
    )


def _run_solver_timeout(cfg: ChaosConfig) -> ScenarioResult:
    """MILP times out → the fallback chain must answer within its deadline."""
    from repro.bench.contexts import platform_by_name

    platform = platform_by_name(cfg.platform)
    pmf = zipf_pmf(cfg.num_entries, cfg.alpha)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))

    def timed_out(*_args, **_kwargs):
        raise PolicySolveTimeout("injected: HiGHS budget exhausted")

    clear_policy_cache()
    deadline_seconds = 5.0
    start = _time.monotonic()
    outcome = solve_policy_with_fallback(
        platform,
        hotness,
        capacity,
        cfg.entry_bytes,
        fallback=FallbackConfig(deadline_seconds=deadline_seconds),
        solve_fn=timed_out,
    )
    elapsed = _time.monotonic() - start
    ok = outcome.source in ("greedy", "cached") and elapsed < deadline_seconds
    return ScenarioResult(
        scenario="solver-timeout",
        ok=ok,
        values_exact=True,
        baseline_time=outcome.est_time,
        degraded_time=outcome.est_time,
        recovered_time=outcome.est_time,
        notes=(
            f"fallback source={outcome.source} after {outcome.attempts} MILP "
            f"attempt(s) in {elapsed:.2f}s (deadline {deadline_seconds:.0f}s)"
        ),
        extra={"source": outcome.source, "attempts": outcome.attempts},
    )


def _run_refresh_interrupt(cfg: ChaosConfig) -> ScenarioResult:
    """Interrupt a refresh mid-flight; the cache must roll back bit-identically."""
    (platform, table, _pmf, hotness, capacity, cache, _extractor, _inj, rng) = (
        _build_stack(cfg)
    )
    target = hot_replicate_warm_partition_policy(
        hotness, capacity, platform.num_gpus, 0.0
    )
    pre_map = cache.source_map.copy()
    probe = rng.integers(0, cfg.num_entries, size=256)
    pre_values = [cache.lookup(g, probe).values.copy() for g in range(platform.num_gpus)]

    calls = {"n": 0}

    def abort() -> bool:
        calls["n"] += 1
        return calls["n"] > 3  # let a few steps land, then pull the plug

    refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
    outcome = refresher.refresh(target, abort=abort)
    identical = bool(np.array_equal(cache.source_map, pre_map)) and all(
        np.array_equal(cache.lookup(g, probe).values, pre_values[g])
        for g in range(platform.num_gpus)
    )
    violations = cache.verify_integrity()

    # Recovery: the same refresh completes once the interruption clears.
    final = refresher.refresh(target)
    recovered = final.triggered and not final.interrupted
    ok = outcome.interrupted and outcome.rolled_back and identical and not violations
    return ScenarioResult(
        scenario="refresh-interrupt",
        ok=ok and recovered,
        values_exact=identical,
        notes=(
            f"rolled back after {outcome.steps} step(s), "
            f"bit-identical={identical}, integrity violations={len(violations)}, "
            f"retry moved {final.entries_moved} entries"
        ),
        extra={"rollback_steps": outcome.steps, "retry_moved": final.entries_moved},
    )


def run_scenario(scenario: str, cfg: ChaosConfig | None = None) -> ScenarioResult:
    """Run one scenario; raises ``ValueError`` for unknown names."""
    cfg = cfg or ChaosConfig()
    if scenario == "solver-timeout":
        result = _run_solver_timeout(cfg)
    elif scenario == "refresh-interrupt":
        result = _run_refresh_interrupt(cfg)
    elif scenario == "heal-storm":
        result = _run_heal_storm(cfg)
    elif scenario in ("bit-rot", "slow-leak-corruption"):
        result = _run_scrub_loop(scenario, cfg)
    elif scenario in NODE_SCENARIOS:
        result = _run_node_loop(scenario, cfg)
    elif scenario in SCENARIOS:
        result = _run_batch_loop(scenario, cfg)
    else:
        raise ValueError(f"unknown scenario {scenario!r}; try one of {SCENARIOS}")
    reg = get_registry()
    if reg.enabled:
        reg.counter(
            "chaos.scenarios", scenario=scenario, ok=str(result.ok).lower()
        ).inc()
    logger.info(
        "chaos %s: ok=%s (%s)", scenario, result.ok, result.notes or "no notes"
    )
    return result


def run_matrix(
    scenarios: tuple[str, ...] | list[str] | None = None,
    cfg: ChaosConfig | None = None,
) -> list[ScenarioResult]:
    """Run a list of scenarios (default: all of them)."""
    return [run_scenario(s, cfg) for s in (scenarios or SCENARIOS)]


def summarize_results(
    results: list[ScenarioResult],
    tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
) -> dict:
    """Machine-readable matrix summary (what ``--json-out`` writes).

    ``ok`` is the CLI's exit gate: every scenario passed *and* recovered —
    a run whose degraded metrics never return within ``tolerance`` of
    baseline fails even if values stayed exact throughout.
    """
    unrecovered = [r.scenario for r in results if not r.recovered(tolerance)]
    failed = [r.scenario for r in results if not r.ok]
    return {
        "schema": "repro.chaos/v1",
        "recovery_tolerance": tolerance,
        "scenarios": [r.to_dict(tolerance) for r in results],
        "passed": len(results) - len(failed),
        "failed": failed,
        "unrecovered": unrecovered,
        "ok": not failed and not unrecovered,
    }


def render_results(
    results: list[ScenarioResult],
    tolerance: float = DEFAULT_RECOVERY_TOLERANCE,
) -> str:
    """Fixed-width verdict table for the CLI."""
    header = (
        f"{'scenario':18s} {'ok':4s} {'batches':>7s} {'exact':>5s} "
        f"{'degrade':>8s} {'recover':>8s} {'rerouted':>8s}  notes"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        recovered = r.recovered(tolerance)
        verdict = "PASS" if r.ok and recovered else "FAIL"
        note = r.notes if recovered else f"NEVER RECOVERED; {r.notes}"
        lines.append(
            f"{r.scenario:18s} {verdict:4s} "
            f"{r.completed_batches:7d} {'yes' if r.values_exact else 'NO':>5s} "
            f"{r.degradation:7.2f}x {r.recovery:7.2f}x "
            f"{r.rerouted_keys:8d}  {note}"
        )
    passed = sum(1 for r in results if r.ok and r.recovered(tolerance))
    lines.append(f"{passed}/{len(results)} scenarios passed")
    return "\n".join(lines)
