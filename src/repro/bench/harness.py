"""Benchmark result containers and plain-text table rendering.

Every figure/table driver in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` — a titled list of uniform row dicts — which the
``benchmarks/`` scripts render with :func:`render_table` so each bench
prints the same rows/series the paper reports.

:func:`run_with_metrics` is the observability entry point: it runs one
driver inside a private :class:`~repro.obs.MetricsRegistry` so everything
the hot paths record (cache hit splits, per-GPU extraction timings,
solver build/solve times, …) lands in one machine-readable artifact
instead of the global registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs import MetricsRegistry, use_registry, write_json
from repro.utils.stats import geometric_mean


@dataclass
class ExperimentResult:
    """A reproduced table/figure: title + uniform rows (+ free-form notes)."""

    experiment: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: registry snapshot attached by :func:`run_with_metrics` (else None)
    metrics: dict[str, Any] | None = None

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def columns(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def series(self, key: str) -> list[Any]:
        return [row.get(key) for row in self.rows]


def _format_cell(value: Any) -> str:
    if value is None:
        return "✗"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    lines = [f"== {result.experiment}: {result.title} =="]
    cols = result.columns()
    if cols:
        cells = [[_format_cell(row.get(c)) for c in cols] for row in result.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(cols)
        ]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row_cells in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def run_with_metrics(
    driver: Callable[..., ExperimentResult],
    *args: Any,
    metrics_out: str | Path | None = None,
    registry: MetricsRegistry | None = None,
    **kwargs: Any,
) -> ExperimentResult:
    """Run one experiment driver with instrumentation captured.

    The driver executes inside ``registry`` (a fresh one by default), so
    only this run's counters/timings are collected.  The snapshot is
    attached to ``result.metrics`` and, when ``metrics_out`` is given,
    also written as a JSON artifact.
    """
    registry = registry or MetricsRegistry(getattr(driver, "__name__", "run"))
    with use_registry(registry):
        result = driver(*args, **kwargs)
    result.metrics = registry.snapshot()
    if metrics_out is not None:
        write_json(registry, metrics_out)
    return result


def speedup_summary(
    rows: list[dict[str, Any]], baseline_key: str, target_key: str
) -> dict[str, float]:
    """Geometric-mean and max speedup of target over baseline across rows.

    Rows with a missing side (unsupported configuration) are skipped, as
    the paper's averages do.
    """
    ratios = []
    for row in rows:
        base = row.get(baseline_key)
        target = row.get(target_key)
        if base is None or target is None or target <= 0:
            continue
        ratios.append(base / target)
    if not ratios:
        return {"geomean": float("nan"), "max": float("nan"), "count": 0}
    return {
        "geomean": geometric_mean(ratios),
        "max": max(ratios),
        "count": len(ratios),
    }
