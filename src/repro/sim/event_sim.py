"""Chunk-level event-driven extraction simulator (cross-validation).

The analytic models in :mod:`repro.sim.mechanisms` are fluid
approximations: the factored model assumes perfect local padding, and the
naive-peer model solves a steady-state occupancy fixed point.  This module
simulates the same physics *discretely* — individual SMs pulling
fixed-size chunks, link rates recomputed at every completion event — and
is used by tests and the `bench_misc_event_sim` benchmark to check that
the fluid models converge to the discrete behaviour (within chunking
noise).

Shared physics, independent dynamics: the per-link delivered-bandwidth law
(full bandwidth up to tolerance, degraded beyond — §5.1/Figure 6) is the
same :class:`~repro.sim.congestion.CongestionModel`; everything about
*when* which SM reads from where is simulated, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.spec import FaultPlan
from repro.hardware.platform import Platform
from repro.sim.congestion import CongestionModel
from repro.sim.mechanisms import GpuDemand, core_dedication
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one discrete simulation."""

    total_time: float
    chunks_processed: int
    events: int


@dataclass(frozen=True)
class CoalescedSimResult:
    """Outcome of serving a coalesced micro-batch as one union extraction."""

    #: when every member completes: the union extraction's finish time.
    total_time: float
    #: the union demand priced once, discretely.
    union_time: float
    #: each member demand priced alone (the un-coalesced counterfactual).
    solo_times: tuple[float, ...]

    @property
    def speedup(self) -> float:
        """Sequential-solo time over the shared union time (≥ 1 whenever
        the members overlap or merely share launch overheads)."""
        if self.union_time <= 0:
            return 1.0
        return sum(self.solo_times) / self.union_time


@dataclass(frozen=True)
class HedgedSimResult:
    """Outcome of racing a primary extraction against a host-DRAM hedge."""

    #: when the request completes: min(primary, hedge) in batch-relative
    #: seconds.
    total_time: float
    primary_time: float
    #: absolute completion time of the hedge (issue delay included).
    hedge_time: float
    #: ``"primary"`` or ``"hedge"`` — whichever finished first.
    winner: str

    @property
    def hedge_won(self) -> bool:
        return self.winner == "hedge"


@dataclass(frozen=True)
class PrefetchedSimResult:
    """Outcome of extraction with part of the host volume pre-staged.

    The prefetch transfer overlaps an idle gap before the batch; only its
    non-overlapped remainder (:attr:`critical_seconds`) delays the batch.
    """

    #: batch-relative completion: prefetch remainder + shifted extraction.
    total_time: float
    #: the un-prefetched demand priced discretely (the counterfactual).
    baseline_time: float
    #: the staged host→GPU transfer priced discretely.
    prefetch_time: float
    #: share of the prefetch transfer hidden by the idle gap.
    overlapped_seconds: float
    #: prefetch remainder that lands ahead of the batch.
    critical_seconds: float
    #: the demand with staged bytes shifted to the local tier, priced
    #: discretely.
    shifted_time: float

    @property
    def speedup(self) -> float:
        """Baseline over prefetched end-to-end time (>1 when staging and
        overlap beat re-reading the same bytes over PCIe at batch time)."""
        if self.total_time <= 0:
            return 1.0
        return self.baseline_time / self.total_time


def _apply_faults(
    platform: Platform,
    demand: GpuDemand,
    faults: FaultPlan | None,
    now: float,
) -> tuple[Platform, GpuDemand]:
    """Degrade the platform and reroute dead-source volume at ``now``.

    Delegates to the pipeline's :func:`~repro.core.pipeline.apply_health`
    (function-level import: ``repro.core`` imports this package back), so
    the discrete simulator degrades inputs exactly like the batch engine.
    """
    if faults is None:
        return platform, demand
    from repro.core.pipeline import apply_health

    platform, demands, _ = apply_health(platform, [demand], faults.health_at(now))
    return platform, demands[0]


def _link_rate(
    model: CongestionModel,
    peak: float,
    per_core_bw: float,
    active_cores: int,
) -> float:
    """Per-core byte rate on a link with ``active_cores`` concurrent SMs."""
    if active_cores <= 0:
        return 0.0
    tolerance = peak / per_core_bw
    delivered = model.effective_bandwidth(peak, active_cores, tolerance)
    return min(per_core_bw, delivered / active_cores)


def simulate_naive_event_driven(
    platform: Platform,
    demand: GpuDemand,
    chunk_bytes: float = 64 * 1024,
    model: CongestionModel | None = None,
    readers_per_source: dict[int, int] | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    now: float = 0.0,
) -> EventSimResult:
    """Discretely simulate unorganized (random-dispatch) extraction.

    The batch is cut into chunks, shuffled (random dispatch), and dealt to
    SMs round-robin.  Each SM serially processes its queue; link rates are
    recomputed whenever any SM finishes a chunk.  As ``chunk_bytes → 0``
    this approaches the fluid fixed point of
    :func:`repro.sim.congestion.solve_congested_extraction`.

    ``readers_per_source`` uses the same semantics as
    :func:`repro.sim.mechanisms.naive_peer_extraction`: on a switch
    platform, ``k`` concurrent reader GPUs shrink a source's usable
    outbound share to ``outbound / k``.
    """
    from repro.hardware.topology import TopologyKind

    platform, demand = _apply_faults(platform, demand, faults, now)
    model = model or CongestionModel()
    gpu = platform.gpu
    rng = make_rng(seed)
    readers = readers_per_source or {}

    chunks: list[int] = []  # source per chunk
    peaks = {}
    for src, vol in demand.volumes.items():
        if vol <= 0:
            continue
        if src == demand.dst or platform.is_backing(src):
            peak = platform.bandwidth(demand.dst, src)
        elif platform.topology.kind is TopologyKind.SWITCH:
            n_readers = max(1, readers.get(src, 1))
            peak = platform.topology.outbound_bandwidth(src) / n_readers
        else:
            peak = platform.bandwidth(demand.dst, src)
        if peak <= 0:
            raise ValueError(f"source {src} unreachable from GPU {demand.dst}")
        peaks[src] = peak
        chunks.extend([src] * max(1, int(round(vol / chunk_bytes))))
    if not chunks:
        return EventSimResult(0.0, 0, 0)
    order = rng.permutation(len(chunks))

    num_cores = gpu.num_cores
    queues: list[list[int]] = [[] for _ in range(num_cores)]
    for i, chunk_idx in enumerate(order):
        queues[i % num_cores].append(chunks[chunk_idx])

    # Per-core state: current source (or None) and remaining bytes.
    current: list[int | None] = [None] * num_cores
    remaining = np.zeros(num_cores)
    positions = [0] * num_cores
    for core in range(num_cores):
        if queues[core]:
            current[core] = queues[core][0]
            positions[core] = 1
            remaining[core] = chunk_bytes

    clock = 0.0
    events = 0
    processed = 0
    while True:
        active = [c for c in range(num_cores) if current[c] is not None]
        if not active:
            break
        counts: dict[int, int] = {}
        for core in active:
            counts[current[core]] = counts.get(current[core], 0) + 1
        rates = {
            src: _link_rate(model, peaks[src], gpu.per_core_bandwidth, n)
            for src, n in counts.items()
        }
        # Earliest completion under current rates.
        dt = min(
            remaining[core] / rates[current[core]]
            for core in active
            if rates[current[core]] > 0
        )
        clock += dt
        events += 1
        for core in active:
            remaining[core] -= dt * rates[current[core]]
            if remaining[core] <= 1e-9:
                processed += 1
                if positions[core] < len(queues[core]):
                    current[core] = queues[core][positions[core]]
                    positions[core] += 1
                    remaining[core] = chunk_bytes
                else:
                    current[core] = None
                    remaining[core] = 0.0
    clock += _access_latency(platform, demand)
    return EventSimResult(total_time=clock, chunks_processed=processed, events=events)


def _access_latency(platform: Platform, demand: GpuDemand) -> float:
    """Worst per-source access latency of the demand's tiers.

    Deep backing tiers (SSD, CXL) charge a fixed access latency on top of
    their bandwidth; the discrete simulators pay the slowest source's
    latency once per batch, mirroring the analytic factored model's
    per-group ``tier_latency`` term.  Zero on single-tier platforms (DRAM
    tier latency is 0), so existing cross-validation stays exact.
    """
    return max(
        (
            platform.tier_latency(src)
            for src, vol in demand.volumes.items()
            if vol > 0
        ),
        default=0.0,
    )


def simulate_factored_event_driven(
    platform: Platform,
    demand: GpuDemand,
    chunk_bytes: float = 64 * 1024,
    faults: FaultPlan | None = None,
    now: float = 0.0,
) -> EventSimResult:
    """Discretely simulate the §5.3 factored schedule.

    Dedicated SMs drain their group's chunk queue; each SM that runs out
    of non-local work switches to the local queue (the low-priority
    padding).  Converges to
    :func:`repro.sim.mechanisms.factored_extraction` as chunks shrink.
    ``faults``/``now`` price the schedule under a fault plan: degraded
    links slow their group, dead sources' chunks drain via host.
    """
    platform, demand = _apply_faults(platform, demand, faults, now)
    gpu = platform.gpu
    dedication = core_dedication(platform, demand.dst, list(demand.volumes))

    # Build per-source chunk counts.
    group_chunks: dict[int, int] = {}
    peaks: dict[int, float] = {}
    for src, vol in demand.volumes.items():
        if vol <= 0:
            continue
        peaks[src] = platform.bandwidth(demand.dst, src)
        group_chunks[src] = max(1, int(round(vol / chunk_bytes)))

    local_src = demand.dst
    local_remaining = group_chunks.pop(local_src, 0)

    # Assign cores: dedicated per non-local group, remainder to local.
    assignments: list[int] = []  # core -> source
    for src, count in group_chunks.items():
        cores = dedication.get(src, 1)
        # Never beyond the link's tolerance (matches the analytic model's
        # busy-core accounting).
        busy = min(cores, platform.tolerance(demand.dst, src))
        assignments.extend([src] * busy)
    num_cores = gpu.num_cores
    free_cores = num_cores - len(assignments)

    remaining = dict(group_chunks)
    clock = 0.0
    events = 0
    processed = 0
    # Core states: (source or local) and time when it finishes its chunk.
    cores: list[list] = []
    for src in assignments:
        cores.append([src, None])
    for _ in range(max(free_cores, 0)):
        cores.append(["local", None])

    def chunk_time(src) -> float:
        if src == "local":
            return chunk_bytes / gpu.per_core_bandwidth
        n = sum(1 for c in cores if c[0] == src and c[1] is not None)
        rate = min(gpu.per_core_bandwidth, peaks[src] / max(n, 1))
        return chunk_bytes / rate

    # Seed initial chunks.
    for core in cores:
        src = core[0]
        if src == "local":
            if local_remaining > 0:
                local_remaining -= 1
                core[1] = 0.0  # placeholder; set below
            else:
                core[1] = None
        else:
            if remaining.get(src, 0) > 0:
                remaining[src] -= 1
                core[1] = 0.0
            else:
                core[0] = "local"
                if local_remaining > 0:
                    local_remaining -= 1
                    core[1] = 0.0
                else:
                    core[1] = None
    for core in cores:
        if core[1] is not None:
            core[1] = chunk_time(core[0])

    while True:
        active = [c for c in cores if c[1] is not None]
        if not active:
            break
        t = min(c[1] for c in active)
        clock = t
        events += 1
        for core in cores:
            if core[1] is None or core[1] > t + 1e-15:
                continue
            processed += 1
            src = core[0]
            if src != "local" and remaining.get(src, 0) > 0:
                remaining[src] -= 1
                core[1] = t + chunk_time(src)
            elif local_remaining > 0:
                core[0] = "local"
                local_remaining -= 1
                core[1] = t + chunk_time("local")
            else:
                core[1] = None
    clock += _access_latency(platform, demand)
    return EventSimResult(total_time=clock, chunks_processed=processed, events=events)


def simulate_coalesced_extraction(
    platform: Platform,
    union_demand: GpuDemand,
    member_demands: list[GpuDemand],
    chunk_bytes: float = 64 * 1024,
    faults: FaultPlan | None = None,
    now: float = 0.0,
) -> CoalescedSimResult:
    """Price a coalesced micro-batch in the discrete event model.

    The serving runtime's cross-request coalescer unions the member key
    sets and extracts the deduplicated union once; every member then
    completes when the shared extraction does.  This prices that shape
    discretely: the union demand runs once through the factored
    event-driven simulator, and each member demand is priced alone as the
    un-coalesced counterfactual, so tests can check the conservation
    claim (one shared extraction never exceeds the sequential members)
    against independent physics.

    ``member_demands`` must target the same destination as
    ``union_demand`` — a micro-batch is per-GPU by construction.
    """
    for d in member_demands:
        if d.dst != union_demand.dst:
            raise ValueError(
                "coalesced members must share the union's destination GPU"
            )
    union = simulate_factored_event_driven(
        platform, union_demand, chunk_bytes=chunk_bytes, faults=faults, now=now
    )
    solos = tuple(
        simulate_factored_event_driven(
            platform, d, chunk_bytes=chunk_bytes, faults=faults, now=now
        ).total_time
        for d in member_demands
    )
    return CoalescedSimResult(
        total_time=union.total_time,
        union_time=union.total_time,
        solo_times=solos,
    )


def simulate_prefetched_extraction(
    platform: Platform,
    demand: GpuDemand,
    staged_bytes: float,
    idle_seconds: float = 0.0,
    chunk_bytes: float = 64 * 1024,
    faults: FaultPlan | None = None,
    now: float = 0.0,
) -> PrefetchedSimResult:
    """Price lookahead prefetching in the discrete event model.

    The oracle cacher stages ``staged_bytes`` of the batch's host volume
    into the destination GPU's tier during an ``idle_seconds`` link gap
    before the batch arrives; at batch time those bytes are local reads.
    Both arms run through the factored event-driven simulator under the
    same fault plan:

    * the *prefetch transfer* is a host-only demand of ``staged_bytes``;
      only ``max(0, transfer - idle)`` delays the batch;
    * the *shifted extraction* is the original demand with the staged
      bytes moved off the host path
      (:func:`~repro.core.pipeline.shift_staged_demand` — the exact
      re-pricing the serving runtime applies on a staging hit).

    Tests use this to cross-validate the runtime's accounting against
    independent physics: the shifted extraction never exceeds the
    baseline, and with enough idle the end-to-end time strictly beats it.
    """
    if staged_bytes < 0:
        raise ValueError("staged bytes must be non-negative")
    if idle_seconds < 0:
        raise ValueError("idle time must be non-negative")
    from repro.core.pipeline import shift_staged_demand

    baseline = simulate_factored_event_driven(
        platform, demand, chunk_bytes=chunk_bytes, faults=faults, now=now
    )
    backing_vol = sum(v for s, v in demand.volumes.items() if s < 0)
    staged = min(staged_bytes, backing_vol)
    if staged <= 0:
        return PrefetchedSimResult(
            total_time=baseline.total_time,
            baseline_time=baseline.total_time,
            prefetch_time=0.0,
            overlapped_seconds=0.0,
            critical_seconds=0.0,
            shifted_time=baseline.total_time,
        )
    shifted_demand = shift_staged_demand(demand, staged, platform)
    # The staging transfer pulls exactly the bytes the shift drained from
    # each tier (most-expensive tier first), so a byte staged from SSD is
    # priced at SSD bandwidth + latency, not DRAM's.
    transfer_volumes = {
        s: v - shifted_demand.volumes.get(s, 0.0)
        for s, v in demand.volumes.items()
        if s < 0 and v - shifted_demand.volumes.get(s, 0.0) > 0
    }
    transfer = simulate_factored_event_driven(
        platform,
        GpuDemand(dst=demand.dst, volumes=transfer_volumes),
        chunk_bytes=chunk_bytes,
        faults=faults,
        now=now,
    )
    overlapped = min(idle_seconds, transfer.total_time)
    critical = transfer.total_time - overlapped
    shifted = simulate_factored_event_driven(
        platform,
        shifted_demand,
        chunk_bytes=chunk_bytes,
        faults=faults,
        now=now,
    )
    return PrefetchedSimResult(
        total_time=critical + shifted.total_time,
        baseline_time=baseline.total_time,
        prefetch_time=transfer.total_time,
        overlapped_seconds=overlapped,
        critical_seconds=critical,
        shifted_time=shifted.total_time,
    )


def simulate_hedged_extraction(
    platform: Platform,
    demand: GpuDemand,
    hedge_issue_at: float = 0.0,
    chunk_bytes: float = 64 * 1024,
    faults: FaultPlan | None = None,
    now: float = 0.0,
    tier_shares: dict[int, float] | None = None,
) -> HedgedSimResult:
    """Price a deadline hedge: primary plan vs a host-DRAM gather, discretely.

    The serving runtime's hedged host-fallback issues a host-only gather
    of the whole batch ``hedge_issue_at`` seconds after the primary plan
    launches, and the request takes whichever completes first.  Both arms
    are priced with the factored event-driven simulator under the same
    fault plan, so a degraded link that slows the primary is exactly what
    makes the hedge win.

    The hedge's host gather contends for PCIe like any host group would;
    modelling it as an independent event-driven run (rather than adding
    its volume to the primary's host group) matches the runtime's
    semantics: the hedge is a *separate* racing request whose result is
    taken instead of, not merged with, the primary's.

    ``tier_shares`` prices the hedge honestly on a deep memory hierarchy:
    the whole-batch gather is split across backing tiers in proportion to
    where the entries actually live (the cache's ``backing_shares``), so
    a hedge against a mostly-SSD-resident table pays SSD bandwidth and
    latency, not DRAM's.  Without shares the hedge reads everything from
    host DRAM — the single-tier behaviour, unchanged.
    """
    if hedge_issue_at < 0:
        raise ValueError("hedge issue time must be non-negative")
    primary = simulate_factored_event_driven(
        platform, demand, chunk_bytes=chunk_bytes, faults=faults, now=now
    )
    from repro.core.pipeline import backing_fallback_demand

    host_demand = backing_fallback_demand(demand, tier_shares)
    hedge = simulate_factored_event_driven(
        platform, host_demand, chunk_bytes=chunk_bytes, faults=faults, now=now
    )
    hedge_done = hedge_issue_at + hedge.total_time
    if hedge_done < primary.total_time:
        return HedgedSimResult(
            total_time=hedge_done,
            primary_time=primary.total_time,
            hedge_time=hedge_done,
            winner="hedge",
        )
    return HedgedSimResult(
        total_time=primary.total_time,
        primary_time=primary.total_time,
        hedge_time=hedge_done,
        winner="primary",
    )


@dataclass(frozen=True)
class RpcSimResult:
    """Outcome of one front-end → cache-node RPC exchange."""

    #: when the exchange resolved (success or final failure), relative to
    #: the first attempt's launch.
    total_time: float
    ok: bool
    #: ``"primary"`` or ``"hedge"`` when ``ok``; ``"none"`` otherwise.
    winner: str
    #: primary attempts actually issued.
    attempts: int
    #: primary attempts that burned their full timeout budget.
    timeouts: int
    hedged: bool = False

    @property
    def hedge_won(self) -> bool:
        return self.ok and self.winner == "hedge"


def simulate_rpc_exchange(
    attempt_times: list[tuple[float, bool]],
    timeout: float,
    retry_delays: list[float] | tuple[float, ...] = (),
    hedge_time: float | None = None,
    hedge_issue_at: float = 0.0,
) -> RpcSimResult:
    """Walk one RPC's retry/hedge timeline deterministically.

    ``attempt_times[i]`` is the i-th primary attempt as ``(elapsed, ok)``:
    how long the attempt runs and whether it returns a payload.  An
    attempt whose elapsed time reaches ``timeout`` is cut off there and
    counted as a timeout regardless of its ``ok`` flag (a dead node's
    attempt is ``(inf, False)``; a partitioned node fails fast with a
    small elapsed and ``ok=False``).  Failed attempts are retried after
    ``retry_delays`` (the seeded-jitter schedule from
    :meth:`~repro.utils.retry.RetryPolicy.delays`) until attempts run out.

    A hedge — the same read duplicated to the next replica — may be
    issued at ``hedge_issue_at``; it completes after ``hedge_time`` and
    the exchange takes whichever arm lands first, exactly like
    :func:`simulate_hedged_extraction` races its host gather.
    """
    if timeout <= 0:
        raise ValueError("rpc timeout must be positive")
    if hedge_issue_at < 0:
        raise ValueError("hedge issue time must be non-negative")
    hedge_done = (
        hedge_issue_at + hedge_time if hedge_time is not None else np.inf
    )
    t = 0.0
    attempts = 0
    timeouts = 0
    primary_done = np.inf
    for i, (elapsed, ok) in enumerate(attempt_times):
        attempts += 1
        if elapsed >= timeout:
            timeouts += 1
            t += timeout
        elif ok:
            primary_done = t + elapsed
            break
        else:
            t += elapsed
        if i < len(retry_delays):
            t += retry_delays[i]
    hedge_available = hedge_time is not None and np.isfinite(hedge_done)
    if not np.isfinite(primary_done) and not hedge_available:
        return RpcSimResult(
            total_time=t, ok=False, winner="none",
            attempts=attempts, timeouts=timeouts,
        )
    if hedge_done < primary_done:
        return RpcSimResult(
            total_time=float(hedge_done), ok=True, winner="hedge",
            attempts=attempts, timeouts=timeouts, hedged=True,
        )
    # The hedge only counts as issued if the primary had not already
    # resolved by its launch time.
    return RpcSimResult(
        total_time=float(primary_done), ok=True, winner="primary",
        attempts=attempts, timeouts=timeouts,
        hedged=hedge_available and hedge_issue_at < primary_done,
    )
