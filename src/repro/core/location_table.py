"""The per-GPU location hashtable of §4: key → ``<GPU_i, Offset>``.

The real UGache coordinates Extractor and Solver/Filler through a GPU
hashtable mapping each embedding key to its source location and slot
offset.  This module implements that structure faithfully — an
open-addressing (linear-probing) table over packed 64-bit slots — rather
than the dense arrays the rest of the library uses for convenience, so the
lookup-path semantics (probe sequences, tombstone-free deletes, load
limits) can be tested and its memory/probe trade-offs measured.

Packing: ``[16 bits source | 48 bits offset]`` with source biased by 1 so
that host (:data:`~repro.hardware.platform.HOST` = -1) packs to 0.

The batch operations (:meth:`LocationTable.lookup_batch`,
:meth:`LocationTable.insert_batch`) are truly vectorized: each runs a
bounded number of numpy *probing rounds* over the whole batch at once
(every key advances one probe step per round, and keys drop out as they
settle), mirroring how a warp-per-key GPU kernel would walk the table.
The scalar :meth:`LocationTable.get` / :meth:`LocationTable.insert` are
thin wrappers over the same machinery, so there is exactly one probe
implementation to test.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.hardware.platform import HOST, SOURCE_DTYPE

_EMPTY_KEY = np.int64(-1)
_OFFSET_BITS = 48
_OFFSET_MASK = (np.int64(1) << _OFFSET_BITS) - 1
#: Fibonacci hashing multiplier (2^64 / φ, as an unsigned 64-bit constant).
_HASH_MULTIPLIER = np.uint64(11400714819323198485)
_MAX_SOURCE = 2**15 - 2


class ProbeLimitError(RuntimeError):
    """A probe chain visited every slot: the table is full or corrupt.

    With the load-factor invariant intact this is unreachable — every
    probe sequence meets an empty slot within ``capacity`` steps.  Raising
    instead of spinning turns an invariant violation (external mutation,
    a bypassed grow) into a diagnosable error rather than a hang.
    """


class CorruptEntryError(RuntimeError):
    """A slot unpacked to an out-of-range ``<gpu, offset>``.

    Raised by lookups when a stored location falls outside the bounds the
    table was built with (see ``LocationTable``'s ``num_sources`` /
    ``max_offset``) — a flipped bit, an external poke, or a fault-injected
    corruption.  Carries the key and the garbage location so the degraded
    router can reroute exactly the poisoned entries to host.
    """

    def __init__(self, key: int, source: int, offset: int) -> None:
        super().__init__(
            f"key {key} maps to out-of-range location <gpu {source}, "
            f"offset {offset}>"
        )
        self.key = key
        self.source = source
        self.offset = offset


def pack_location(source: int, offset: int) -> np.int64:
    """Pack ``(source, offset)`` into one int64 slot value."""
    if source < HOST or source > _MAX_SOURCE:
        raise ValueError(f"source {source} out of packable range")
    if not 0 <= offset < 2**_OFFSET_BITS:
        raise ValueError(f"offset {offset} out of packable range")
    return (np.int64(source + 1) << _OFFSET_BITS) | np.int64(offset)


def unpack_location(packed: np.int64) -> tuple[int, int]:
    """Inverse of :func:`pack_location`."""
    return int(packed >> _OFFSET_BITS) - 1, int(packed & _OFFSET_MASK)


def pack_locations(sources: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Vectorized :func:`pack_location` with the same range validation."""
    sources = np.asarray(sources, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    bad = (sources < HOST) | (sources > _MAX_SOURCE)
    if bad.any():
        raise ValueError(
            f"source {int(sources[bad][0])} out of packable range"
        )
    bad = (offsets < 0) | (offsets >= 2**_OFFSET_BITS)
    if bad.any():
        raise ValueError(
            f"offset {int(offsets[bad][0])} out of packable range"
        )
    return ((sources + 1) << _OFFSET_BITS) | offsets


class LocationTable:
    """Open-addressing hashtable: embedding key → packed location.

    Linear probing with a power-of-two capacity and a bounded load factor
    (default 0.7), matching what a GPU-resident table uses (probing is
    branch-light and coalescing-friendly).  Deletion uses backward-shift
    compaction, so lookups never traverse tombstones — the property that
    keeps worst-case probe lengths bounded after many refresh cycles.

    **Thread safety:** every public operation (lookups *and* mutations)
    holds the table's reentrant lock for its whole probe pass.  A lookup
    runs several numpy probing rounds over ``_keys``/``_values``, and a
    concurrent insert can grow (replace) those arrays or backward-shift a
    cluster mid-pass, so unsynchronized readers could chase a stale arena
    or observe a half-moved cluster (a torn read).  The serving layer's
    concurrency suite (``pytest -m concurrency``) hammers exactly this
    interleaving.  Mutations are batched and rare next to lookups, so a
    single mutual-exclusion lock (rather than a reader/writer pair) keeps
    the fast path at one uncontended acquire.
    """

    def __init__(
        self,
        expected_entries: int,
        max_load: float = 0.7,
        num_sources: int | None = None,
        max_offset: int | None = None,
    ) -> None:
        if expected_entries < 0:
            raise ValueError("expected_entries must be non-negative")
        if not 0.1 <= max_load < 1.0:
            raise ValueError("max_load must be in [0.1, 1.0)")
        if num_sources is not None and num_sources <= 0:
            raise ValueError("num_sources must be positive")
        if max_offset is not None and max_offset < 0:
            raise ValueError("max_offset must be non-negative")
        capacity = 8
        while capacity * max_load < max(expected_entries, 1):
            capacity *= 2
        self._capacity = capacity
        self._mask = capacity - 1
        self._max_load = max_load
        #: validation bounds for unpacked locations (None = unbounded):
        #: valid sources are HOST plus GPU ids ``0..num_sources-1``, valid
        #: offsets ``0..max_offset``.
        self._num_sources = num_sources
        self._max_offset = max_offset
        self._keys = np.full(capacity, _EMPTY_KEY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._size = 0
        # Reentrant: insert() wraps insert_batch(), remove_batch() wraps
        # remove(), and from_source_map() inserts into a fresh table.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def load_factor(self) -> float:
        return self._size / self._capacity

    def _slot(self, key: int) -> int:
        # Fibonacci hashing spreads sequential ids well; plain Python ints
        # avoid numpy's unsigned-overflow warnings.
        hashed = (key * 11400714819323198485) & 0xFFFFFFFFFFFFFFFF
        return (hashed >> (64 - self._capacity.bit_length() + 1)) & self._mask

    def _slots_of(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_slot`: initial probe slot per key."""
        hashed = keys.astype(np.uint64) * _HASH_MULTIPLIER  # wraps mod 2^64
        shift = np.uint64(64 - self._capacity.bit_length() + 1)
        return ((hashed >> shift) & np.uint64(self._mask)).astype(np.int64)

    # ------------------------------------------------------------------
    # The bulk probe engine
    # ------------------------------------------------------------------
    def _probe_batch(
        self, keys: np.ndarray, op: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bulk-probe ``keys``: returns ``(found_mask, slot_per_key)``.

        One numpy round advances every still-unsettled key a single probe
        step; a key settles when its chain hits itself (found) or an empty
        slot (absent — the returned slot is that first empty slot, which
        is where an insert would place it).  Raises
        :class:`ProbeLimitError` if any chain visits every slot without
        settling (full or corrupt table), matching the scalar semantics.
        """
        n = len(keys)
        slots = self._slots_of(keys)
        found = np.zeros(n, dtype=bool)
        active = np.arange(n)
        for _ in range(self._capacity):
            existing = self._keys[slots[active]]
            hit = existing == keys[active]
            found[active[hit]] = True
            settled = hit | (existing == _EMPTY_KEY)
            active = active[~settled]
            if active.size == 0:
                return found, slots
            slots[active] = (slots[active] + 1) & self._mask
        raise ProbeLimitError(
            f"{op} probed all {self._capacity} slots: table full or corrupt"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: int, source: int, offset: int) -> None:
        """Insert or overwrite one key's location (thin batch wrapper)."""
        self.insert_batch(
            np.asarray([key], dtype=np.int64),
            np.asarray([source], dtype=np.int64),
            np.asarray([offset], dtype=np.int64),
        )

    def insert_batch(
        self, keys: np.ndarray, sources: np.ndarray, offsets: np.ndarray
    ) -> None:
        """Bulk insert-or-overwrite: one probe pass for the whole batch.

        Equivalent to scalar inserts in batch order (duplicate keys: last
        value wins), except that capacity is reserved up front for the
        genuinely *new* keys only — overwrites never trigger a grow — and
        the final slot layout may be a different (equally valid) linear
        probe ordering than sequential insertion would produce.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        if keys.min() < 0:
            raise ValueError("keys must be non-negative")
        packed = pack_locations(sources, offsets)
        if len(packed) != len(keys):
            raise ValueError("keys, sources and offsets must align")
        # Last-wins dedup: np.unique over the reversed batch finds, per
        # unique key, its final occurrence.
        uniq, rev_first = np.unique(keys[::-1], return_index=True)
        last = len(keys) - 1 - rev_first
        keys, packed = keys[last], packed[last]
        with self._lock:
            # Grow only for keys not already present (overwrites are free).
            found, _ = self._probe_batch(keys, "insert")
            self._reserve(self._size + int((~found).sum()))
            self._store_unique(keys, packed)

    def _store_unique(self, keys: np.ndarray, packed: np.ndarray) -> None:
        """Place unique ``keys`` via parallel probing rounds.

        Every pending key advances one probe step per round; keys whose
        slot holds themselves overwrite in place, and keys that reach an
        empty slot claim it (first pending key wins a contended slot, the
        rest probe on).  Any slot a key skips is occupied by the time it
        is skipped, so the linear-probe reachability invariant holds for
        the final layout.
        """
        slots = self._slots_of(keys)
        pending = np.arange(len(keys))
        for _ in range(self._capacity):
            existing = self._keys[slots[pending]]
            overwrite = existing == keys[pending]
            if overwrite.any():
                hit = pending[overwrite]
                self._values[slots[hit]] = packed[hit]
            claim = pending[existing == _EMPTY_KEY]
            settled = overwrite
            if claim.size:
                _, first = np.unique(slots[claim], return_index=True)
                winners = claim[first]
                self._keys[slots[winners]] = keys[winners]
                self._values[slots[winners]] = packed[winners]
                self._size += len(winners)
                settled = settled | np.isin(pending, winners, assume_unique=True)
            pending = pending[~settled]
            if pending.size == 0:
                return
            slots[pending] = (slots[pending] + 1) & self._mask
        raise ProbeLimitError(
            f"insert probed all {self._capacity} slots: table full or corrupt"
        )

    def remove(self, key: int) -> bool:
        """Delete one key; returns False if absent.

        Uses backward-shift deletion: subsequent probe-chain entries are
        relocated so no tombstones accumulate.
        """
        with self._lock:
            return self._remove_locked(key)

    def _remove_locked(self, key: int) -> bool:
        slot = self._slot(key)
        for _ in range(self._capacity):
            existing = self._keys[slot]
            if existing == _EMPTY_KEY:
                return False
            if existing == key:
                break
            slot = (slot + 1) & self._mask
        else:
            raise ProbeLimitError(
                f"remove({key}) probed all {self._capacity} slots: "
                "table full or corrupt"
            )
        # Backward-shift the rest of the cluster.
        hole = slot
        probe = (slot + 1) & self._mask
        shifts = 0
        while self._keys[probe] != _EMPTY_KEY:
            shifts += 1
            if shifts > self._capacity:
                raise ProbeLimitError(
                    f"remove({key}) shift pass found no empty slot in "
                    f"{self._capacity} probes: table full or corrupt"
                )
            ideal = self._slot(int(self._keys[probe]))
            distance_probe = (probe - ideal) & self._mask
            distance_hole = (probe - hole) & self._mask
            if distance_probe >= distance_hole:
                self._keys[hole] = self._keys[probe]
                self._values[hole] = self._values[probe]
                hole = probe
            probe = (probe + 1) & self._mask
        self._keys[hole] = _EMPTY_KEY
        self._size -= 1
        return True

    def remove_batch(self, keys: np.ndarray) -> int:
        """Delete many keys; returns how many were present.

        Deletion order is batch order; backward-shift compaction keeps
        every surviving probe chain tombstone-free, exactly as repeated
        scalar :meth:`remove` calls would.
        """
        removed = 0
        for key in np.asarray(keys, dtype=np.int64):
            if self.remove(int(key)):
                removed += 1
        return removed

    def _reserve(self, target_entries: int) -> None:
        """Ensure ``target_entries`` fit the load limit (0+ doublings)."""
        capacity = self._capacity
        while target_entries / capacity > self._max_load:
            capacity *= 2
        if capacity != self._capacity:
            self._rebuild(capacity)

    def _grow(self) -> None:
        self._rebuild(self._capacity * 2)

    def _rebuild(self, new_capacity: int) -> None:
        """Re-home every live entry into a fresh arena of ``new_capacity``.

        One bulk re-insert of the packed slot arrays — no per-key Python
        loop, so a grow costs a handful of numpy rounds regardless of
        table size.
        """
        live = self._keys != _EMPTY_KEY
        keys = self._keys[live]
        values = self._values[live]
        self._capacity = new_capacity
        self._mask = new_capacity - 1
        self._keys = np.full(new_capacity, _EMPTY_KEY, dtype=np.int64)
        self._values = np.zeros(new_capacity, dtype=np.int64)
        self._size = 0
        if len(keys):
            self._store_unique(keys, values)

    def corrupt_slot(self, key: int, source: int, offset: int) -> None:
        """Fault-injection hook: overwrite ``key``'s stored location.

        Bypasses the bounds validation lookups enforce, so the injector
        can plant an out-of-range ``<gpu, offset>`` and tests can verify
        the read path raises :class:`CorruptEntryError` instead of
        returning garbage.  The location must still be *packable*
        (16-bit source, 48-bit offset).
        """
        with self._lock:
            slot = self._slot(key)
            for _ in range(self._capacity):
                existing = self._keys[slot]
                if existing == _EMPTY_KEY:
                    raise KeyError(f"cannot corrupt absent key {key}")
                if existing == key:
                    self._values[slot] = pack_location(source, offset)
                    return
                slot = (slot + 1) & self._mask
            raise ProbeLimitError(
                f"corrupt_slot({key}) probed all {self._capacity} slots: "
                "table full or corrupt"
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _checked_location(self, key: int, packed: np.int64) -> tuple[int, int]:
        source, offset = unpack_location(packed)
        if source != HOST:
            if source < 0 or (
                self._num_sources is not None and source >= self._num_sources
            ):
                raise CorruptEntryError(key, source, offset)
            if self._max_offset is not None and offset > self._max_offset:
                raise CorruptEntryError(key, source, offset)
        return source, offset

    def get(self, key: int) -> tuple[int, int] | None:
        """Location of one key, or None if absent (thin batch wrapper).

        Raises:
            CorruptEntryError: the stored location is outside the table's
                ``num_sources`` / ``max_offset`` bounds.
        """
        with self._lock:
            found, slots = self._probe_batch(
                np.asarray([key], dtype=np.int64), f"get({key})"
            )
            if not found[0]:
                return None
            return self._checked_location(key, self._values[slots[0]])

    def lookup_batch(
        self, keys: np.ndarray, on_corrupt: str = "raise"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized batch lookup: bulk probing rounds, no per-key loop.

        Returns ``(sources, offsets)``; absent keys get source
        :data:`HOST` and offset = key (host storage is addressed by key).
        ``on_corrupt`` picks the degraded behaviour for poisoned slots:
        ``"raise"`` propagates :class:`CorruptEntryError` for the first
        poisoned key in batch order, ``"host"`` routes the corrupt keys to
        host like misses (the fault-tolerant extraction path — host always
        has the truth).
        """
        if on_corrupt not in ("raise", "host"):
            raise ValueError("on_corrupt must be 'raise' or 'host'")
        keys = np.asarray(keys, dtype=np.int64)
        sources = np.full(len(keys), HOST, dtype=SOURCE_DTYPE)
        offsets = keys.copy()  # miss ⇒ host storage addressed by key
        if len(keys) == 0:
            return sources, offsets
        with self._lock:
            found, slots = self._probe_batch(keys, "lookup_batch")
            hit = np.flatnonzero(found)
            if hit.size == 0:
                return sources, offsets
            packed = self._values[slots[hit]]
        src = (packed >> _OFFSET_BITS) - 1
        off = packed & _OFFSET_MASK
        corrupt = self._corrupt_mask(src, off)
        if corrupt.any():
            if on_corrupt == "raise":
                first = int(np.flatnonzero(corrupt)[0])
                raise CorruptEntryError(
                    int(keys[hit[first]]), int(src[first]), int(off[first])
                )
            # "host": poisoned keys keep the HOST/key miss routing.
            hit, src, off = hit[~corrupt], src[~corrupt], off[~corrupt]
        sources[hit] = src.astype(SOURCE_DTYPE)
        offsets[hit] = off
        return sources, offsets

    def _corrupt_mask(self, sources: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Vectorized form of :meth:`_checked_location`'s bounds check."""
        nonhost = sources != HOST
        bad = nonhost & (sources < 0)
        if self._num_sources is not None:
            bad |= nonhost & (sources >= self._num_sources)
        if self._max_offset is not None:
            bad |= nonhost & (offsets > self._max_offset)
        return bad

    def max_probe_length(self) -> int:
        """Longest probe chain currently in the table (a health metric)."""
        with self._lock:
            live = np.flatnonzero(self._keys != _EMPTY_KEY)
            if live.size == 0:
                return 0
            ideal = self._slots_of(self._keys[live])
            return int(((live - ideal) & self._mask).max())

    @staticmethod
    def from_source_map(
        sources: np.ndarray,
        offsets: np.ndarray,
        num_sources: int | None = None,
        max_offset: int | None = None,
    ) -> "LocationTable":
        """Build a table from dense source/offset arrays (cache-fill path).

        Backing-resident entries (source < 0: host DRAM or any deeper
        tier) are not inserted — absence *means* the backing chain,
        exactly as the runtime treats misses; the cache's home map says
        which tier.  Pass ``num_sources``/``max_offset`` (e.g. GPU count
        and slot count) to arm the corruption bounds check on the read
        path.
        """
        sources = np.asarray(sources)
        offsets = np.asarray(offsets)
        cached = np.flatnonzero(sources >= 0)
        table = LocationTable(
            expected_entries=len(cached),
            num_sources=num_sources,
            max_offset=max_offset,
        )
        if len(cached):
            table.insert_batch(cached, sources[cached], offsets[cached])
        return table
