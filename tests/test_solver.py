"""The MILP/LP cache-policy solver (§6.2-6.3)."""

import numpy as np
import pytest

from repro.core.evaluate import evaluate_placement, hit_rates
from repro.core.policy import partition_policy, replication_policy
from repro.core.solver import (
    PolicySolveError,
    SolverConfig,
    dedication_ratios,
    solve_policy,
)
from repro.hardware.platform import HOST
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

ENTRY_BYTES = 512


@pytest.fixture
def hot1000():
    return zipf_pmf(1000, 1.2) * 5000


class TestDedicationRatios:
    def test_local_ratio_is_one(self, platform_c):
        assert dedication_ratios(platform_c, 0)[0] == 1.0

    def test_nonlocal_ratios_below_one(self, platform_a):
        ratios = dedication_ratios(platform_a, 0)
        for src, r in ratios.items():
            if src != 0:
                assert 0 < r < 1

    def test_covers_all_sources(self, platform_b):
        ratios = dedication_ratios(platform_b, 0)
        assert set(ratios) == set(platform_b.sources_for(0))


class TestSolveBasics:
    def test_solves_quickly_at_block_granularity(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 100, ENTRY_BYTES)
        assert solved.solve_seconds < 30
        assert solved.est_time > 0

    def test_capacity_respected_in_realization(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 100, ENTRY_BYTES)
        solved.realize().validate_capacity(100)

    def test_storage_fractions_bounded(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 100, ENTRY_BYTES)
        assert (solved.storage >= 0).all() and (solved.storage <= 1).all()

    def test_access_covers_every_block(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 100, ENTRY_BYTES)
        # Per destination GPU, access fractions sum to 1 per block.
        for i in range(platform_a.num_gpus):
            cols = [p for p, (dst, _src) in enumerate(solved.pairs) if dst == i]
            sums = solved.access[:, cols].sum(axis=1)
            assert np.allclose(sums, 1.0, atol=1e-6)

    def test_per_gpu_capacities(self, platform_a, hot1000):
        caps = [50, 100, 150, 200]
        solved = solve_policy(platform_a, hot1000, caps, ENTRY_BYTES)
        placement = solved.realize()
        for gpu, cap in enumerate(caps):
            assert len(placement.per_gpu[gpu]) <= cap

    def test_zero_capacity_all_host(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 0, ENTRY_BYTES)
        placement = solved.realize()
        assert placement.distinct_cached() == 0
        # Estimated time equals pure-PCIe extraction.
        expected = hot1000.sum() * ENTRY_BYTES / platform_a.pcie_bandwidth
        assert solved.est_time == pytest.approx(expected, rel=0.1)

    def test_rejects_bad_args(self, platform_a, hot1000):
        with pytest.raises(ValueError):
            solve_policy(platform_a, hot1000, [1, 2], ENTRY_BYTES)
        with pytest.raises(ValueError):
            solve_policy(platform_a, hot1000, 10, 0)


class TestSolutionQuality:
    def test_beats_replication_and_partition(self, platform_c, hot1000):
        cap = 80
        solved = solve_policy(platform_c, hot1000, cap, ENTRY_BYTES)
        ug = evaluate_placement(
            platform_c, solved.realize(), hot1000, ENTRY_BYTES, Mechanism.FACTORED
        ).time
        rep = evaluate_placement(
            platform_c,
            replication_policy(hot1000, cap, 8),
            hot1000,
            ENTRY_BYTES,
            Mechanism.FACTORED,
        ).time
        part = evaluate_placement(
            platform_c,
            partition_policy(hot1000, cap, 8),
            hot1000,
            ENTRY_BYTES,
            Mechanism.FACTORED,
        ).time
        assert ug <= rep * 1.05
        assert ug <= part * 1.05

    def test_full_capacity_goes_all_local(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 1000, ENTRY_BYTES)
        hits = hit_rates(platform_a, solved.realize(), hot1000)
        assert hits.local > 0.99

    def test_low_capacity_behaves_like_partition(self, platform_c, hot1000):
        # §8.3: at tiny cache ratios the solved policy approaches partition.
        flat = zipf_pmf(1000, 0.4) * 5000  # low skew favours partition
        solved = solve_policy(platform_c, flat, 10, ENTRY_BYTES)
        placement = solved.realize()
        assert placement.replication_factor() < 2.0

    def test_high_skew_increases_replication(self, platform_c):
        cap = 120
        low = zipf_pmf(1000, 0.4) * 5000
        high = zipf_pmf(1000, 1.6) * 5000
        rep_low = solve_policy(platform_c, low, cap, ENTRY_BYTES).realize()
        rep_high = solve_policy(platform_c, high, cap, ENTRY_BYTES).realize()
        assert rep_high.replication_factor() > rep_low.replication_factor()

    def test_estimate_close_to_simulated(self, platform_c, hot1000):
        solved = solve_policy(platform_c, hot1000, 100, ENTRY_BYTES)
        simulated = evaluate_placement(
            platform_c, solved.realize(), hot1000, ENTRY_BYTES, Mechanism.FACTORED
        ).time
        # Realization rounds fractions; estimate within 2x brackets.
        assert simulated == pytest.approx(solved.est_time, rel=1.0)


class TestUnconnectedPairs:
    def test_dgx1_never_reads_unconnected(self, platform_b, hot1000):
        solved = solve_policy(platform_b, hot1000, 100, ENTRY_BYTES)
        for _p, (i, j) in enumerate(solved.pairs):
            if j != HOST:
                assert platform_b.is_connected(i, j)

    def test_dgx1_solves_and_beats_partition(self, platform_b, hot1000):
        cap = 80
        solved = solve_policy(platform_b, hot1000, cap, ENTRY_BYTES)
        ug = evaluate_placement(
            platform_b, solved.realize(), hot1000, ENTRY_BYTES, Mechanism.FACTORED
        ).time
        part = evaluate_placement(
            platform_b,
            partition_policy(hot1000, cap, 8),
            hot1000,
            ENTRY_BYTES,
            Mechanism.FACTORED,
        ).time
        assert ug <= part * 1.05


class TestIntegralMode:
    def test_small_instance_integral(self, platform_a):
        hot = zipf_pmf(60, 1.2) * 100
        config = SolverConfig(integral=True, coarse_block_frac=0.2)
        solved = solve_policy(platform_a, hot, 10, ENTRY_BYTES, config=config)
        # Binary storage: fractions are 0/1 up to solver tolerance.
        frac = solved.storage[(solved.storage > 1e-6) & (solved.storage < 1 - 1e-6)]
        assert frac.size == 0

    def test_integral_no_better_than_relaxation(self, platform_a):
        hot = zipf_pmf(60, 1.2) * 100
        relaxed = solve_policy(platform_a, hot, 10, ENTRY_BYTES)
        integral = solve_policy(
            platform_a, hot, 10, ENTRY_BYTES, config=SolverConfig(integral=True)
        )
        assert integral.est_time >= relaxed.est_time - 1e-12


class TestSolvedPolicyAccessors:
    def test_access_volume_fractions_sum_to_one(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 100, ENTRY_BYTES)
        fractions = solved.access_volume_fractions(0)
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)

    def test_problem_size_reported(self, platform_a, hot1000):
        solved = solve_policy(platform_a, hot1000, 100, ENTRY_BYTES)
        assert solved.num_variables > 0
        assert solved.num_constraints > 0


class TestFallbackChain:
    """MILP → greedy → last-known-good, with deterministic injected clocks."""

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        from repro.core.solver import clear_policy_cache

        clear_policy_cache()
        yield
        clear_policy_cache()

    @staticmethod
    def _timed_out(*_args, **_kwargs):
        from repro.core.solver import PolicySolveTimeout

        raise PolicySolveTimeout("injected timeout")

    def test_milp_success_is_remembered(self, platform_a, hot1000):
        from repro.core.solver import last_known_good, solve_policy_with_fallback

        outcome = solve_policy_with_fallback(
            platform_a, hot1000, 100, ENTRY_BYTES
        )
        assert outcome.source == "milp"
        assert outcome.solved is not None
        assert outcome.attempts == 1
        assert last_known_good(platform_a.name) is not None

    def test_timeout_falls_back_to_greedy_within_deadline(
        self, platform_a, hot1000
    ):
        from repro.core.solver import FallbackConfig, solve_policy_with_fallback
        from repro.utils.retry import RetryPolicy

        clock = {"now": 0.0}

        def fake_clock():
            clock["now"] += 0.01  # each inspection costs 10ms of fake time
            return clock["now"]

        outcome = solve_policy_with_fallback(
            platform_a,
            hot1000,
            100,
            ENTRY_BYTES,
            fallback=FallbackConfig(
                deadline_seconds=30.0, retry=RetryPolicy(max_attempts=3, base_delay=0.0)
            ),
            solve_fn=self._timed_out,
            clock=fake_clock,
            sleep=lambda s: None,
        )
        assert outcome.source == "greedy"
        assert outcome.attempts == 3
        assert outcome.elapsed < 30.0
        # The greedy placement is feasible and scored.
        assert outcome.placement.num_entries == len(hot1000)
        for ids in outcome.placement.per_gpu:
            assert len(ids) <= 100
        assert outcome.est_time > 0

    def test_cached_policy_wins_when_better_than_greedy(
        self, platform_a, hot1000
    ):
        from repro.core.solver import solve_policy_with_fallback

        # Seed the last-known-good registry with a real solve…
        good = solve_policy_with_fallback(platform_a, hot1000, 100, ENTRY_BYTES)
        assert good.source == "milp"
        # …then break the MILP: the cached optimum beats the greedy search.
        outcome = solve_policy_with_fallback(
            platform_a, hot1000, 100, ENTRY_BYTES, solve_fn=self._timed_out
        )
        assert outcome.source == "cached"
        assert outcome.est_time == pytest.approx(good.est_time)

    def test_incompatible_cache_is_ignored(self, platform_a, hot1000):
        from repro.core.solver import solve_policy_with_fallback

        solve_policy_with_fallback(platform_a, hot1000, 100, ENTRY_BYTES)
        # Different capacity ⇒ the remembered policy no longer applies.
        outcome = solve_policy_with_fallback(
            platform_a, hot1000, 120, ENTRY_BYTES, solve_fn=self._timed_out
        )
        assert outcome.source == "greedy"

    def test_every_rung_failing_raises(self, platform_a, hot1000):
        from repro.core.solver import (
            FallbackConfig,
            PolicySolveError,
            solve_policy_with_fallback,
        )

        with pytest.raises(PolicySolveError, match="every rung"):
            solve_policy_with_fallback(
                platform_a,
                hot1000,
                100,
                ENTRY_BYTES,
                fallback=FallbackConfig(greedy_fractions=(), use_cached=False),
                solve_fn=self._timed_out,
            )

    def test_expired_deadline_skips_milp(self, platform_a, hot1000):
        from repro.core.solver import FallbackConfig, solve_policy_with_fallback

        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        outcome = solve_policy_with_fallback(
            platform_a,
            hot1000,
            100,
            ENTRY_BYTES,
            fallback=FallbackConfig(deadline_seconds=0.0),
            solve_fn=lambda *a, **k: pytest.fail("must not solve past deadline"),
            clock=fake_clock,
            sleep=lambda s: None,
        )
        assert outcome.source == "greedy"

    def test_fallback_metrics_emitted(self, platform_a, hot1000):
        from repro.core.solver import solve_policy_with_fallback
        from repro.obs import MetricsRegistry, use_registry

        reg = MetricsRegistry("t")
        with use_registry(reg):
            solve_policy_with_fallback(
                platform_a, hot1000, 100, ENTRY_BYTES, solve_fn=self._timed_out
            )
        assert reg.value("solver.fallback.engaged") == 1
        assert reg.value("solver.fallback.source", source="greedy") == 1
