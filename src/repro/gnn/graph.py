"""Compressed-sparse-row graph storage for the GNN substrate.

The paper's GNN workloads (GraphSAGE/GCN over OGB graphs) need only two
graph operations: neighbour access for k-hop sampling and degrees for the
PaGraph-style hotness estimate.  A minimal immutable CSR covers both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng


@dataclass(frozen=True)
class CSRGraph:
    """Immutable directed graph in CSR form.

    ``indptr`` has length ``num_nodes + 1``; the out-neighbours of node
    ``u`` are ``indices[indptr[u]:indptr[u+1]]``.
    """

    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if len(indptr) < 1 or indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if (np.diff(indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= len(indptr) - 1):
            raise ValueError("neighbour index out of range")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def topology_bytes(self) -> int:
        """Bytes the topology occupies (Table 3's Volume_G column)."""
        return self.indptr.nbytes + self.indices.nbytes

    @staticmethod
    def from_edges(num_nodes: int, src: np.ndarray, dst: np.ndarray) -> "CSRGraph":
        """Build a CSR graph from parallel edge-endpoint arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst must have the same length")
        if src.size and (
            min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_nodes
        ):
            raise ValueError("edge endpoint out of range")
        order = np.argsort(src, kind="stable")
        sorted_src = src[order]
        sorted_dst = dst[order]
        counts = np.bincount(sorted_src, minlength=num_nodes)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return CSRGraph(indptr=indptr, indices=sorted_dst)


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    degree_alpha: float = 0.8,
    seed: int | np.random.Generator = 0,
    symmetric: bool = True,
) -> CSRGraph:
    """Generate a Chung-Lu style power-law graph.

    Endpoints are drawn from a rank-Zipf weight distribution with exponent
    ``degree_alpha`` (higher → more skewed degrees → more skewed embedding
    access, the property PA/MAG exhibit and CF exhibits less).  With
    ``symmetric=True`` every sampled edge is inserted in both directions,
    matching the OGB preprocessing into undirected homogeneous graphs.

    Self-loops are removed; parallel edges are kept (they only bias
    sampling slightly, as in real multigraph datasets).
    """
    if num_nodes <= 1:
        raise ValueError("need at least two nodes")
    if num_edges < 0:
        raise ValueError("edge count must be non-negative")
    rng = make_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks**-degree_alpha
    weights /= weights.sum()
    # Hot endpoints: weighted; the other side: uniform-ish mixture, which
    # keeps hubs connected to the periphery like citation graphs.
    src = rng.choice(num_nodes, size=num_edges, p=weights)
    dst = rng.choice(num_nodes, size=num_edges, p=weights)
    # Degree floor: every node gets one edge to a weighted partner, so no
    # vertex is unreachable (matching real datasets, where isolated
    # vertices are dropped in preprocessing).  This keeps the embedding
    # universe's access support wide — the long tail of Figure 2.
    floor_src = np.arange(num_nodes)
    floor_dst = rng.choice(num_nodes, size=num_nodes, p=weights)
    src = np.concatenate([src, floor_src])
    dst = np.concatenate([dst, floor_dst])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    # Shuffle node identities so hotness is not correlated with node id
    # (real datasets' ids carry no hotness order).
    perm = rng.permutation(num_nodes)
    return CSRGraph.from_edges(num_nodes, perm[src], perm[dst])
