"""Placement evaluation: source resolution, hit rates, extraction timing.

Given any :class:`~repro.core.policy.Placement` (heuristic or solver-made),
this module answers the questions the paper's figures ask:

* which source does each GPU read each entry from (the per-GPU hashtable
  the Extractor consults, §4);
* what fraction of accesses hit local / remote / host (Figure 2, 14);
* how long a batch extraction takes under a given mechanism (Figures 2(b),
  4, 11, 12, 15, 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import Placement
from repro.hardware.platform import HOST, SOURCE_DTYPE, Platform
from repro.obs import get_registry
from repro.sim.congestion import CongestionModel
from repro.sim.engine import BatchReport, simulate_batch
from repro.sim.mechanisms import GpuDemand, Mechanism


def resolve_sources(
    platform: Platform,
    placement: Placement,
    hotness: np.ndarray | None = None,
    balance_top: int = 128,
    backing: np.ndarray | None = None,
) -> np.ndarray:
    """Per-GPU source map: ``out[i, e]`` is where GPU ``i`` reads entry ``e``.

    Resolution order matches the Extractor's hashtable semantics:
    local copy first; otherwise the *cheapest connected* GPU holding the
    entry, with equal-cost holders rotated per entry id so load spreads
    evenly (the statistical balance the paper's random partition relies
    on); otherwise the entry's backing tier — :data:`HOST` on a
    single-tier platform, or the per-entry home from ``backing`` (the
    tier chain's home map, length ``num_entries``) on a deeper chain.

    When ``hotness`` is given, the assignment of the ``balance_top``
    hottest entries is additionally refined greedily: each is re-routed to
    its least-loaded equal-cost holder.  Id-rotation balances the long
    tail statistically, but a handful of ultra-hot replicated entries can
    collide on one holder by id accident — exactly the load the Solver
    placed replicas to spread.
    """
    if placement.num_gpus != platform.num_gpus:
        raise ValueError(
            f"placement has {placement.num_gpus} GPUs, platform {platform.num_gpus}"
        )
    n = placement.num_entries
    mat = placement.storage_matrix()
    ids = np.arange(n)
    if backing is None:
        fallback = np.full(n, HOST, dtype=SOURCE_DTYPE)
    else:
        backing = np.ascontiguousarray(backing, dtype=SOURCE_DTYPE)
        if backing.shape != (n,):
            raise ValueError("backing home map must cover the entry universe")
        fallback = backing
    out = np.tile(fallback, (platform.num_gpus, 1))
    for i in platform.gpu_ids:
        # Score matrix: per candidate source j, the per-byte cost with a
        # tiny per-entry rotation for tie-breaking; inf when unusable.
        scores = np.full((platform.num_gpus, n), np.inf)
        for j in platform.gpu_ids:
            if j == i:
                continue
            cost = platform.cost_per_byte(i, j)
            if not np.isfinite(cost):
                continue
            tie_break = 1.0 + 1e-9 * ((ids + i + j) % platform.num_gpus)
            scores[j] = np.where(mat[j], cost * tie_break, np.inf)
        best = np.argmin(scores, axis=0)
        best_score = scores[best, ids]
        out[i] = np.where(np.isfinite(best_score), best, fallback)
        out[i][mat[i]] = i
    if hotness is not None:
        _balance_hot_assignments(platform, mat, out, np.asarray(hotness), balance_top)
    return out


def _balance_hot_assignments(
    platform: Platform,
    storage: np.ndarray,
    source_map: np.ndarray,
    hotness: np.ndarray,
    balance_top: int,
) -> None:
    """Greedy least-loaded reassignment of the hottest remote reads."""
    top = np.argsort(-hotness)[:balance_top]
    for i in platform.gpu_ids:
        srcs = source_map[i]
        # Current per-source hotness load of this destination.
        load = {j: float(hotness[srcs == j].sum()) for j in platform.gpu_ids}
        for e in top:
            current = int(srcs[e])
            if current == i or current < 0:  # local or backing-resident
                continue
            cost = platform.cost_per_byte(i, current)
            candidates = [
                j
                for j in platform.gpu_ids
                if j != i
                and storage[j, e]
                and platform.cost_per_byte(i, j) <= cost * (1 + 1e-12)
            ]
            if len(candidates) <= 1:
                continue
            h = float(hotness[e])
            best = min(candidates, key=lambda j: load[j] - (h if j == current else 0.0))
            if best != current:
                load[current] -= h
                load[best] += h
                srcs[e] = best


@dataclass(frozen=True)
class HitRates:
    """Access-rate split by source class (fractions of all accesses)."""

    local: float
    remote: float
    host: float

    @property
    def global_hit(self) -> float:
        """Fraction of accesses served by *any* GPU cache (Fig. 2's global)."""
        return self.local + self.remote

    def as_percent(self) -> dict[str, float]:
        return {
            "local": 100.0 * self.local,
            "remote": 100.0 * self.remote,
            "host": 100.0 * self.host,
        }


def expected_demands(
    platform: Platform,
    placement: Placement,
    hotness: np.ndarray,
    entry_bytes: int,
    source_map: np.ndarray | None = None,
) -> list[GpuDemand]:
    """Expected per-batch extraction volumes for every GPU.

    ``hotness[e]`` is expected accesses of ``e`` per batch per GPU, so the
    expected bytes GPU ``i`` pulls from source ``j`` is
    ``entry_bytes · Σ_{e: source(i,e)=j} hotness[e]``.
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    if hotness.shape != (placement.num_entries,):
        raise ValueError("hotness length must match the entry universe")
    if source_map is None:
        source_map = resolve_sources(platform, placement, hotness)
    demands = []
    for i in platform.gpu_ids:
        volumes: dict[int, float] = {}
        srcs = source_map[i]
        for j in [*platform.gpu_ids, *platform.backing_ids]:
            mask = srcs == j
            if mask.any():
                vol = float(hotness[mask].sum() * entry_bytes)
                if vol > 0:
                    volumes[j] = vol
        demands.append(GpuDemand(dst=i, volumes=volumes))
    return demands


def demand_from_keys(
    platform: Platform,
    source_map: np.ndarray,
    dst: int,
    keys: np.ndarray,
    entry_bytes: int,
) -> GpuDemand:
    """Actual extraction volumes for one concrete key batch."""
    keys = np.asarray(keys)
    srcs = source_map[dst][keys]
    volumes: dict[int, float] = {}
    for j in [*platform.gpu_ids, *platform.backing_ids]:
        count = int((srcs == j).sum())
        if count:
            volumes[j] = float(count * entry_bytes)
    return GpuDemand(dst=dst, volumes=volumes)


def hit_rates(
    platform: Platform,
    placement: Placement,
    hotness: np.ndarray,
    source_map: np.ndarray | None = None,
) -> HitRates:
    """Access-weighted local/remote/host split, averaged over GPUs."""
    hotness = np.asarray(hotness, dtype=np.float64)
    total = hotness.sum()
    if total <= 0:
        return HitRates(0.0, 0.0, 1.0)
    if source_map is None:
        source_map = resolve_sources(platform, placement, hotness)
    local = remote = host = 0.0
    for i in platform.gpu_ids:
        srcs = source_map[i]
        local += hotness[srcs == i].sum()
        # "host" aggregates the whole backing chain (every tier id < 0).
        host += hotness[srcs < 0].sum()
        remote += hotness[(srcs != i) & (srcs >= 0)].sum()
    g = platform.num_gpus
    rates = HitRates(
        local=float(local / total / g),
        remote=float(remote / total / g),
        host=float(host / total / g),
    )
    reg = get_registry()
    if reg.enabled:
        reg.counter("cache.hit_rate.evaluations").inc()
        reg.gauge("cache.hit_rate", source="local").set(rates.local)
        reg.gauge("cache.hit_rate", source="remote").set(rates.remote)
        reg.gauge("cache.hit_rate", source="host").set(rates.host)
    return rates


def evaluate_placement(
    platform: Platform,
    placement: Placement,
    hotness: np.ndarray,
    entry_bytes: int,
    mechanism: Mechanism = Mechanism.FACTORED,
    congestion: CongestionModel | None = None,
    local_padding: bool = True,
) -> BatchReport:
    """Expected batch extraction report for a placement under a mechanism.

    The standard scoring path for all policy comparisons: resolve sources,
    derive expected volumes, and run the mechanism's timing model.
    """
    demands = expected_demands(platform, placement, hotness, entry_bytes)
    return simulate_batch(
        platform,
        demands,
        mechanism=mechanism,
        congestion=congestion,
        local_padding=local_padding,
    )
