"""Placements and heuristic cache policies (§3.1 baselines)."""

import numpy as np
import pytest

from repro.core.policy import (
    Placement,
    clique_partition_policy,
    empty_placement,
    hot_replicate_warm_partition_policy,
    partition_policy,
    replication_policy,
)
from repro.utils.stats import zipf_pmf

HOT = zipf_pmf(1000, 1.2)


class TestPlacement:
    def test_storage_matrix(self):
        p = Placement(num_entries=5, per_gpu=(np.array([0, 2]), np.array([2])))
        mat = p.storage_matrix()
        assert mat[0, 0] and mat[0, 2] and not mat[0, 1]
        assert mat[1, 2] and not mat[1, 0]

    def test_distinct_and_replication_factor(self):
        p = Placement(num_entries=5, per_gpu=(np.array([0, 1]), np.array([1, 2])))
        assert p.distinct_cached() == 3
        assert p.replication_factor() == pytest.approx(4 / 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Placement(num_entries=5, per_gpu=(np.array([1, 1]),))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Placement(num_entries=5, per_gpu=(np.array([5]),))

    def test_validate_capacity(self):
        p = Placement(num_entries=5, per_gpu=(np.array([0, 1, 2]),))
        p.validate_capacity(3)
        with pytest.raises(ValueError):
            p.validate_capacity(2)

    def test_arrays_frozen(self):
        p = Placement(num_entries=5, per_gpu=(np.array([0]),))
        with pytest.raises(ValueError):
            p.per_gpu[0][0] = 3

    def test_empty_placement(self):
        p = empty_placement(10, 4)
        assert p.distinct_cached() == 0
        assert p.replication_factor() == 0.0


class TestReplication:
    def test_every_gpu_has_same_entries(self):
        p = replication_policy(HOT, 100, 4)
        for ids in p.per_gpu[1:]:
            assert np.array_equal(np.sort(ids), np.sort(p.per_gpu[0]))

    def test_caches_hottest(self):
        p = replication_policy(HOT, 10, 2)
        assert set(p.per_gpu[0]) == set(range(10))  # zipf: rank==id here

    def test_replication_factor_is_gpu_count(self):
        p = replication_policy(HOT, 50, 8)
        assert p.replication_factor() == pytest.approx(8.0)

    def test_zero_capacity(self):
        p = replication_policy(HOT, 0, 4)
        assert p.distinct_cached() == 0


class TestPartition:
    def test_no_replication(self):
        p = partition_policy(HOT, 100, 4)
        assert p.replication_factor() == pytest.approx(1.0)

    def test_covers_capacity_times_gpus(self):
        p = partition_policy(HOT, 100, 4)
        assert p.distinct_cached() == 400

    def test_round_robin_balances_hot_entries(self):
        p = partition_policy(HOT, 100, 4)
        # Hottest four entries land on four different GPUs.
        owners = {g for g in range(4) for e in range(4) if e in set(p.per_gpu[g])}
        assert owners == {0, 1, 2, 3}

    def test_never_exceeds_universe(self):
        p = partition_policy(HOT, 600, 4)
        assert p.distinct_cached() == 1000

    def test_global_coverage_beats_replication(self):
        rep = replication_policy(HOT, 100, 4)
        part = partition_policy(HOT, 100, 4)
        assert part.distinct_cached() > rep.distinct_cached()


class TestCliquePartition:
    def test_dgx1_two_cliques_replicate_across(self, platform_b):
        p = clique_partition_policy(HOT, 50, platform_b)
        # The two quads each cover the hottest 200 entries.
        quad_a = np.unique(np.concatenate([p.per_gpu[g] for g in range(4)]))
        quad_b = np.unique(np.concatenate([p.per_gpu[g] for g in range(4, 8)]))
        assert np.array_equal(quad_a, quad_b)
        assert len(quad_a) == 200

    def test_no_replication_within_clique(self, platform_b):
        p = clique_partition_policy(HOT, 50, platform_b)
        for a in range(4):
            for b in range(a + 1, 4):
                assert not set(p.per_gpu[a]) & set(p.per_gpu[b])

    def test_fully_connected_behaves_like_partition(self, platform_a):
        clique = clique_partition_policy(HOT, 50, platform_a)
        part = partition_policy(HOT, 50, 4)
        assert clique.distinct_cached() == part.distinct_cached()


class TestHotRepWarmPart:
    def test_fraction_one_is_replication(self):
        p = hot_replicate_warm_partition_policy(HOT, 100, 4, 1.0)
        rep = replication_policy(HOT, 100, 4)
        assert p.distinct_cached() == rep.distinct_cached()

    def test_fraction_zero_is_partition(self):
        p = hot_replicate_warm_partition_policy(HOT, 100, 4, 0.0)
        assert p.replication_factor() == pytest.approx(1.0)

    def test_mixed_fraction(self):
        p = hot_replicate_warm_partition_policy(HOT, 100, 4, 0.5)
        # 50 replicated everywhere + 50×4 partitioned.
        assert p.distinct_cached() == 50 + 200
        for ids in p.per_gpu:
            assert len(ids) == 100

    def test_capacity_respected(self):
        p = hot_replicate_warm_partition_policy(HOT, 100, 4, 0.3)
        p.validate_capacity(100)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            hot_replicate_warm_partition_policy(HOT, 10, 2, 1.5)
