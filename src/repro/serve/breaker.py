"""Per-source circuit breakers over the multi-GPU cache's read paths.

When a source GPU keeps failing — corrupt location slots, a degraded link
whose group extraction time blows past its timeout — continuing to route
reads at it wastes deadline budget on work the degraded-mode router will
redo anyway.  A breaker per source implements the classic three-state
machine:

* **closed** — traffic flows; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the source
  is excluded from extraction plans (the extractor's degraded-mode router
  sends its keys to the cheapest surviving replica or host) for
  ``cooldown_seconds``;
* **half-open** — after the cooldown, up to ``half_open_probes`` batches
  are allowed through as probes; ``success_threshold`` consecutive probe
  successes close the breaker, any probe failure re-opens it.

All state transitions are observable: ``serve.breaker.transitions`` counts
them per (source, to-state) and ``serve.breaker.state`` gauges the current
state (0 = closed, 1 = half-open, 2 = open).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum

from repro.obs import get_registry
from repro.utils.logging import get_logger

logger = get_logger("serve.breaker")

__all__ = ["BreakerBoard", "BreakerConfig", "BreakerState", "CircuitBreaker"]


class BreakerState(str, Enum):
    """The three positions of a per-source circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the state machine (exported metric value).
_STATE_CODE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds shared by every source's breaker."""

    failure_threshold: int = 3
    cooldown_seconds: float = 2.0
    half_open_probes: int = 2
    success_threshold: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("need at least one half-open probe")
        if self.success_threshold < 1:
            raise ValueError("success threshold must be at least 1")


class CircuitBreaker:
    """Closed → open → half-open state machine for one source.

    ``allow``/``record_success``/``record_failure`` each read and rewrite
    several fields (failure streaks, probe budgets, the state itself), so
    a per-breaker lock serializes them — per-GPU serving workers all feed
    the same :class:`BreakerBoard` and a torn half-open probe count would
    over-admit probes or wedge a breaker open.
    """

    def __init__(self, source: int, config: BreakerConfig | None = None):
        self.source = source
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self._lock = threading.Lock()
        #: full transition history: (time, from-state, to-state).
        self.transitions: list[tuple[float, BreakerState, BreakerState]] = []
        #: accumulated seconds spent in each state (closed stint starts
        #: at t=0; the in-progress stint is added by ``time_in_state``).
        self._state_entered_at = 0.0
        self._time_in_state = {state: 0.0 for state in BreakerState}

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _transition(self, to: BreakerState, now: float) -> None:
        if to is self.state:
            return
        reg = get_registry()
        reg.counter(
            "serve.breaker.transitions", source=self.source, to=to.value
        ).inc()
        reg.gauge("serve.breaker.state", source=self.source).set(
            _STATE_CODE[to]
        )
        self.transitions.append((now, self.state, to))
        self._time_in_state[self.state] += max(0.0, now - self._state_entered_at)
        self._state_entered_at = now
        reg.gauge(
            "serve.breaker.time_in_state",
            source=self.source, state=self.state.value,
        ).set(self._time_in_state[self.state])
        logger.info(
            "breaker source=%d: %s -> %s at t=%.3f",
            self.source, self.state.value, to.value, now,
        )
        self.state = to

    def allow(self, now: float) -> bool:
        """Whether a batch may read from this source at ``now``.

        An open breaker whose cooldown has elapsed moves to half-open and
        starts admitting probes; a half-open breaker admits at most
        ``half_open_probes`` outstanding probes per window.
        """
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            if self.state is BreakerState.OPEN:
                if now - self.opened_at < self.config.cooldown_seconds:
                    return False
                self._transition(BreakerState.HALF_OPEN, now)
                self._probes_issued = 0
                self._probe_successes = 0
            # half-open: meter the probes.
            if self._probes_issued >= self.config.half_open_probes:
                return False
            self._probes_issued += 1
            return True

    def record_success(self, now: float) -> None:
        with self._lock:
            self.consecutive_failures = 0
            if self.state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.success_threshold:
                    self._transition(BreakerState.CLOSED, now)
            elif self.state is BreakerState.OPEN:
                # A success while open can only come from a probe admitted
                # just before the trip; ignore — recovery goes through
                # half-open.
                pass

    def record_failure(self, now: float) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state is BreakerState.HALF_OPEN:
                # any probe failure re-opens immediately (fresh cooldown).
                self.opened_at = now
                self._transition(BreakerState.OPEN, now)
                return
            if (
                self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.config.failure_threshold
            ):
                self.opened_at = now
                self._transition(BreakerState.OPEN, now)

    def time_in_state(self, now: float) -> dict[str, float]:
        """Accumulated seconds per state, the in-progress stint included."""
        with self._lock:
            out = {state.value: t for state, t in self._time_in_state.items()}
            out[self.state.value] += max(0.0, now - self._state_entered_at)
        return out

    def transition_counts(self) -> dict[str, int]:
        """Transitions per to-state for this one breaker."""
        out: dict[str, int] = {}
        for _t, _frm, to in self.transitions:
            out[to.value] = out.get(to.value, 0) + 1
        return out


class BreakerBoard:
    """One breaker per cache source, plus the plan-level exclusion view."""

    def __init__(
        self, sources: list[int], config: BreakerConfig | None = None
    ) -> None:
        self.config = config or BreakerConfig()
        self._breakers = {
            int(s): CircuitBreaker(int(s), self.config) for s in sources
        }

    def breaker(self, source: int) -> CircuitBreaker:
        return self._breakers[int(source)]

    def __iter__(self):
        return iter(self._breakers.values())

    def excluded_sources(self, now: float) -> frozenset[int]:
        """Sources extraction plans must avoid at ``now``.

        Calling this meters half-open probes: an excluded source stays
        excluded until its cooldown elapses, then readmits a bounded
        number of probe batches.
        """
        return frozenset(
            s for s, b in self._breakers.items() if not b.allow(now)
        )

    def record(self, source: int, ok: bool, now: float) -> None:
        """Feed one batch outcome for ``source`` into its breaker."""
        breaker = self._breakers.get(int(source))
        if breaker is None:
            return
        if ok:
            breaker.record_success(now)
        else:
            breaker.record_failure(now)

    def transition_counts(self) -> dict[str, int]:
        """Total transitions per to-state (the soak report's summary)."""
        out: dict[str, int] = {}
        for b in self._breakers.values():
            for _t, _frm, to in b.transitions:
                out[to.value] = out.get(to.value, 0) + 1
        return out

    def transition_counts_by_source(self) -> dict[str, dict[str, int]]:
        """Per-source/per-node transition counters (JSON-keyed by id).

        Only sources that transitioned at all appear, so the common
        all-quiet report stays small.
        """
        out: dict[str, dict[str, int]] = {}
        for s, b in self._breakers.items():
            counts = b.transition_counts()
            if counts:
                out[str(s)] = counts
        return out

    def time_in_state(self, now: float) -> dict[str, dict[str, float]]:
        """Per-source seconds spent in each breaker state up to ``now``.

        Sources that never left ``closed`` are summarized implicitly (all
        their time is the closed stint); only sources with a transition
        history are listed, mirroring :meth:`transition_counts_by_source`.
        """
        return {
            str(s): b.time_in_state(now)
            for s, b in self._breakers.items()
            if b.transitions
        }

    def states(self) -> dict[int, BreakerState]:
        return {s: b.state for s, b in self._breakers.items()}
