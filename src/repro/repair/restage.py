"""Rate-limited staged recovery: refill a healed node's GPU caches in
hotness order, under an idle-link-time budget.

When a node dies, its GPU cache contents are gone
(:meth:`~repro.cluster.node.CacheNode.drop_gpu_caches`).  The naive heal
re-stages everything at once — a burst that saturates the host links
exactly when the healed node is trying to absorb traffic again.
:class:`StagedRecovery` replaces the burst with a plan: the lost
``(gpu, entry)`` pairs are sorted by hotness (hottest first, so the
entries that buy back the most goodput return first) and cut into
fixed-size **blocks**; each call to :meth:`grant` hands the plan an idle
window and stages as many whole blocks as that window's priced transfer
budget covers — the same idle-budget idiom as the prefetcher's
:class:`~repro.core.prefetch.OracleCacher`, priced through the same
:func:`~repro.core.pipeline.price_demand` point.

Invariants the property tests pin: every lost pair is staged **exactly
once**, blocks stage in **non-increasing hotness order**, and when
:attr:`done` the stores hold exactly the lost placement again.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import price_demand
from repro.core.policy import Placement
from repro.obs import get_registry
from repro.sim.mechanisms import GpuDemand
from repro.utils.logging import get_logger

logger = get_logger("repair.restage")

__all__ = ["RECOVERY_GOODPUT_FLOOR", "RestageGrant", "StagedRecovery"]

#: Soak gate: goodput inside the recovery window must stay at least this
#: fraction of steady-state goodput (the burst re-stage baseline dips
#: below it; the staged plan must not).
RECOVERY_GOODPUT_FLOOR = 0.85


class RestageGrant:
    """What one :meth:`StagedRecovery.grant` staged."""

    def __init__(self) -> None:
        self.blocks = 0
        self.entries = 0
        self.bytes = 0
        self.cost_seconds = 0.0


class StagedRecovery:
    """One healed node's hotness-prioritized, budgeted cache refill.

    ``lost`` is the placement returned by ``drop_gpu_caches`` at death
    time; ``hotness`` is the per-entry demand estimate the placement was
    solved against (higher = stage sooner).
    """

    def __init__(self, node, lost, hotness: np.ndarray,
                 chunk_entries: int = 256) -> None:
        if chunk_entries < 1:
            raise ValueError("restage chunks must hold at least one entry")
        self._node = node
        self._cache = node.cache
        self._entry_cost: dict[int, float] = {}
        hotness = np.asarray(hotness, dtype=np.float64)
        gpus = []
        entries = []
        for gpu, ids in enumerate(lost.per_gpu):
            ids = np.asarray(ids, dtype=np.int64)
            gpus.append(np.full(len(ids), gpu, dtype=np.int64))
            entries.append(ids)
        gpus = np.concatenate(gpus) if gpus else np.empty(0, dtype=np.int64)
        entries = (
            np.concatenate(entries) if entries else np.empty(0, dtype=np.int64)
        )
        # Hottest first; ties broken by (gpu, entry) so the plan is a
        # pure function of (lost, hotness).
        order = np.lexsort((entries, gpus, -hotness[entries]))
        gpus, entries = gpus[order], entries[order]
        self._blocks: list[tuple[np.ndarray, np.ndarray]] = [
            (gpus[i:i + chunk_entries], entries[i:i + chunk_entries])
            for i in range(0, len(entries), chunk_entries)
        ]
        self._next_block = 0
        # Shard keys not yet back on a GPU: the frontend keeps routing
        # them to replica owners while the watchdog says RECOVERING.
        self._pending = np.zeros(self._cache.num_entries, dtype=bool)
        self._pending[entries] = True
        #: staged block entry-arrays in stage order (the test log).
        self.staged_log: list[np.ndarray] = []
        self.staged_entries = 0
        self.staged_bytes = 0
        self.cost_seconds_total = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._next_block >= len(self._blocks)

    @property
    def blocks_total(self) -> int:
        return len(self._blocks)

    @property
    def blocks_staged(self) -> int:
        return self._next_block

    @property
    def remaining_entries(self) -> int:
        return int(
            sum(len(e) for _, e in self._blocks[self._next_block:])
        )

    def restaged_keys(self, keys: np.ndarray) -> np.ndarray:
        """Bool mask over ``keys``: True where the node can GPU-serve the
        key again (never lost, or already re-staged)."""
        return ~self._pending[np.asarray(keys, dtype=np.int64)]

    def remaining_placement(self) -> Placement:
        """The un-staged remainder as a placement.

        If the node dies *again* mid-refill, the next death's lost set is
        the union of what was cached at death and this remainder —
        otherwise the interrupted plan's tail would never come back.
        """
        per_gpu: list[list[int]] = [
            [] for _ in range(self._cache.platform.num_gpus)
        ]
        for gpus, entries in self._blocks[self._next_block:]:
            for g, e in zip(gpus, entries):
                per_gpu[int(g)].append(int(e))
        return Placement(
            num_entries=self._cache.num_entries,
            per_gpu=tuple(
                np.array(sorted(ids), dtype=np.int64) for ids in per_gpu
            ),
        )

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def _per_entry_cost(self, gpu: int) -> float:
        """Priced backing→GPU seconds per staged entry (OracleCacher idiom).

        On a tiered platform the reference transfer is split across
        backing tiers by residency share, so a mostly-SSD table prices
        its refill honestly; single-tier platforms reduce to the old
        host-only reference demand.
        """
        cost = self._entry_cost.get(gpu)
        if cost is None:
            ref = 1024
            ref_bytes = float(ref * self._cache.entry_bytes)
            shares = self._cache.backing_shares()
            demand = GpuDemand(
                dst=gpu,
                volumes={s: ref_bytes * f for s, f in shares.items() if f > 0},
            )
            cost = price_demand(self._cache.platform, demand).time / ref
            self._entry_cost[gpu] = cost
        return cost

    def _block_cost(self, block: tuple[np.ndarray, np.ndarray]) -> float:
        gpus, _ = block
        ids, counts = np.unique(gpus, return_counts=True)
        return float(
            sum(self._per_entry_cost(int(g)) * int(c)
                for g, c in zip(ids, counts))
        )

    def grant(self, idle_seconds: float) -> RestageGrant:
        """Stage whole blocks while the idle window's budget lasts.

        Only complete blocks stage (each exactly once); the first block
        that does not fit ends the grant.  An infinite budget
        (``math.inf``) finishes the plan.
        """
        if idle_seconds < 0:
            raise ValueError("idle time must be non-negative")
        grant = RestageGrant()
        remaining = idle_seconds
        while self._next_block < len(self._blocks):
            block = self._blocks[self._next_block]
            cost = self._block_cost(block)
            if cost > remaining:
                break
            self._stage_block(block, grant, cost)
            remaining -= cost
        if grant.blocks:
            self._cache.refresh_source_map()
            reg = get_registry()
            if reg.enabled:
                node = getattr(self._node, "node_id", None)
                labels = {} if node is None else {"node": str(node)}
                reg.counter("repair.restage.blocks", **labels).inc(
                    grant.blocks
                )
                reg.counter("repair.restage.entries", **labels).inc(
                    grant.entries
                )
                reg.counter("repair.restage.bytes", **labels).inc(grant.bytes)
                reg.gauge("repair.restage.remaining_entries", **labels).set(
                    self.remaining_entries
                )
        return grant

    def finish(self) -> RestageGrant:
        """Stage every remaining block (drain / burst-equivalent path)."""
        return self.grant(float("inf"))

    def _stage_block(self, block, grant: RestageGrant, cost: float) -> None:
        gpus, entries = block
        cache = self._cache
        with cache.writing():
            for gpu, entry in zip(gpus, entries):
                store = cache.store(int(gpu))
                entry = int(entry)
                if store.offset_of[entry] < 0:
                    store.insert(entry, cache.host_table[entry])
        self._pending[entries] = False
        self.staged_log.append(entries.copy())
        self._next_block += 1
        grant.blocks += 1
        grant.entries += len(entries)
        grant.bytes += len(entries) * cache.entry_bytes
        grant.cost_seconds += cost
        self.staged_entries += len(entries)
        self.staged_bytes += len(entries) * cache.entry_bytes
        self.cost_seconds_total += cost
