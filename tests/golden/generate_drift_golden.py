"""Regenerate the golden drift-adaptation fixture.

``drift_golden.json`` pins what the online adaptation loop does on the
seeded rotating-Zipf quick trace: the detector's full tape (per-check
Jaccard / rank-correlation scores and fire points), the adaptation event
sequence (detect → re-solve → swap, with each re-solve's source rung),
the landed-swap counters, and the adapt-*off* run of the same trace —
which must stay byte-identical to a harness with no adaptation layer at
all.

Only regenerate when an *intentional* behaviour change lands:

    PYTHONPATH=src python tests/golden/generate_drift_golden.py
"""

from __future__ import annotations

import json
import pathlib

from repro.dlr.drift import build_drift_schedule
from repro.serve import SoakConfig, run_soak

GOLDEN_PATH = pathlib.Path(__file__).parent / "drift_golden.json"


def _soak_record(**overrides) -> dict:
    cfg = SoakConfig.quick(
        scenario="steady", drift="rotating-head", seed=0, **overrides
    )
    return run_soak(cfg).to_dict()


def _schedule_record() -> dict:
    """Pin each scenario's change points and per-phase mass movement."""
    out = {}
    for name in ("rotating-head", "table-shift", "flash-crowd"):
        sched = build_drift_schedule(name, 3_000, seed=0)
        out[name] = {
            "transitions": list(sched.transitions),
            "phase_heads": [
                int(phase.pmf.argmax()) for phase in sched.phases
            ],
            "phase_head_mass": [
                float(phase.pmf.max()) for phase in sched.phases
            ],
        }
    return out


def build() -> dict:
    adapt_on = _soak_record(adapt=True)
    adapt_off = _soak_record()
    return {
        "version": 1,
        "schedules": _schedule_record(),
        "adapt_on": adapt_on,
        "adapt_off": adapt_off,
    }


def main() -> None:
    doc = build()
    GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
