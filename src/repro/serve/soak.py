"""Soak harness: sustained traffic + chaos through the serving runtime.

``python -m repro soak`` drives open-loop Poisson (or closed-loop) traffic
through :class:`~repro.serve.runtime.ServingRuntime` on a simulated clock,
optionally under a chaos :class:`~repro.faults.spec.FaultPlan`, with hot
policy swaps landed mid-run.  It reports goodput, shed rate, breaker
state transitions, and p50/p99/p999 latency.

The harness is *scale-free*: it measures the healthy baseline service
time ``s0`` of one batch first, then derives the arrival rate
(``load / s0``), deadlines, SLO, and breaker timeouts as multiples of
``s0``.  That keeps every scenario meaningful whether a batch costs
microseconds (tiny CI tables) or milliseconds (paper-sized ones), and
keeps runs bit-reproducible from one seed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.prefetch import OracleCacher, PrefetchConfig
from repro.core.refresher import RefreshConfig, Refresher
from repro.core.solver import FallbackConfig, SolverConfig
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.obs import get_registry
from repro.serve.breaker import BreakerConfig
from repro.serve.coalesce import (
    BatchingMode,
    CoalesceConfig,
    CoalesceOutcome,
    MicroBatcher,
)
from repro.serve.policy_manager import PolicyManager, SwapGuardrail
from repro.serve.queueing import AdmissionConfig, QueuePolicy
from repro.serve.request import RequestStatus
from repro.serve.runtime import ServeConfig, ServingRuntime
from repro.serve.workers import GpuWorkerPool
from repro.sim.mechanisms import factored_extraction
from repro.utils.logging import get_logger
from repro.utils.retry import RetryPolicy
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import zipf_pmf

logger = get_logger("serve.soak")

__all__ = [
    "CLUSTER_SCENARIOS",
    "SOAK_SCENARIOS",
    "SoakConfig",
    "SoakReport",
    "build_soak_plan",
    "render_soak_report",
    "run_soak",
]

#: Scenario name → (platform, one-line description).  Fault schedules are
#: built by :func:`build_soak_plan` once the run's duration is known.
SOAK_SCENARIOS: dict[str, tuple[str, str]] = {
    "steady": ("server-a", "no faults; pure overload/backpressure behaviour"),
    "dgx_a100_partial_failure": (
        "server-c",
        "8xA100 box loses GPU 5, degrades a link, and corrupts slots",
    ),
    "corrupt-slot-storm": (
        "server-a",
        "repeated location-table corruption bursts on two GPUs",
    ),
    "host-stall": ("server-a", "PCIe loses 90% of its bandwidth mid-run"),
    "node-kill": (
        "server-a",
        "a whole cache-server node dies mid-run and later heals",
    ),
    "node-flap": (
        "server-a",
        "a node repeatedly dies and recovers (two down windows)",
    ),
    "node-partition": (
        "server-a",
        "a node is cut off from the front-end but keeps its state",
    ),
    "node-slow": (
        "server-a",
        "a node keeps serving at 10% speed (GC pause / noisy neighbour)",
    ),
    "node-kill-bit-rot": (
        "server-a",
        "a node dies and heals while every node's caches silently bit-rot",
    ),
    "hps-multitenant": (
        "server-a-tiered",
        "parameter-server shape: several models' tables share a "
        "DRAM-to-SSD backing chain larger than DRAM",
    ),
}

#: Scenarios that only make sense for a multi-node soak (``--nodes > 1``).
CLUSTER_SCENARIOS: frozenset[str] = frozenset(
    {"node-kill", "node-flap", "node-partition", "node-slow",
     "node-kill-bit-rot"}
)


def build_soak_plan(
    scenario: str, duration: float, seed: int = 0
) -> FaultPlan | None:
    """The fault schedule a soak scenario injects, scaled to ``duration``."""
    if scenario not in SOAK_SCENARIOS:
        raise ValueError(
            f"unknown soak scenario {scenario!r}; try one of "
            f"{sorted(SOAK_SCENARIOS)}"
        )
    d = duration
    if scenario in ("steady", "hps-multitenant"):
        # hps-multitenant's stress is the tier chain itself, not chaos:
        # every DRAM miss pays the deeper tier's bandwidth and latency.
        return None
    if scenario == "dgx_a100_partial_failure":
        faults = (
            FaultSpec(FaultKind.GPU_FAILURE, onset=0.30 * d, duration=0.25 * d, gpu=5),
            FaultSpec(
                FaultKind.LINK_DEGRADATION,
                onset=0.35 * d,
                duration=0.30 * d,
                severity=0.7,
                link=(0, 1),
            ),
            FaultSpec(
                FaultKind.CORRUPT_SLOT,
                onset=0.40 * d,
                duration=0.10 * d,
                severity=0.05,
                gpu=1,
                seed=seed,
            ),
        )
    elif scenario == "corrupt-slot-storm":
        faults = (
            FaultSpec(
                FaultKind.CORRUPT_SLOT, onset=0.25 * d, duration=0.1 * d,
                severity=0.08, gpu=1, seed=seed,
            ),
            FaultSpec(
                FaultKind.CORRUPT_SLOT, onset=0.55 * d, duration=0.1 * d,
                severity=0.08, gpu=2, seed=seed + 1,
            ),
        )
    elif scenario == "node-kill":
        faults = (
            FaultSpec(
                FaultKind.NODE_DOWN, onset=0.35 * d, duration=0.25 * d, node=1
            ),
        )
    elif scenario == "node-flap":
        faults = (
            FaultSpec(
                FaultKind.NODE_DOWN, onset=0.25 * d, duration=0.12 * d, node=1
            ),
            FaultSpec(
                FaultKind.NODE_DOWN, onset=0.55 * d, duration=0.12 * d, node=1
            ),
        )
    elif scenario == "node-kill-bit-rot":
        faults = (
            FaultSpec(
                FaultKind.NODE_DOWN, onset=0.35 * d, duration=0.25 * d, node=1
            ),
            # Slow silent corruption across every node's caches for most
            # of the run (~54 byte flips at this rate) — the scrubber and
            # read guard, not the health view, have to catch it.
            FaultSpec(
                FaultKind.BIT_ROT, onset=0.05 * d, duration=0.90 * d,
                rate=60.0 / d, seed=seed,
            ),
        )
    elif scenario == "node-partition":
        faults = (
            FaultSpec(
                FaultKind.NODE_PARTITION, onset=0.35 * d, duration=0.25 * d,
                node=1,
            ),
        )
    elif scenario == "node-slow":
        faults = (
            FaultSpec(
                FaultKind.NODE_SLOW, onset=0.35 * d, duration=0.3 * d,
                severity=0.9, node=1,
            ),
        )
    else:  # host-stall
        faults = (
            FaultSpec(
                FaultKind.HOST_STALL, onset=0.35 * d, duration=0.3 * d,
                severity=0.9,
            ),
        )
    return FaultPlan(faults=faults, seed=seed, name=scenario)


@dataclass(frozen=True)
class SoakConfig:
    """Workload shape and derived-knob factors (everything × ``s0``)."""

    scenario: str = "steady"
    #: requests per GPU over the whole run (sets the run's length).
    requests_per_gpu: int = 300
    #: offered load per GPU as a fraction of its service capacity;
    #: > 1.0 is sustained overload.
    load: float = 0.8
    closed_loop: bool = False
    #: outstanding clients per GPU in closed-loop mode.
    clients: int = 4
    num_entries: int = 20_000
    alpha: float = 1.1
    cache_ratio: float = 0.12
    entry_bytes: int = 128
    batch_keys: int = 1024
    #: request deadline, in units of the healthy baseline service time.
    deadline_factor: float = 10.0
    #: admission SLO, in baseline units.
    slo_factor: float = 8.0
    #: per-source breaker timeout, in baseline units.
    timeout_factor: float = 5.0
    queue_capacity: int = 32
    queue_policy: QueuePolicy = QueuePolicy.REJECT
    #: fractions of the run at which a hot policy swap is attempted.
    swap_at: tuple[float, ...] = (0.6,)
    #: cross-request coalescing: OFF reproduces the pre-coalescing path
    #: byte-for-byte; COALESCE micro-batches each GPU's queue.
    batching: BatchingMode = BatchingMode.OFF
    #: most requests fused into one extraction (coalesce mode).
    max_batch: int = 8
    #: micro-batch linger, in units of the baseline service time ``s0``.
    linger_factor: float = 0.5
    #: absolute linger override in milliseconds (wins over linger_factor).
    linger_ms: float | None = None
    #: per-GPU serving worker threads; >1 runs the GPUs' serving loops
    #: wall-clock concurrently against the shared cache (open loop only).
    workers: int = 1
    #: lookahead prefetching: batches the oracle cacher may peek ahead in
    #: the (pre-generated) trace.  0 keeps the runtime byte-identical to
    #: the no-prefetch path; >0 pre-stages upcoming host misses into the
    #: GPU tier during idle link time (open loop only).
    lookahead: int = 0
    #: per-GPU staging-buffer bound, in entries (lookahead > 0 only).
    prefetch_capacity: int = 4096
    #: simulated cache-server nodes; 1 keeps the single-box path (and its
    #: byte-identical golden-pinned behaviour), > 1 runs the cluster soak.
    nodes: int = 1
    #: replicas per key across nodes (cluster soak only).
    replication: int = 1
    #: node-level placement mode: ``"ring"`` (consistent hashing) or
    #: ``"solver"`` (hotness-balanced stage above the per-GPU MILP).
    placement: str = "ring"
    #: self-healing layer (cluster soak only): anti-entropy scrubbers +
    #: read guards on every node, the node-lifecycle watchdog, and cache
    #: drop/re-stage on node death.  False keeps the soak byte-identical
    #: to the pre-repair harness.
    repair: bool = False
    #: how a healed node's caches refill when ``repair`` is on:
    #: ``"staged"`` (hotness-ordered blocks under an idle-time budget) or
    #: ``"burst"`` (all at once — the baseline the staged plan beats).
    restage: str = "staged"
    #: backing-tier chain override, e.g. ``"dram:8GB,ssd:1TB"`` — replaces
    #: the scenario platform's chain via :func:`parse_tier_spec`.  None
    #: keeps the platform as modelled (single-tier for the classic
    #: scenarios, DRAM→SSD for ``hps-multitenant``).
    tiers: str | None = None
    #: models sharing the embedding table (hps-multitenant trace): the
    #: table splits into ``tenants`` contiguous per-model segments, each
    #: with its own Zipf head, and every request is drawn from exactly
    #: one model — 1 keeps the classic single-table trace byte-identical.
    tenants: int = 1
    #: hotness-drift scenario (a :data:`repro.dlr.drift.DRIFT_SCENARIOS`
    #: key): the key distribution changes mid-run on a piecewise
    #: schedule and scheduled ``swap_at`` swaps are disabled (drift
    #: timing, not wall-clock schedule, decides re-solves).  None keeps
    #: the stationary trace byte-identical.
    drift: str | None = None
    #: online drift adaptation: a streaming hotness estimator on the
    #: serving hot path, a drift detector, and incremental warm-started
    #: re-solves swapped through the policy manager.  Requires ``drift``.
    adapt: bool = False
    #: transition-window length after each drift change point, as a
    #: fraction of the run; the soak gate judges goodput *inside* these
    #: windows (where an unadapted policy bleeds).
    drift_window: float = 0.25
    seed: int = 0

    @classmethod
    def quick(cls, seed: int = 0, **overrides) -> "SoakConfig":
        """CI-sized soak (sub-second wall time per scenario)."""
        defaults = dict(
            requests_per_gpu=120,
            num_entries=3_000,
            batch_keys=256,
            entry_bytes=64,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def __post_init__(self) -> None:
        if self.requests_per_gpu < 1:
            raise ValueError("need at least one request per GPU")
        if self.load <= 0:
            raise ValueError("offered load must be positive")
        if self.clients < 1:
            raise ValueError("closed loop needs at least one client")
        if not all(0 < f < 1 for f in self.swap_at):
            raise ValueError("swap times are fractions of the run in (0, 1)")
        if self.max_batch < 1:
            raise ValueError("max batch must be at least 1")
        if self.linger_factor < 0:
            raise ValueError("linger factor must be non-negative")
        if self.linger_ms is not None and self.linger_ms < 0:
            raise ValueError("linger must be non-negative")
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.closed_loop and self.batching is not BatchingMode.OFF:
            raise ValueError(
                "closed-loop clients poll their own responses; coalescing "
                "only applies to the open-loop queue-draining path"
            )
        if self.closed_loop and self.workers > 1:
            raise ValueError("the worker pool only drives open-loop traffic")
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if self.prefetch_capacity < 1:
            raise ValueError("prefetch capacity must be at least one entry")
        if self.closed_loop and self.lookahead > 0:
            raise ValueError(
                "closed-loop arrivals depend on responses, so the future "
                "is not knowable; lookahead prefetching is open-loop only"
            )
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if not 1 <= self.replication <= self.nodes:
            raise ValueError(
                f"replication must be in [1, {self.nodes}], "
                f"got {self.replication}"
            )
        if self.placement not in ("ring", "solver"):
            raise ValueError(
                f"placement must be 'ring' or 'solver', got {self.placement!r}"
            )
        if self.nodes == 1 and self.scenario in CLUSTER_SCENARIOS:
            raise ValueError(
                f"scenario {self.scenario!r} kills whole nodes; it needs "
                "--nodes > 1"
            )
        if self.restage not in ("staged", "burst"):
            raise ValueError(
                f"restage mode must be 'staged' or 'burst', "
                f"got {self.restage!r}"
            )
        if self.repair and self.nodes == 1:
            raise ValueError(
                "the repair layer (scrubbing + staged recovery) rides the "
                "cluster soak; use --nodes > 1"
            )
        if self.tiers is not None:
            from repro.hardware.platform import parse_tier_spec

            parse_tier_spec(self.tiers)  # raise early on a bad spec
        if self.tenants < 1:
            raise ValueError("need at least one tenant model")
        if self.tenants > self.num_entries:
            raise ValueError(
                f"{self.tenants} tenants cannot split {self.num_entries} "
                "entries into non-empty model tables"
            )
        if self.scenario == "hps-multitenant" and self.tenants < 2:
            raise ValueError(
                "hps-multitenant is the multi-model trace; use --tenants >= 2"
            )
        if self.drift is not None:
            from repro.dlr.drift import DRIFT_SCENARIOS

            if self.drift not in DRIFT_SCENARIOS:
                raise ValueError(
                    f"unknown drift scenario {self.drift!r}; choose from "
                    f"{sorted(DRIFT_SCENARIOS)}"
                )
            if self.nodes > 1 or self.workers > 1:
                raise ValueError(
                    "drift scenarios ride the single-box single-worker "
                    "event loop (time-ordered draws)"
                )
            if self.closed_loop:
                raise ValueError(
                    "drift schedules are keyed to open-loop arrival times"
                )
            if self.lookahead > 0:
                raise ValueError(
                    "lookahead pre-draws the whole trace; a drifting "
                    "distribution must be drawn at arrival time"
                )
            if self.batching is not BatchingMode.OFF:
                raise ValueError(
                    "drift soaks use the uncoalesced path; batching "
                    "changes which requests feed the estimator"
                )
            if self.tenants > 1:
                raise ValueError(
                    "drift schedules replace the workload pmf; the "
                    "multi-tenant trace is not drift-scheduled yet"
                )
        if self.adapt and self.drift is None:
            raise ValueError(
                "--adapt reacts to drift; pick a --drift scenario"
            )
        if not 0.0 < self.drift_window <= 0.5:
            raise ValueError("drift window must be in (0, 0.5]")
        if self.tenants > 1 and self.nodes > 1:
            raise ValueError(
                "the multi-tenant trace is not wired through the cluster "
                "front-end yet; use --nodes 1"
            )
        if self.nodes > 1:
            if self.scenario not in CLUSTER_SCENARIOS | {"steady"}:
                raise ValueError(
                    f"cluster soak supports scenarios "
                    f"{sorted(CLUSTER_SCENARIOS | {'steady'})}, "
                    f"got {self.scenario!r}"
                )
            if self.batching is not BatchingMode.OFF:
                raise ValueError(
                    "cross-request coalescing applies to the single-box "
                    "queue path, not the cluster fan-out"
                )
            if self.workers > 1:
                raise ValueError(
                    "the worker pool drives single-box GPU loops; the "
                    "cluster soak's concurrency is the fan-out itself"
                )
            if self.lookahead > 0:
                raise ValueError(
                    "lookahead prefetching is not wired through the "
                    "cluster front-end yet"
                )


@dataclass
class SoakReport:
    """Everything a soak run measured, JSON-able for CI gating."""

    scenario: str
    requests: int = 0
    served_ok: int = 0
    shed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    goodput_rps: float = 0.0
    shed_rate: float = 0.0
    hedges: int = 0
    hedge_wins: int = 0
    rerouted_keys: int = 0
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    p999_latency: float = 0.0
    max_queue_depth: int = 0
    queue_capacity: int = 0
    breaker_transitions: dict = field(default_factory=dict)
    swaps_attempted: int = 0
    swaps_landed: int = 0
    rollbacks: int = 0
    integrity_failures: int = 0
    duration: float = 0.0
    arrival_rate: float = 0.0
    baseline_service: float = 0.0
    #: cross-request coalescing stats (zero / 1.0 when batching is off).
    coalesced_batches: int = 0
    mean_batch_size: float = 0.0
    dedup_ratio: float = 1.0
    workers: int = 1
    #: lookahead prefetching stats (all zero when lookahead is 0).
    lookahead: int = 0
    prefetch_staged_keys: int = 0
    prefetch_hits: int = 0
    prefetch_hit_rate: float = 0.0
    prefetch_wasted_bytes: float = 0.0
    prefetch_overlap_seconds: float = 0.0
    prefetch_critical_seconds: float = 0.0
    #: breaker observability (satellite of the cluster PR): transition
    #: counts and accumulated seconds per state, keyed by source/node id.
    breaker_transitions_by_source: dict = field(default_factory=dict)
    breaker_time_in_state: dict = field(default_factory=dict)
    #: cluster tier (all defaults when ``nodes`` is 1 / single-box).
    nodes: int = 1
    replication: int = 1
    failovers: int = 0
    replica_read_fraction: float = 0.0
    host_fallback_keys: int = 0
    partial_responses: int = 0
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    #: OK-rate during node-fault windows over the steady OK-rate; 1.0
    #: when the run had no node faults.
    failover_goodput_ratio: float = 1.0
    steady_goodput_rps: float = 0.0
    rebalance_bytes: int = 0
    node_requests: dict = field(default_factory=dict)
    #: self-healing layer (all defaults when ``repair`` is off).
    repair_enabled: bool = False
    restage_mode: str = ""
    #: OK-rate during post-heal recovery windows over the steady OK-rate;
    #: 1.0 when nothing recovered.  Repair-enabled runs gate on ≥ 0.85.
    recovery_goodput_ratio: float = 1.0
    recovery_requests: int = 0
    #: p99 of OK latencies inside recovery windows (0.0 when none) — the
    #: burst baseline spikes here even when its OK-rate survives hedging.
    recovery_p99_latency: float = 0.0
    restage_bytes: int = 0
    restage_blocks: int = 0
    scrub_scanned_slots: int = 0
    scrub_mismatches: int = 0
    scrub_repaired: int = 0
    scrub_read_repairs: int = 0
    #: corrupt value *rows* that reached a caller (must stay 0 with the
    #: read guard on — the zero-corrupt-served guarantee).
    corrupt_values_served: int = 0
    watchdog_transitions: int = 0
    #: backing-tier chain (all defaults on a single-tier platform).
    #: ``tiers`` is the chain as "name:capacity" joined with "+";
    #: ``tier_shares`` maps tier name → fraction of the table homed
    #: there; demotions/moved bytes come from the chain's rebalancer.
    tiers: str = ""
    tier_shares: dict = field(default_factory=dict)
    tier_demotions: int = 0
    tier_moved_bytes: int = 0
    tenants: int = 1
    #: hotness drift + online adaptation (all defaults on a stationary
    #: soak).  ``transition_goodput_ratio`` is the OK-rate inside the
    #: post-change-point windows over the steady OK-rate — the number
    #: adaptation exists to defend.
    drift_scenario: str = ""
    adapt_enabled: bool = False
    drift_transitions: int = 0
    drift_detections: int = 0
    adapt_resolves: int = 0
    adapt_incremental_resolves: int = 0
    adapt_swaps_landed: int = 0
    adapt_rollbacks: int = 0
    transition_requests: int = 0
    transition_ok_rate: float = 0.0
    transition_goodput_ratio: float = 1.0
    #: detector tape (one dict per check) and adaptation event sequence,
    #: pinned by the drift golden; empty on stationary soaks.
    drift_tape: list = field(default_factory=list)
    adapt_events: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The CI gate: progress was made, nothing corrupted, queues
        bounded — for cluster runs, goodput during the failover window
        stayed above the floor (70% of steady-state) — and, with the
        repair layer on, no corrupt value was ever served and the
        recovery window kept ≥ 85% of steady goodput.

        Tiered runs pass through the same floors, but every ×s0 knob
        (deadline, SLO, breaker timeout) derives from a baseline priced
        on the *full* tier chain, so a run whose misses go to SSD is
        judged against SSD-speed deadlines rather than DRAM ones — a
        miss to SSD is not scored like a miss to DRAM — and
        ``integrity_failures`` includes the chain's per-tier residency
        and checksum verification."""
        return (
            self.served_ok > 0
            and self.integrity_failures == 0
            and self.max_queue_depth <= self.queue_capacity
            and (self.nodes <= 1 or self.failover_goodput_ratio >= 0.70)
            and (
                not self.repair_enabled
                or (
                    self.corrupt_values_served == 0
                    and self.recovery_goodput_ratio >= 0.85
                )
            )
        )

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["schema"] = "repro.soak/v1"
        doc["ok"] = self.ok
        return doc


def _soak_platform(cfg: SoakConfig, platform_name: str):
    """The scenario's platform, with ``cfg.tiers`` overriding its chain."""
    from repro.bench.contexts import platform_by_name
    from repro.hardware.platform import parse_tier_spec, with_tiers

    platform = platform_by_name(platform_name)
    if cfg.tiers:
        platform = with_tiers(
            platform, parse_tier_spec(cfg.tiers, platform.pcie_bandwidth)
        )
    return platform


def _build_workload(cfg: SoakConfig):
    """The request-key distribution: one Zipf table, or ``cfg.tenants``
    models' tables laid side by side, each with its own Zipf head.

    Returns ``(pmf, draw)``: the stationary mixture pmf (what the cache
    policy, probes, and baseline pricing see) and ``draw(rng)`` sampling
    one request's keys.  A multi-tenant request is drawn from exactly one
    model's segment — an inference request only ever touches its own
    model's embeddings — with the model picked from a Zipf popularity
    over tenants.  ``tenants == 1`` reproduces the classic single-table
    draws byte-for-byte.
    """
    if cfg.tenants <= 1:
        pmf = zipf_pmf(cfg.num_entries, cfg.alpha)

        def draw(rng) -> np.ndarray:
            return rng.choice(cfg.num_entries, size=cfg.batch_keys, p=pmf)

        return pmf, draw

    bounds = np.floor(
        np.linspace(0.0, cfg.num_entries, cfg.tenants + 1)
    ).astype(np.int64)
    popularity = zipf_pmf(cfg.tenants, cfg.alpha)
    segments: list[tuple[int, np.ndarray]] = []
    pmf = np.zeros(cfg.num_entries, dtype=np.float64)
    for t in range(cfg.tenants):
        lo, hi = int(bounds[t]), int(bounds[t + 1])
        seg_pmf = zipf_pmf(hi - lo, cfg.alpha)
        segments.append((lo, seg_pmf))
        pmf[lo:hi] = popularity[t] * seg_pmf

    def draw(rng) -> np.ndarray:
        t = int(rng.choice(cfg.tenants, p=popularity))
        lo, seg_pmf = segments[t]
        return lo + rng.choice(len(seg_pmf), size=cfg.batch_keys, p=seg_pmf)

    return pmf, draw


def _fmt_capacity(n: int) -> str:
    """``1_000_000_000_000 → "1TB"`` — decimal units, report-friendly."""
    for unit, div in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if n >= div:
            return f"{n / div:g}{unit}"
    return f"{n}B"


def _chain_label(platform) -> str:
    """The backing chain as ``"dram:64GB+ssd:1TB"`` for reports."""
    return "+".join(
        f"{t.name}:{_fmt_capacity(t.capacity_bytes)}" for t in platform.tiers
    )


def _tier_label(platform, index: int) -> str:
    """Report key for tier ``index`` — the name, disambiguated by chain
    position when two tiers share a kind (e.g. two DRAM levels)."""
    name = platform.tiers[index].name
    if sum(t.name == name for t in platform.tiers) > 1:
        return f"{name}{index}"
    return name


def _build_stack(cfg: SoakConfig, platform_name: str):
    """Platform + workload + filled cache (chaos-matrix style).

    Under a ``cfg.drift`` scenario the workload pmf is the drift
    schedule's *phase-0* distribution — the cache starts solved for the
    pre-drift regime, exactly the policy the change points invalidate.
    """
    platform = _soak_platform(cfg, platform_name)
    rng = make_rng(cfg.seed)
    dim = max(1, cfg.entry_bytes // 4)
    table = rng.standard_normal((cfg.num_entries, dim)).astype(np.float32)
    schedule = None
    if cfg.drift is not None:
        from repro.dlr.drift import build_drift_schedule

        schedule = build_drift_schedule(
            cfg.drift, cfg.num_entries, cfg.alpha, cfg.seed
        )
        pmf = schedule.phases[0].pmf

        def draw(rng_, _pmf=pmf) -> np.ndarray:
            return rng_.choice(cfg.num_entries, size=cfg.batch_keys, p=_pmf)

    else:
        pmf, draw = _build_workload(cfg)
    hotness = pmf * cfg.batch_keys * platform.num_gpus
    capacity = max(1, int(cfg.cache_ratio * cfg.num_entries))
    placement = hot_replicate_warm_partition_policy(
        hotness, capacity, platform.num_gpus, 0.5
    )
    # On a tiered platform the backing chain is ranked by the same
    # hotness the GPU policy sees: the hot head that misses the GPU tier
    # lands in DRAM, the cold tail sinks to CXL/SSD.
    cache = MultiGpuEmbeddingCache(
        platform,
        table,
        placement,
        tier_hotness=hotness if platform.num_tiers > 1 else None,
    )
    return platform, table, pmf, draw, hotness, capacity, cache, schedule


def _baseline_service(
    extractor: FactoredExtractor, draw, cfg: SoakConfig, rng
) -> float:
    """Healthy single-batch service time ``s0`` (the harness's time unit).

    Priced through the live cache, so on a tiered platform ``s0`` already
    carries the backing chain's bandwidths and latencies — every derived
    knob (deadline, SLO, breaker timeout) scales with the chain.
    """
    keys = draw(rng)
    plan = extractor.plan(0, keys)
    demand = plan.demand(extractor.cache.entry_bytes)
    return factored_extraction(extractor.platform, demand).time


def _drifted_hotness(hotness: np.ndarray, rng) -> np.ndarray:
    """Perturb hotness enough that a re-solve actually moves entries."""
    shuffled = hotness.copy()
    n = len(shuffled)
    # swap the second-hottest decile with a cold slice: realistic drift
    # (items heat up and cool down) that forces a non-empty placement diff.
    hot = slice(n // 10, 2 * n // 10)
    cold = slice(7 * n // 10, 8 * n // 10)
    shuffled[hot], shuffled[cold] = (
        shuffled[cold].copy(),
        shuffled[hot].copy(),
    )
    noise = rng.uniform(0.9, 1.1, size=n)
    return 0.5 * hotness + 0.5 * shuffled * noise


def run_soak(cfg: SoakConfig | None = None) -> SoakReport:
    """Run one soak scenario end to end; never raises for serving faults."""
    cfg = cfg or SoakConfig()
    if cfg.nodes > 1:
        # The cluster tier is a separate harness; importing it lazily
        # keeps repro.serve free of a package cycle (cluster imports the
        # config/report types from this module).
        from repro.cluster.soak import run_cluster_soak

        return run_cluster_soak(cfg)
    platform_name, _desc = SOAK_SCENARIOS[cfg.scenario]
    platform, _table, _pmf, draw, hotness, capacity, cache, schedule = (
        _build_stack(cfg, platform_name)
    )
    arrival_rng, key_rng, probe_rng, drift_rng = spawn_rngs(cfg.seed + 17, 4)

    warm_extractor = FactoredExtractor(cache)
    s0 = _baseline_service(warm_extractor, draw, cfg, make_rng(cfg.seed + 3))
    rate = cfg.load / s0
    duration = cfg.requests_per_gpu / rate

    plan = build_soak_plan(cfg.scenario, duration, cfg.seed)
    injector = FaultInjector(plan, cache=cache) if plan is not None else None
    extractor = FactoredExtractor(cache, injector=injector)
    serve_cfg = ServeConfig(
        admission=AdmissionConfig(
            capacity=cfg.queue_capacity,
            policy=cfg.queue_policy,
            slo_seconds=cfg.slo_factor * s0,
        ),
        breaker=BreakerConfig(
            failure_threshold=3,
            cooldown_seconds=25.0 * s0,
            half_open_probes=2,
            success_threshold=2,
        ),
        hedge_enabled=True,
        source_timeout_seconds=cfg.timeout_factor * s0,
    )
    prefetcher = None
    if cfg.lookahead > 0:
        prefetcher = OracleCacher(
            cache,
            PrefetchConfig(
                lookahead=cfg.lookahead,
                capacity_entries=cfg.prefetch_capacity,
            ),
        )
    runtime = ServingRuntime(
        extractor, config=serve_cfg, injector=injector, prefetcher=prefetcher
    )
    manager = PolicyManager(
        cache,
        refresher=Refresher(cache, RefreshConfig(update_batch_entries=1024)),
        guardrail=SwapGuardrail(p99_regression=2.0),
        solver_config=SolverConfig(time_limit=10.0, coarse_block_frac=0.02),
        fallback=FallbackConfig(
            deadline_seconds=10.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, seed=cfg.seed),
        ),
    )

    G = platform.num_gpus
    deadline = cfg.deadline_factor * s0
    busy = [0.0] * G
    # Under a drift scenario the wall-clock swap schedule is disabled:
    # *when* to re-solve is exactly what the drift detector decides.
    swap_times = (
        [] if cfg.drift is not None
        else sorted(f * duration for f in cfg.swap_at)
    )
    integrity_failures = 0

    adapter = None
    if cfg.adapt:
        from repro.serve.adaptation import AdaptationConfig, DriftAdapter

        # Prime the warm-start seed with a cold solve of the phase-0
        # policy.  It is *not* swapped in (the serving cache already
        # realizes the phase-0 greedy placement, keeping the adapt-off
        # baseline comparable); it only gives the first detection an
        # incremental rung to stand on.
        prime = manager.solve(hotness, capacity)
        adapter = DriftAdapter(
            manager,
            capacity,
            hotness,
            # the estimator sees per-request batches; one soak iteration
            # is G such batches, so solver-scale hotness is ×G.
            config=AdaptationConfig(hotness_scale=float(G)),
            warm=prime.solved,
        )
        runtime.adapter = adapter
        adapt_probe_rng = make_rng(cfg.seed + 101)

        def adapt_probe(at: float) -> float:
            # Probe with keys from the *currently active* phase: the p99
            # guardrail must judge the new placement against the traffic
            # it will serve, not against the pre-drift distribution.
            frac = min(at / duration, 1.0) if duration > 0 else 0.0
            pmf_now = schedule.pmf_at(frac)
            keys = [
                adapt_probe_rng.choice(
                    cfg.num_entries, size=cfg.batch_keys, p=pmf_now
                )
                for _ in range(G)
            ]
            return runtime.probe(keys, at)

    def make_keys(at: float | None = None) -> np.ndarray:
        if schedule is not None and at is not None and duration > 0:
            pmf_now = schedule.pmf_at(min(at / duration, 1.0))
            return key_rng.choice(
                cfg.num_entries, size=cfg.batch_keys, p=pmf_now
            )
        return draw(key_rng)

    probe_keys = [draw(probe_rng) for _ in range(G)]

    coalescing = cfg.batching is BatchingMode.COALESCE
    batchers: list[MicroBatcher] = []
    outcomes: list[CoalesceOutcome] = []
    if coalescing:
        linger = (
            cfg.linger_ms / 1000.0
            if cfg.linger_ms is not None
            else cfg.linger_factor * s0
        )
        coalesce_cfg = CoalesceConfig(
            mode=BatchingMode.COALESCE,
            max_batch=cfg.max_batch,
            linger_seconds=linger,
        )
        batchers = [
            MicroBatcher(g, runtime.admission.queue(g), coalesce_cfg)
            for g in range(G)
        ]

    def catch_up(gpu: int, until: float) -> None:
        """Serve gpu's queue while it can start before ``until``."""
        if coalescing:
            # Micro-batched drain: fuse up to max_batch queued requests
            # whenever the batcher says the next batch should flush.
            while True:
                flush = batchers[gpu].flush_at(busy[gpu])
                if flush is None or flush > until:
                    break
                batch = batchers[gpu].take(flush)
                if not batch:
                    break
                outcome = runtime.serve_batch(batch, flush)
                outcomes.append(outcome)
                busy[gpu] = max(flush, outcome.completed_at)
            return
        while busy[gpu] <= until:
            start = busy[gpu]
            response = runtime.poll(gpu, start)
            if response is None:
                break
            busy[gpu] = max(start, response.completed_at)

    def drain_all(at: float) -> None:
        for g in range(G):
            catch_up(g, math.inf)
            busy[g] = max(busy[g], at)

    def attempt_swap(at: float) -> None:
        nonlocal integrity_failures
        drifted = _drifted_hotness(hotness, drift_rng)
        outcome = manager.solve(drifted, capacity)
        report = manager.swap(
            outcome,
            now=at,
            drain=lambda: drain_all(at),
            probe=lambda: runtime.probe(probe_keys, at),
        )
        integrity_failures += report.integrity_violations
        logger.info(
            "soak swap at t=%.3f: %s (v%d)", at, report.reason, report.version
        )

    # ------------------------------------------------------------------
    # Traffic loop (one heap of arrival events, open or closed loop; or
    # segment-parallel per-GPU workers with barriers at the swap times)
    # ------------------------------------------------------------------
    served_via_poll = 0
    if cfg.workers > 1:
        # Per-GPU worker threads drive independent arrival streams against
        # the shared cache/breakers/metrics.  Arrivals and keys come from
        # per-GPU streams generated up front, so results do not depend on
        # thread interleaving (in fault-free scenarios); hot policy swaps
        # land on the main thread at segment barriers, never racing the
        # serving loops.
        arrivals: list[list[float]] = []
        for g in range(G):
            t = 0.0
            times: list[float] = []
            for _ in range(cfg.requests_per_gpu):
                t += float(arrival_rng.exponential(1.0 / rate))
                times.append(t)
            arrivals.append(times)
        gpu_key_rngs = spawn_rngs(cfg.seed + 29, G)
        cursors = [0] * G
        # With lookahead on, the per-GPU key traces are drawn up front in
        # the same per-stream order the loop below would draw them, so the
        # served trace is identical and only prefetch effects differ.  The
        # whole trace is announced; the window exposes only the next K.
        gpu_traces: list[list[np.ndarray]] = []
        if prefetcher is not None:
            for g in range(G):
                trace = [
                    draw(gpu_key_rngs[g])
                    for _ in range(cfg.requests_per_gpu)
                ]
                gpu_traces.append(trace)
                for keys in trace:
                    prefetcher.announce(g, keys)

        def run_segment(g: int, until: float) -> None:
            times = arrivals[g]
            cursor = cursors[g]
            while cursor < len(times) and times[cursor] < until:
                t = times[cursor]
                catch_up(g, t)
                if prefetcher is not None:
                    idle = max(0.0, t - busy[g])
                    outcome = prefetcher.prefetch(
                        g, now=busy[g], idle_seconds=idle
                    )
                    if outcome.critical_seconds > 0.0:
                        busy[g] = max(busy[g], t) + outcome.critical_seconds
                    keys = gpu_traces[g][cursor]
                else:
                    keys = draw(gpu_key_rngs[g])
                cursor += 1
                request = runtime.make_request(
                    g, keys, t, deadline=t + deadline
                )
                runtime.submit(request, t)
            cursors[g] = cursor

        with GpuWorkerPool(min(cfg.workers, G)) as pool:
            for boundary in [*swap_times, math.inf]:
                pool.map_gpus(
                    lambda g, b=boundary: run_segment(g, b),
                    gpus=range(G),
                )
                if math.isfinite(boundary):
                    attempt_swap(boundary)
        drain_all(duration)
    else:
        events: list[tuple[float, int, int]] = []  # (time, seq, gpu)
        seq = 0
        if cfg.closed_loop:
            for g in range(G):
                for c in range(cfg.clients):
                    heapq.heappush(events, (0.0, seq, g))
                    seq += 1
        else:
            for g in range(G):
                t = 0.0
                for _ in range(cfg.requests_per_gpu):
                    t += float(arrival_rng.exponential(1.0 / rate))
                    heapq.heappush(events, (t, seq, g))
                    seq += 1

        # With lookahead on, keys are drawn up front in heap-pop order
        # (events sort identically as a list and as a heap), so the trace
        # is byte-identical to the draw-at-pop path; the whole future is
        # announced and the window exposes only the next K per GPU.
        event_keys: dict[int, np.ndarray] = {}
        if prefetcher is not None:
            for _t, s, g in sorted(events):
                keys = make_keys()
                event_keys[s] = keys
                prefetcher.announce(g, keys)

        while events:
            t, _s, g = heapq.heappop(events)
            if cfg.closed_loop and t >= duration:
                continue
            while swap_times and swap_times[0] <= t:
                attempt_swap(swap_times.pop(0))
            if adapter is not None:
                adapter.maybe_adapt(
                    t,
                    drain=lambda at=t: drain_all(at),
                    probe=lambda at=t: adapt_probe(at),
                )
            for gpu in range(G):
                catch_up(gpu, t)
            if prefetcher is not None:
                idle = max(0.0, t - busy[g])
                outcome = prefetcher.prefetch(g, now=busy[g], idle_seconds=idle)
                if outcome.critical_seconds > 0.0:
                    busy[g] = max(busy[g], t) + outcome.critical_seconds
                keys = event_keys.pop(_s)
            else:
                keys = make_keys(t)
            request = runtime.make_request(g, keys, t, deadline=t + deadline)
            dropped = runtime.submit(request, t)
            if cfg.closed_loop:
                if dropped is not None:
                    # the client backs off one baseline unit and resubmits.
                    heapq.heappush(events, (t + s0, seq, g))
                    seq += 1
                    continue
                start = max(busy[g], t)
                response = runtime.poll(g, start)
                if response is not None:
                    served_via_poll += 1
                    busy[g] = max(start, response.completed_at)
                    heapq.heappush(events, (response.completed_at, seq, g))
                    seq += 1
        for t_swap in swap_times:
            attempt_swap(t_swap)
        drain_all(duration)

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    reg = get_registry()
    responses = runtime.responses
    by_status = {status: 0 for status in RequestStatus}
    for r in responses:
        by_status[r.status] += 1
    served = [r for r in responses if r.status is RequestStatus.OK]
    latencies = np.array([r.latency for r in served]) if served else np.array([0.0])
    sim_end = max((r.completed_at for r in responses), default=duration)
    sim_end = max(sim_end, duration)
    violations = cache.verify_integrity()
    integrity_failures += len(violations)

    report = SoakReport(
        scenario=cfg.scenario,
        requests=len(responses),
        served_ok=by_status[RequestStatus.OK],
        shed=by_status[RequestStatus.SHED],
        rejected=by_status[RequestStatus.REJECTED],
        expired=by_status[RequestStatus.EXPIRED],
        failed=by_status[RequestStatus.FAILED],
        goodput_rps=by_status[RequestStatus.OK] / sim_end if sim_end > 0 else 0.0,
        shed_rate=(
            (by_status[RequestStatus.SHED] + by_status[RequestStatus.REJECTED])
            / len(responses)
            if responses
            else 0.0
        ),
        hedges=sum(1 for r in responses if r.hedged),
        hedge_wins=sum(1 for r in responses if r.hedge_won),
        rerouted_keys=sum(r.rerouted_keys for r in responses),
        p50_latency=float(np.percentile(latencies, 50)),
        p99_latency=float(np.percentile(latencies, 99)),
        p999_latency=float(np.percentile(latencies, 99.9)),
        max_queue_depth=runtime.admission.max_depth,
        queue_capacity=cfg.queue_capacity,
        breaker_transitions=runtime.breakers.transition_counts(),
        breaker_transitions_by_source=(
            runtime.breakers.transition_counts_by_source()
        ),
        breaker_time_in_state=runtime.breakers.time_in_state(sim_end),
        swaps_attempted=len(manager.swap_log),
        swaps_landed=sum(1 for s in manager.swap_log if s.swapped),
        rollbacks=sum(1 for s in manager.swap_log if s.rolled_back),
        integrity_failures=integrity_failures,
        duration=sim_end,
        arrival_rate=rate,
        baseline_service=s0,
        workers=cfg.workers,
        lookahead=cfg.lookahead,
        tenants=cfg.tenants,
    )
    if platform.num_tiers > 1:
        report.tiers = _chain_label(platform)
        chain = cache.tier_chain
        if chain is not None:
            shares = chain.shares()
            report.tier_shares = {
                _tier_label(platform, i): float(
                    shares.get(platform.tier_source_id(i), 0.0)
                )
                for i in range(platform.num_tiers)
            }
            report.tier_demotions = chain.demotions
            report.tier_moved_bytes = chain.moved_bytes
    if prefetcher is not None:
        prefetcher.finalize()
        report.prefetch_staged_keys = prefetcher.staged_keys_total
        report.prefetch_hits = prefetcher.hits_total
        report.prefetch_hit_rate = prefetcher.hit_rate
        report.prefetch_wasted_bytes = float(prefetcher.wasted_bytes_total)
        report.prefetch_overlap_seconds = prefetcher.overlap_seconds_total
        report.prefetch_critical_seconds = prefetcher.critical_seconds_total
    served_batches = [o for o in outcomes if o.union_size > 0]
    if served_batches:
        total_member_keys = sum(o.total_keys for o in served_batches)
        total_union_keys = sum(o.union_size for o in served_batches)
        report.coalesced_batches = len(served_batches)
        report.mean_batch_size = sum(
            o.batch_size for o in served_batches
        ) / len(served_batches)
        report.dedup_ratio = (
            total_member_keys / total_union_keys if total_union_keys else 1.0
        )
    if cfg.drift is not None and schedule is not None:
        report.drift_scenario = cfg.drift
        report.adapt_enabled = cfg.adapt
        report.drift_transitions = len(schedule.transitions)
        windows = [
            (f * duration, min(f + cfg.drift_window, 1.0) * duration)
            for f in schedule.transitions
        ]

        def in_window(r) -> bool:
            return any(lo <= r.request.arrival < hi for lo, hi in windows)

        transition = [r for r in responses if in_window(r)]
        steady = [r for r in responses if not in_window(r)]
        report.transition_requests = len(transition)
        tr_ok = sum(1 for r in transition if r.status is RequestStatus.OK)
        st_ok = sum(1 for r in steady if r.status is RequestStatus.OK)
        report.transition_ok_rate = (
            tr_ok / len(transition) if transition else 1.0
        )
        steady_rate = st_ok / len(steady) if steady else 0.0
        report.transition_goodput_ratio = (
            report.transition_ok_rate / steady_rate
            if steady_rate > 0
            else 1.0
        )
    if adapter is not None:
        report.drift_detections = adapter.detections
        report.adapt_resolves = adapter.resolves
        report.adapt_incremental_resolves = sum(
            1 for e in adapter.events
            if e.kind == "resolve" and e.detail == "incremental"
        )
        report.adapt_swaps_landed = adapter.swaps_landed
        report.adapt_rollbacks = adapter.rollbacks
        report.drift_tape = [s.to_dict() for s in adapter.detector.tape]
        report.adapt_events = [e.to_dict() for e in adapter.events]
    if reg.enabled:
        reg.gauge("soak.goodput_rps").set(report.goodput_rps)
        reg.gauge("soak.shed_rate").set(report.shed_rate)
        reg.gauge("soak.max_queue_depth").set(report.max_queue_depth)
        reg.counter("soak.runs", scenario=cfg.scenario).inc()
        if served_batches:
            reg.gauge("soak.dedup_ratio").set(report.dedup_ratio)
        if prefetcher is not None:
            reg.gauge("soak.prefetch_hit_rate").set(report.prefetch_hit_rate)
    logger.info(
        "soak %s: %d requests, %.1f ok/s goodput, shed %.1f%%, p99 %.3es",
        cfg.scenario, report.requests, report.goodput_rps,
        100 * report.shed_rate, report.p99_latency,
    )
    return report


def render_soak_report(report: SoakReport) -> str:
    """Human-readable soak summary for the CLI."""
    s0 = report.baseline_service or 1.0
    lines = [
        f"soak scenario: {report.scenario} "
        f"({'PASS' if report.ok else 'FAIL'})",
        f"  requests      {report.requests:8d}   "
        f"ok {report.served_ok}  shed {report.shed}  "
        f"rejected {report.rejected}  expired {report.expired}",
        f"  goodput       {report.goodput_rps:10.1f} req/s  "
        f"(offered {report.arrival_rate:.1f}/s/GPU, "
        f"shed rate {report.shed_rate:.1%})",
        f"  latency       p50 {report.p50_latency / s0:6.2f}x  "
        f"p99 {report.p99_latency / s0:6.2f}x  "
        f"p99.9 {report.p999_latency / s0:6.2f}x  "
        f"(x baseline {s0:.3e}s)",
        f"  queues        max depth {report.max_queue_depth}/"
        f"{report.queue_capacity}",
        f"  hedging       {report.hedges} issued, {report.hedge_wins} won",
        f"  rerouting     {report.rerouted_keys} keys moved off faulty sources",
        f"  breakers      {report.breaker_transitions or 'no transitions'}",
        f"  policy swaps  {report.swaps_landed}/{report.swaps_attempted} "
        f"landed, {report.rollbacks} rolled back",
        f"  integrity     {report.integrity_failures} failure(s)",
    ]
    if report.tiers:
        homed = ", ".join(
            f"{name} {share:.1%}"
            for name, share in report.tier_shares.items()
        )
        lines.insert(
            1,
            f"  tiers         {report.tiers}  "
            f"homed: {homed or 'n/a'}; "
            f"{report.tier_demotions} demotions, "
            f"{report.tier_moved_bytes} B moved",
        )
    if report.tenants > 1:
        lines.insert(1, f"  tenants       {report.tenants} models share the table")
    if report.coalesced_batches:
        lines.insert(
            5,
            f"  coalescing    {report.coalesced_batches} batches, "
            f"mean size {report.mean_batch_size:.2f}, "
            f"dedup ratio {report.dedup_ratio:.2f}x",
        )
    if report.lookahead:
        lines.insert(
            5,
            f"  prefetch      lookahead {report.lookahead}: "
            f"hit rate {report.prefetch_hit_rate:.1%} "
            f"({report.prefetch_hits} hits on "
            f"{report.prefetch_staged_keys} staged keys), "
            f"wasted {report.prefetch_wasted_bytes:.0f}B, "
            f"overlapped {report.prefetch_overlap_seconds:.3e}s, "
            f"critical {report.prefetch_critical_seconds:.3e}s",
        )
    if report.workers > 1:
        lines.insert(1, f"  workers       {report.workers} per-GPU threads")
    if report.nodes > 1:
        lines.insert(
            1,
            f"  cluster       {report.nodes} nodes, replication "
            f"{report.replication}: {report.failovers} failovers, "
            f"replica reads {report.replica_read_fraction:.1%}, "
            f"failover goodput {report.failover_goodput_ratio:.0%} "
            f"of steady, {report.rebalance_bytes} B rebalanced",
        )
        lines.insert(
            2,
            f"  rpc           {report.rpc_retries} retries, "
            f"{report.rpc_timeouts} timeouts, "
            f"{report.partial_responses} partial responses, "
            f"{report.host_fallback_keys} host-fallback keys",
        )
    if report.drift_scenario:
        lines.insert(
            1,
            f"  drift         {report.drift_scenario}: "
            f"{report.drift_transitions} change point(s), "
            f"transition goodput "
            f"{report.transition_goodput_ratio:.0%} of steady "
            f"(ok rate {report.transition_ok_rate:.1%} over "
            f"{report.transition_requests} requests)",
        )
        if report.adapt_enabled:
            lines.insert(
                2,
                f"  adaptation    {report.drift_detections} detection(s) -> "
                f"{report.adapt_resolves} re-solve(s) "
                f"({report.adapt_incremental_resolves} incremental), "
                f"{report.adapt_swaps_landed} swap(s) landed, "
                f"{report.adapt_rollbacks} rolled back",
            )
    if report.repair_enabled:
        lines.insert(
            1,
            f"  repair        {report.restage_mode} re-stage: "
            f"{report.restage_blocks} blocks / {report.restage_bytes} B, "
            f"recovery goodput {report.recovery_goodput_ratio:.0%} of "
            f"steady over {report.recovery_requests} requests "
            f"(window p99 {report.recovery_p99_latency:.3e}s)",
        )
        lines.insert(
            2,
            f"  scrubbing     {report.scrub_scanned_slots} slots scanned, "
            f"{report.scrub_mismatches} mismatches, "
            f"{report.scrub_repaired} repaired, "
            f"{report.scrub_read_repairs} read-guard patches, "
            f"{report.corrupt_values_served} corrupt rows served, "
            f"{report.watchdog_transitions} watchdog transitions",
        )
    return "\n".join(lines)
