"""Golden regression for the lookahead prefetch stage.

``tests/golden/prefetch_golden.json`` pins a seeded ``lookahead=4`` soak
run, its ``lookahead=0`` anchor, the oracle cacher's staging tape, and
the discrete event-sim pricing of a prefetched extraction.  The
``soak_off`` section is the equivalence claim of this layer: with
``--lookahead 0`` the serving runtime must keep producing byte-for-byte
the report the pre-prefetch code produced (the prefetch report fields
are constants when lookahead is 0).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

pytestmark = [pytest.mark.serve, pytest.mark.prefetch]


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_prefetch_golden", GOLDEN_DIR / "generate_prefetch_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((GOLDEN_DIR / "prefetch_golden.json").read_text())


@pytest.fixture(scope="module")
def replayed() -> dict:
    # Round-trip through JSON so float representation matches the fixture.
    return json.loads(json.dumps(_load_generator().build(), sort_keys=True))


@pytest.mark.parametrize(
    "section", ["cacher_tape", "event_sim", "soak_off", "soak_lookahead"]
)
def test_prefetch_matches_golden(golden, replayed, section):
    assert replayed[section] == golden[section], (
        f"{section} diverged from the pinned prefetch fixture"
    )


def test_lookahead_zero_is_the_pre_prefetch_anchor(golden):
    """Lookahead 0 must look exactly like the runtime before this layer."""
    off = golden["soak_off"]
    assert off["lookahead"] == 0
    assert off["prefetch_staged_keys"] == 0
    assert off["prefetch_hits"] == 0
    assert off["prefetch_hit_rate"] == 0.0
    assert off["prefetch_wasted_bytes"] == 0.0
    assert off["ok"]


def test_fixture_exercises_real_prefetching(golden):
    """The pin covers a lookahead run that actually beat the anchor."""
    on, off = golden["soak_lookahead"], golden["soak_off"]
    assert on["lookahead"] == 4
    assert on["prefetch_hits"] > 0
    assert on["prefetch_hit_rate"] > 0.5
    assert on["goodput_rps"] > off["goodput_rps"]
    # the offered trace is identical — only serving outcomes may differ
    assert on["requests"] == off["requests"]
    assert on["arrival_rate"] == off["arrival_rate"]
    assert on["baseline_service"] == off["baseline_service"]
    # staging tape: capacity pressure deferred some keys, hits landed
    tape = golden["cacher_tape"]
    assert any(s["deferred_keys"] > 0 for s in tape["steps"])
    assert tape["hits_total"] > 0
    # event sim: prefetch overlapped the idle gap and beat the baseline
    sim = golden["event_sim"]
    assert sim["overlapped_seconds"] > 0
    assert sim["speedup"] > 1.0
