"""The online serving runtime: request loop over the multi-GPU cache.

:class:`ServingRuntime` is what sits between a request stream and the
cache machinery built in earlier PRs.  Per request it:

1. admits through the bounded per-GPU queue (backpressure + SLO shed);
2. plans extraction with the degraded-mode
   :class:`~repro.core.extractor.FactoredExtractor`, excluding any source
   whose circuit breaker is open;
3. prices the plan with the factored timing model under the current
   health view (the simulated clock advances by this price);
4. if the deadline is close, races a **hedged host-DRAM gather** against
   the planned extraction and takes whichever completes first;
5. feeds per-source outcomes (reroutes, group timeouts) back into the
   breakers, and every latency into the obs histograms the admission
   controller's estimator reads.

Everything is simulated-clock aware: no wall time is read anywhere, so
soak runs are deterministic and fast.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.extractor import FactoredExtractor
from repro.core.pipeline import (
    backing_fallback_demand,
    price_demand,
    shift_staged_demand,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import HealthView
from repro.obs import get_registry
from repro.serve.breaker import BreakerBoard, BreakerConfig
from repro.serve.coalesce import CoalesceOutcome, coalesce_keys
from repro.serve.queueing import AdmissionConfig, AdmissionController
from repro.serve.request import Request, RequestStatus, Response, SimClock
from repro.sim.mechanisms import GpuDemand
from repro.utils.logging import get_logger

logger = get_logger("serve.runtime")

__all__ = ["ServeConfig", "ServingRuntime"]


@dataclass(frozen=True)
class ServeConfig:
    """Runtime knobs beyond admission and breaker thresholds.

    Attributes:
        admission: queue capacity / backpressure / SLO policy.
        breaker: circuit-breaker thresholds.
        hedge_enabled: issue a parallel host-DRAM gather when a request's
            remaining deadline budget is under ``hedge_headroom`` × the
            planned extraction estimate.
        hedge_headroom: how nervous the hedger is; 1.0 hedges only when
            the plan already looks too slow, larger values hedge earlier.
        source_timeout_seconds: a source group whose simulated extraction
            time exceeds this counts as a breaker failure (degraded-link
            timeout).  ``inf`` disables timeout-based tripping.
        breaker_protects_host: whether HOST gets a breaker too.  Off by
            default: host DRAM is the fallback of last resort, and a
            runtime with nowhere to route is worse than a slow one.
    """

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    hedge_enabled: bool = True
    hedge_headroom: float = 1.25
    source_timeout_seconds: float = math.inf
    breaker_protects_host: bool = False

    def __post_init__(self) -> None:
        if self.hedge_headroom <= 0:
            raise ValueError("hedge headroom must be positive")
        if self.source_timeout_seconds <= 0:
            raise ValueError("source timeout must be positive")


class ServingRuntime:
    """Admission + breakers + hedging around a degraded-mode extractor."""

    def __init__(
        self,
        extractor: FactoredExtractor,
        config: ServeConfig | None = None,
        injector: FaultInjector | None = None,
        clock: SimClock | None = None,
        prefetcher=None,
    ) -> None:
        self._extractor = extractor
        self._cache = extractor.cache
        self.config = config or ServeConfig()
        self._injector = injector
        #: optional :class:`~repro.core.prefetch.OracleCacher`; when
        #: attached, staged host keys are re-priced as local reads.  With
        #: no prefetcher the serving path is byte-identical to earlier
        #: revisions.
        self.prefetcher = prefetcher
        #: optional :class:`~repro.serve.adaptation.DriftAdapter`; when
        #: attached, every *offered* request's key batch (at submit,
        #: before admission control) feeds its streaming hotness
        #: estimator.  With no adapter the serving path is byte-identical
        #: to earlier revisions.
        self.adapter = None
        self.clock = clock or SimClock()
        platform = extractor.platform
        self.admission = AdmissionController(
            platform.num_gpus, self.config.admission
        )
        sources = list(platform.gpu_ids)
        if self.config.breaker_protects_host:
            # One breaker per backing tier: [HOST] on a single-tier
            # platform, deeper tier ids on a DRAM→CXL→SSD chain.
            sources.extend(platform.backing_ids)
        self.breakers = BreakerBoard(sources, self.config.breaker)
        self.responses: list[Response] = []
        self._next_request_id = 0
        # make_request is called from every per-GPU worker thread; the id
        # bump is a read-modify-write, so serialize it.
        self._id_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Request construction / submission
    # ------------------------------------------------------------------
    def make_request(
        self, gpu: int, keys: np.ndarray, now: float, deadline: float = math.inf
    ) -> Request:
        with self._id_lock:
            self._next_request_id += 1
            request_id = self._next_request_id
        return Request(
            request_id=request_id,
            gpu=gpu,
            keys=np.ascontiguousarray(keys, dtype=np.int64),
            arrival=now,
            deadline=deadline,
        )

    def submit(self, request: Request, now: float) -> Response | None:
        """Admit one request; returns a Response iff it was dropped.

        A ``None`` return means the request is queued (or parked by the
        block policy) and will produce its Response from :meth:`poll`.
        """
        if self.adapter is not None:
            # Hotness estimation sees *offered* traffic, before admission
            # control: under a drifted policy most requests shed, and an
            # estimator fed only by survivors would starve exactly when
            # the detector needs fresh evidence most.
            self.adapter.observe(request.gpu, request.keys, now)
        result = self.admission.submit(request, now)
        if result.admitted or result.blocked:
            responses = [
                self._finish_dropped(victim, RequestStatus.SHED, now)
                for victim in result.displaced
            ]
            for r in responses:
                self.responses.append(r)
                self._retire_prefetch(r.request.gpu)
            return None
        assert result.status is not None
        response = self._finish_dropped(request, result.status, now)
        self.responses.append(response)
        self._retire_prefetch(request.gpu)
        return response

    def _finish_dropped(
        self, request: Request, status: RequestStatus, now: float
    ) -> Response:
        reg = get_registry()
        reg.counter("serve.requests", status=status.value).inc()
        return Response(request=request, status=status, completed_at=now)

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _health(self, now: float) -> HealthView | None:
        if self._injector is None:
            return None
        return self._injector.advance(now)

    def _retire_prefetch(self, gpu: int) -> None:
        """Slide the prefetcher's window past one retired batch.

        A batch is *retired* when its request leaves the system — served,
        expired at the worker, or dropped at admission (shed, rejected,
        displaced).  Retiring here rather than at submission keeps staged
        entries resident across the request's queueing delay, so a hit is
        recorded when the batch is finally extracted.
        """
        if self.prefetcher is not None:
            self.prefetcher.advance(gpu)

    def _apply_prefetch(self, gpu: int, plan, demand: GpuDemand):
        """Shift staged host keys off the demand's host path.

        Asks the attached oracle cacher which of the plan's host-resolved
        keys are already resident in its staging buffer and re-prices
        those bytes as local reads (the values themselves are unchanged —
        staging is a timing effect).  A no-op without a prefetcher.
        """
        if self.prefetcher is None:
            return demand, 0
        platform = self._extractor.platform
        backing_groups = [
            g.keys for g in plan.groups if platform.is_backing(g.source)
        ]
        host_keys = (
            np.concatenate(backing_groups)
            if backing_groups
            else np.empty(0, dtype=np.int64)
        )
        mask = self.prefetcher.stage_hits(gpu, host_keys)
        hits = int(mask.sum())
        if hits == 0:
            return demand, 0
        return (
            shift_staged_demand(
                demand, hits * self._cache.entry_bytes, platform
            ),
            hits,
        )

    def serve_request(self, request: Request, now: float) -> Response:
        """Execute one admitted request at (simulated) time ``now``."""
        reg = get_registry()
        if request.expired(now):
            # Dead on arrival at the worker: don't waste extraction on it.
            response = self._finish_dropped(request, RequestStatus.EXPIRED, now)
            self.responses.append(response)
            self._retire_prefetch(request.gpu)
            return response

        health = self._health(now)
        excluded = self.breakers.excluded_sources(now)
        # Plan and execute under one read lock: the plan's slot offsets
        # must still be valid when the gather runs, so a refresher step
        # (a writer) cannot land between the two.
        with self._cache.reading():
            plan = self._extractor.plan(
                request.gpu,
                request.keys,
                health=health,
                now=now,
                exclude_sources=excluded,
            )
            values, demand = self._extractor.execute(plan)
        demand, prefetch_hits = self._apply_prefetch(request.gpu, plan, demand)
        # The pipeline's shared price stage — same call the simulators make.
        platform = self._extractor.platform
        report = price_demand(platform, demand, health=health)
        service_time = report.time

        hedged = False
        hedge_won = False
        if (
            self.config.hedge_enabled
            and math.isfinite(request.deadline)
            and request.remaining(now)
            < self.config.hedge_headroom * service_time
        ):
            hedged = True
            # Split the hedge across backing tiers by where entries
            # actually live ({HOST: 1.0} on a single-tier platform).
            host_demand = backing_fallback_demand(
                demand, self._cache.backing_shares()
            )
            host_time = price_demand(platform, host_demand, health=health).time
            reg.counter("serve.hedges", gpu=request.gpu).inc()
            if host_time < service_time:
                # the host gather wins the race: same (exact) values, the
                # host path's price.
                hedge_won = True
                service_time = host_time
                values = self._cache.host_gather(request.keys)
                reg.counter("serve.hedge_wins", gpu=request.gpu).inc()

        completed_at = now + service_time
        status = (
            RequestStatus.OK
            if completed_at <= request.deadline
            else RequestStatus.EXPIRED
        )

        self._feed_breakers(plan, report.time_by_source, now)
        estimator = self.admission.estimator(request.gpu)
        estimator.observe(service_time)
        reg.counter("serve.requests", status=status.value).inc()
        reg.histogram("serve.latency.seconds").observe(
            completed_at - request.arrival
        )
        response = Response(
            request=request,
            status=status,
            completed_at=completed_at,
            service_time=service_time,
            hedged=hedged,
            hedge_won=hedge_won,
            rerouted_keys=plan.rerouted_keys,
            prefetch_hits=prefetch_hits,
            values=values,
        )
        self.responses.append(response)
        self._retire_prefetch(request.gpu)
        return response

    def serve_batch(self, requests: list[Request], now: float) -> CoalesceOutcome:
        """Serve a coalesced micro-batch of same-GPU requests at ``now``.

        The member key sets are unioned and deduplicated into one
        extraction demand, planned and executed once, and priced once
        through the shared :func:`~repro.core.pipeline.price_demand`
        stage; every member then receives its own scatter of the gathered
        values and its own deadline/hedging/latency accounting:

        * every live member completes at ``now + shared_time`` (they all
          wait for the shared extraction), except a member whose deadline
          hedge wins — its host-DRAM gather races the shared extraction
          exactly as in :meth:`serve_request`;
        * the per-member latency includes its queue wait and linger
          (``now - arrival``) plus the shared extraction time, so a
          member's latency is never below what serving it alone at its
          own arrival would have cost;
        * breakers are fed once per batch (one plan, one outcome) and the
          admission estimator observes the shared service time once.

        The union plan's rerouted-key count is attributed to the first
        live member's response (it counts unique keys moved, so spreading
        it across members would double-count).
        """
        reg = get_registry()
        responses: list[Response] = []
        live: list[Request] = []
        for request in requests:
            if request.expired(now):
                response = self._finish_dropped(
                    request, RequestStatus.EXPIRED, now
                )
                self.responses.append(response)
                responses.append(response)
                self._retire_prefetch(request.gpu)
            else:
                live.append(request)
        if not live:
            # No member reached extraction: nothing was fused, so the
            # batch size is 0, not the offered count — otherwise soak
            # mean_batch_size inflates over batches that did no work.
            return CoalesceOutcome(
                responses=responses,
                batch_size=0,
                completed_at=now,
            )
        gpu = live[0].gpu
        if any(r.gpu != gpu for r in live):
            raise ValueError("a coalesced batch must target one GPU")

        union, total_keys = coalesce_keys(live)
        health = self._health(now)
        excluded = self.breakers.excluded_sources(now)
        with self._cache.reading():
            plan = self._extractor.plan(
                gpu,
                union,
                health=health,
                now=now,
                exclude_sources=excluded,
            )
            values, demand = self._extractor.execute(plan)
        demand, prefetch_hits = self._apply_prefetch(gpu, plan, demand)
        # The fused extraction retires every live member's batch at once.
        for _ in live:
            self._retire_prefetch(gpu)
        platform = self._extractor.platform
        report = price_demand(platform, demand, health=health)
        shared_time = report.time
        completed_at = now + shared_time

        self._feed_breakers(plan, report.time_by_source, now)
        self.admission.estimator(gpu).observe(shared_time)
        outcome = CoalesceOutcome(
            responses=responses,
            batch_size=len(live),
            union_size=len(union),
            total_keys=total_keys,
            service_time=shared_time,
            completed_at=completed_at,
            prefetch_hits=prefetch_hits,
        )
        reg.histogram("serve.coalesce.batch_size").observe(len(live))
        reg.histogram("serve.coalesce.dedup_ratio").observe(
            outcome.dedup_ratio
        )

        entry_bytes = self._cache.entry_bytes
        rerouted_credit = plan.rerouted_keys
        for request in live:
            service_time = shared_time
            request_values: np.ndarray | None = None
            hedged = False
            hedge_won = False
            if (
                self.config.hedge_enabled
                and math.isfinite(request.deadline)
                and request.remaining(now)
                < self.config.hedge_headroom * shared_time
            ):
                hedged = True
                shares = self._cache.backing_shares()
                total_bytes = float(len(request.keys) * entry_bytes)
                host_demand = GpuDemand(
                    dst=gpu,
                    volumes={
                        s: total_bytes * f for s, f in shares.items() if f > 0
                    },
                )
                host_time = price_demand(
                    platform, host_demand, health=health
                ).time
                reg.counter("serve.hedges", gpu=gpu).inc()
                if host_time < shared_time:
                    hedge_won = True
                    service_time = host_time
                    request_values = self._cache.host_gather(request.keys)
                    reg.counter("serve.hedge_wins", gpu=gpu).inc()
            if request_values is None:
                request_values = values[np.searchsorted(union, request.keys)]
            done = now + service_time
            status = (
                RequestStatus.OK
                if done <= request.deadline
                else RequestStatus.EXPIRED
            )
            reg.counter("serve.requests", status=status.value).inc()
            reg.histogram("serve.latency.seconds").observe(
                done - request.arrival
            )
            reg.histogram("serve.coalesce.linger.seconds").observe(
                now - request.arrival
            )
            response = Response(
                request=request,
                status=status,
                completed_at=done,
                service_time=service_time,
                hedged=hedged,
                hedge_won=hedge_won,
                rerouted_keys=rerouted_credit,
                coalesced=len(live),
                values=request_values,
            )
            rerouted_credit = 0
            self.responses.append(response)
            responses.append(response)
        return outcome

    def _feed_breakers(
        self, plan, time_by_source: dict[int, float], now: float
    ) -> None:
        """Turn one plan's outcome into per-source breaker signals."""
        failed = set(plan.failed_sources)
        timeout = self.config.source_timeout_seconds
        for src, t in time_by_source.items():
            if src == plan.dst:
                continue
            if t > timeout:
                failed.add(src)
                get_registry().counter(
                    "serve.source_timeouts", source=src
                ).inc()
        for src in failed:
            self.breakers.record(src, ok=False, now=now)
        for group in plan.groups:
            src = group.source
            if src == plan.dst or src in failed:
                continue
            self.breakers.record(src, ok=True, now=now)

    # ------------------------------------------------------------------
    # Loop helpers (the soak harness and the policy manager use these)
    # ------------------------------------------------------------------
    def poll(self, gpu: int, now: float) -> Response | None:
        """Serve the next queued request on ``gpu``, if any."""
        request = self.admission.queue(gpu).pop(now)
        if request is None:
            return None
        return self.serve_request(request, now)

    def drain(self, now: float | None = None) -> list[Response]:
        """Serve everything queued (sequentially, advancing the clock).

        Used before a hot policy swap: in-flight and queued work completes
        against the old generation before the refresh touches routing.
        """
        t = self.clock.now if now is None else now
        self.clock.advance_to(t)
        out: list[Response] = []
        for gpu in range(len(self.admission.queues)):
            while True:
                response = self.poll(gpu, self.clock.now)
                if response is None:
                    break
                out.append(response)
                self.clock.advance(response.service_time)
        return out

    def probe(self, keys_per_gpu: list[np.ndarray], now: float) -> float:
        """Measure current serving latency (max over GPUs) for the swap
        guardrail, without touching queues, breakers, or metrics state."""
        health = self._health(now)
        platform = self._extractor.platform
        worst = 0.0
        for gpu, keys in enumerate(keys_per_gpu):
            plan = self._extractor.plan(gpu, keys, health=health, now=now)
            demand = plan.demand(self._cache.entry_bytes)
            worst = max(worst, price_demand(platform, demand, health=health).time)
        return worst
