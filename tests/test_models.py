"""Dense-layer cost models for GNN and DLR applications."""

import pytest

from repro.dlr import models as dlr_models
from repro.gnn import models as gnn_models


class TestGnnModels:
    def test_mode_mapping(self):
        assert gnn_models.model_for_mode("gcn").layers == 3
        assert gnn_models.model_for_mode("sage-sup").layers == 2
        assert gnn_models.model_for_mode("sage-unsup") is gnn_models.GRAPHSAGE

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            gnn_models.model_for_mode("gat")

    def test_flops_scale_with_vertices(self):
        m = gnn_models.GRAPHSAGE
        assert m.flops_per_iteration(2000, 128) > m.flops_per_iteration(1000, 128)

    def test_flops_scale_with_dim(self):
        m = gnn_models.GRAPHSAGE
        assert m.flops_per_iteration(1000, 768) > m.flops_per_iteration(1000, 128)

    def test_a100_faster_than_v100(self, platform_a, platform_c):
        t_v100 = gnn_models.dense_time_per_iteration(
            platform_a, gnn_models.GCN, 10_000, 128
        )
        t_a100 = gnn_models.dense_time_per_iteration(
            platform_c, gnn_models.GCN, 10_000, 128
        )
        assert t_a100 < t_v100

    def test_sampling_time_scales(self, platform_c):
        t1 = gnn_models.sampling_time_per_iteration(platform_c, 1000)
        t2 = gnn_models.sampling_time_per_iteration(platform_c, 100_000)
        assert t2 > t1

    def test_unknown_gpu_rejected(self, platform_a):
        import dataclasses

        from repro.hardware.spec import GPUSpec

        odd_gpu = GPUSpec("H100", 2**30, 10, 1e11, 4)
        platform = dataclasses.replace(platform_a, gpu=odd_gpu)
        with pytest.raises(ValueError):
            gnn_models.dense_time_per_iteration(platform, gnn_models.GCN, 100, 128)


class TestDlrModels:
    def test_name_mapping(self):
        assert dlr_models.model_by_name("dlrm") is dlr_models.DLRM
        assert dlr_models.model_by_name("dcn") is dlr_models.DCN
        with pytest.raises(ValueError):
            dlr_models.model_by_name("wide-and-deep")

    def test_dcn_costs_more_than_dlrm(self):
        dlrm = dlr_models.DLRM.flops_per_request(26, 128)
        dcn = dlr_models.DCN.flops_per_request(26, 128)
        assert dcn > dlrm

    def test_time_scales_with_batch(self, platform_c):
        small = dlr_models.dense_time_per_iteration(platform_c, dlr_models.DLRM, 1024, 26, 128)
        large = dlr_models.dense_time_per_iteration(platform_c, dlr_models.DLRM, 8192, 26, 128)
        assert large > small

    def test_more_tables_cost_more(self):
        few = dlr_models.DLRM.flops_per_request(26, 128)
        many = dlr_models.DLRM.flops_per_request(100, 128)
        assert many > few

    def test_paper_scale_sanity(self, platform_c):
        # DLRM at batch 8K / 26 tables should be single-digit ms on A100.
        t = dlr_models.dense_time_per_iteration(platform_c, dlr_models.DLRM, 8192, 26, 128)
        assert 0.5e-3 < t < 20e-3
