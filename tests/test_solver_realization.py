"""Properties of SolvedPolicy.realize(): the fraction→placement bridge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluate import hit_rates
from repro.core.solver import SolverConfig, solve_policy
from repro.hardware.platform import server_a, server_c
from repro.utils.stats import zipf_pmf

PLATFORMS = {"server-a": server_a(), "server-c": server_c()}
FAST = SolverConfig(coarse_block_frac=0.05)


class TestRealizationProperties:
    @given(
        platform_name=st.sampled_from(["server-a", "server-c"]),
        alpha=st.floats(0.3, 1.8),
        ratio=st.floats(0.01, 0.6),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=10, deadline=None)
    def test_capacity_and_coverage(self, platform_name, alpha, ratio, seed):
        platform = PLATFORMS[platform_name]
        rng = np.random.default_rng(seed)
        hotness = zipf_pmf(600, alpha)[rng.permutation(600)] * 10_000
        capacity = int(ratio * 600)
        solved = solve_policy(platform, hotness, capacity, 512, FAST)
        placement = solved.realize()
        # Capacity is a hard constraint after realization.
        placement.validate_capacity(capacity)
        # Realized global coverage tracks the LP's distinct storage mass.
        lp_distinct = min(
            float((solved.storage.max(axis=1) * solved.blocks.sizes).sum()),
            600.0,
        )
        realized = placement.distinct_cached()
        assert realized >= 0.8 * lp_distinct - solved.blocks.num_blocks

    @given(
        alpha=st.floats(0.5, 1.6),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=6, deadline=None)
    def test_partition_like_solutions_tile_blocks(self, alpha, seed):
        """When the LP partitions a block (Σ_j s = 1), rotation realizes a
        near-exact tiling: few duplicates, near-full coverage."""
        platform = PLATFORMS["server-c"]
        rng = np.random.default_rng(seed)
        hotness = zipf_pmf(800, alpha)[rng.permutation(800)] * 10_000
        solved = solve_policy(platform, hotness, 100, 512, FAST)
        placement = solved.realize()
        total_copies = sum(placement.cached_counts())
        distinct = placement.distinct_cached()
        # Copies never exceed the LP storage mass by more than rounding.
        lp_mass = float((solved.storage * solved.blocks.sizes[:, None]).sum())
        assert total_copies <= lp_mass + solved.blocks.num_blocks * 8

    def test_realization_deterministic(self):
        platform = PLATFORMS["server-a"]
        hotness = zipf_pmf(500, 1.1) * 1000
        solved = solve_policy(platform, hotness, 60, 512, FAST)
        a = solved.realize()
        b = solved.realize()
        for x, y in zip(a.per_gpu, b.per_gpu):
            assert np.array_equal(x, y)

    def test_realized_hit_rates_track_lp_access(self):
        """The realized placement's access mix stays close to the LP's."""
        platform = PLATFORMS["server-c"]
        hotness = zipf_pmf(2000, 1.2) * 50_000
        solved = solve_policy(platform, hotness, 200, 512, FAST)
        placement = solved.realize()
        hits = hit_rates(platform, placement, hotness)
        lp_fracs = solved.access_volume_fractions(0)
        lp_local = lp_fracs.get(0, 0.0)
        assert hits.local == pytest.approx(lp_local, abs=0.15)
