"""Figure 17: inference latency timeline during cache refresh."""

from repro.bench.experiments import fig17_refresh


def bench_fig17_refresh(run_experiment):
    result = run_experiment(fig17_refresh)
    assert len(result.rows) == 2  # refreshes at ~40 s and ~150 s
    for row in result.rows:
        # §7.2 / §8.6: bounded foreground impact, tens-of-seconds duration.
        assert row["impact_pct"] <= 10.5
        assert row["duration_s"] < 60
