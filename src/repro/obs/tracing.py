"""Lightweight wall-clock tracing: ``span()`` and ``timer()`` contexts.

``timer(name)`` measures a block with ``time.perf_counter`` and observes
the duration into the active registry's histogram ``name`` — the workhorse
for plan/execute/solve timings.  ``span(name)`` additionally buffers a
:class:`SpanRecord` (name, start, duration, attrs) on the registry, but
only when ``registry.tracing_enabled`` is set; with tracing off it is a
shared no-op object, so the default hot path never pays for trace
bookkeeping (the "no sink attached" fast path).

Wall-clock here is the *instrumentation's* clock; the simulator's modelled
seconds are untouched, so enabling metrics never perturbs simulated
timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["PIPELINE_STAGES", "SpanRecord", "span", "stage_timer", "timer"]

#: Cap on buffered spans per registry; beyond it spans are counted but
#: dropped, so a long-running process cannot leak memory through tracing.
MAX_BUFFERED_SPANS = 10_000


@dataclass
class SpanRecord:
    """One completed traced region."""

    name: str
    start: float
    duration: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able form of the span."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NoopContext:
    """Shared do-nothing context for disabled timers/spans."""

    __slots__ = ()

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """Accept and discard attributes (span API compatibility)."""


_NOOP = _NoopContext()


class _Timer:
    """Times a block into one histogram series."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: MetricsRegistry, name: str, labels: dict[str, Any]):
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry.histogram(self._name, **self._labels).observe(elapsed)


class _Span:
    """Times a block and buffers a :class:`SpanRecord` on the registry."""

    __slots__ = ("_registry", "_record")

    def __init__(self, registry: MetricsRegistry, name: str, attrs: dict[str, Any]):
        self._registry = registry
        self._record = SpanRecord(name=name, start=0.0, duration=0.0, attrs=attrs)

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span from inside the block."""
        self._record.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._record.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._record.duration = time.perf_counter() - self._record.start
        spans = self._registry.spans
        if len(spans) < MAX_BUFFERED_SPANS:
            spans.append(self._record)
        else:
            self._registry.counter("obs.spans.dropped").inc()


def timer(name: str, registry: MetricsRegistry | None = None, **labels: Any):
    """Context manager timing a block into histogram ``name``.

    No-op (not even a clock read) when the registry is disabled.
    """
    registry = registry or get_registry()
    if not registry.enabled:
        return _NOOP
    return _Timer(registry, name, labels)


#: The extraction pipeline's stage names, in execution order.  Each stage
#: times itself into ``pipeline.<stage>.seconds``; exporters and the
#: metrics summarizer use this list to render the per-stage breakdown.
#: ``prefetch`` runs ahead of the batch (the lookahead oracle staging
#: upcoming host misses); the remaining six serve the batch itself.
PIPELINE_STAGES = (
    "prefetch", "resolve", "reroute", "group", "dedicate", "price", "execute",
    "fanout",
)


def stage_timer(stage: str, registry: MetricsRegistry | None = None, **labels: Any):
    """Timer for one extraction-pipeline stage (``pipeline.<stage>.seconds``).

    The single naming point for per-stage observability: every consumer of
    :mod:`repro.core.pipeline` gets the same histogram names, so a stage's
    cost is comparable no matter which layer invoked it.
    """
    return timer(f"pipeline.{stage}.seconds", registry, **labels)


def span(name: str, registry: MetricsRegistry | None = None, **attrs: Any):
    """Context manager tracing a block into the registry's span buffer.

    No-op unless ``registry.tracing_enabled`` is set (tracing is the
    opt-in sink; metrics stay default-on).
    """
    registry = registry or get_registry()
    if not (registry.enabled and registry.tracing_enabled):
        return _NOOP
    return _Span(registry, name, attrs)
