"""Baseline systems of §8.1: policies, mechanisms, failure modes."""

import numpy as np
import pytest

from repro.baselines import (
    GnnLabSystem,
    HpsSystem,
    PartUSystem,
    RepUSystem,
    SokSystem,
    SystemContext,
    UGacheSystem,
    UnsupportedConfiguration,
    WholeGraphSystem,
    evaluate_system,
)
from repro.core.solver import SolverConfig
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

N = 2000


def _ctx(platform, kind="gnn", capacity=200, alpha=1.2, **kw):
    defaults = dict(
        platform=platform,
        hotness=zipf_pmf(N, alpha) * 30_000,
        entry_bytes=512,
        capacity_entries=capacity,
        kind=kind,
        batch_keys=30_000.0,
        dense_time=1e-3,
    )
    defaults.update(kw)
    return SystemContext(**defaults)


class TestGnnLab:
    def test_replication_placement(self, platform_c):
        placement = GnnLabSystem().plan(_ctx(platform_c))
        assert placement.replication_factor() == pytest.approx(8.0)

    def test_capacity_bonus_from_sampler_offload(self, platform_c):
        ctx = _ctx(platform_c, graph_bytes=512 * 50)
        system = GnnLabSystem()
        assert system.capacity(ctx) == ctx.capacity_entries + 50

    def test_queue_overhead_positive(self, platform_c):
        assert GnnLabSystem().per_iteration_overhead(_ctx(platform_c)) > 0

    def test_rejects_dlr(self, platform_c):
        with pytest.raises(UnsupportedConfiguration):
            evaluate_system(GnnLabSystem(), _ctx(platform_c, kind="dlr"))


class TestWholeGraph:
    def test_fails_when_table_too_big(self, platform_c):
        # ①: 8 × 100 entries < 2000-entry table.
        with pytest.raises(UnsupportedConfiguration, match="total GPU memory"):
            WholeGraphSystem().plan(_ctx(platform_c, capacity=100))

    def test_fails_on_unconnected_pairs(self, platform_b):
        # ②: DGX-1 has unconnected pairs.
        with pytest.raises(UnsupportedConfiguration, match="unconnected"):
            WholeGraphSystem().plan(_ctx(platform_b, capacity=2000))

    def test_partitions_entire_table(self, platform_c):
        placement = WholeGraphSystem().plan(_ctx(platform_c, capacity=300))
        assert placement.distinct_cached() == N
        assert placement.replication_factor() == pytest.approx(1.0)


class TestPartU:
    def test_partition_on_connected_platform(self, platform_c):
        placement = PartUSystem().plan(_ctx(platform_c, capacity=100))
        assert placement.replication_factor() == pytest.approx(1.0)
        assert placement.distinct_cached() == 800

    def test_clique_split_on_dgx1(self, platform_b):
        placement = PartUSystem().plan(_ctx(platform_b, capacity=100))
        # Two quads replicate each other's shards: factor ≈ 2.
        assert placement.replication_factor() == pytest.approx(2.0)

    def test_host_tier_keeps_cold_entries_off_gpu(self, platform_c):
        placement = PartUSystem().plan(_ctx(platform_c, capacity=100))
        assert placement.distinct_cached() < N


class TestRepUAndHps:
    def test_repu_replicates(self, platform_c):
        placement = RepUSystem().plan(_ctx(platform_c, capacity=100))
        assert placement.replication_factor() == pytest.approx(8.0)

    def test_hps_is_dlr_only(self, platform_c):
        with pytest.raises(UnsupportedConfiguration):
            evaluate_system(HpsSystem(), _ctx(platform_c, kind="gnn"))

    def test_hps_pays_lru_overhead(self, platform_c):
        ctx = _ctx(platform_c, kind="dlr")
        repu = evaluate_system(RepUSystem(), ctx)
        hps = evaluate_system(HpsSystem(), ctx)
        assert hps.overhead_time > 0
        assert hps.iteration_time > repu.iteration_time


class TestSok:
    def test_message_mechanism(self, platform_c):
        ctx = _ctx(platform_c, kind="dlr")
        assert SokSystem().mechanism(ctx) is Mechanism.MESSAGE

    def test_per_table_rounds_overhead(self, platform_c):
        few = _ctx(platform_c, kind="dlr", num_tables=2)
        many = _ctx(platform_c, kind="dlr", num_tables=100)
        sok = SokSystem()
        assert sok.per_iteration_overhead(many) > sok.per_iteration_overhead(few)

    def test_single_table_no_extra_rounds(self, platform_c):
        ctx = _ctx(platform_c, kind="dlr", num_tables=1)
        assert SokSystem().per_iteration_overhead(ctx) == 0.0


class TestUGache:
    def test_supports_both_kinds(self, platform_c):
        system = UGacheSystem(SolverConfig(coarse_block_frac=0.05))
        for kind in ("gnn", "dlr"):
            result = evaluate_system(system, _ctx(platform_c, kind=kind))
            assert result.extraction_time > 0

    def test_factored_mechanism(self, platform_c):
        assert UGacheSystem().mechanism(_ctx(platform_c)) is Mechanism.FACTORED

    def test_beats_heuristic_baselines(self, platform_c):
        ctx = _ctx(platform_c, capacity=150)
        ug = evaluate_system(UGacheSystem(SolverConfig(coarse_block_frac=0.05)), ctx)
        repu = evaluate_system(RepUSystem(), ctx)
        partu = evaluate_system(PartUSystem(), ctx)
        assert ug.extraction_time <= repu.extraction_time * 1.05
        assert ug.extraction_time <= partu.extraction_time * 1.05


class TestEvaluateSystem:
    def test_result_fields(self, platform_c):
        result = evaluate_system(RepUSystem(), _ctx(platform_c))
        assert result.system == "RepU"
        assert result.iteration_time == pytest.approx(
            result.extraction_time
            + result.overhead_time
            + result.dense_time
            + result.sampling_time
        )
        assert result.epoch_time(10) == pytest.approx(10 * result.iteration_time)

    def test_hit_rates_attached(self, platform_c):
        result = evaluate_system(RepUSystem(), _ctx(platform_c))
        total = result.hits.local + result.hits.remote + result.hits.host
        assert total == pytest.approx(1.0)
