"""Shared helpers for the per-figure benchmark scripts.

Every benchmark runs one experiment driver exactly once under
pytest-benchmark (the drivers are deterministic, minutes-scale sweeps — not
microbenchmarks) and prints the reproduced table/figure rows uncaptured so
they land in ``bench_output.txt``.

Passing ``--metrics-out PATH`` writes one ``repro.obs`` JSON metrics
artifact aggregated over every bench in the run (cache hit splits,
per-GPU extraction timings, solver build/solve times, …).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, render_table
from repro.obs import MetricsRegistry, use_registry, write_json


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        action="store",
        default=None,
        metavar="PATH",
        help="write a JSON metrics artifact aggregated over the benches run",
    )


@pytest.fixture(scope="session")
def _bench_metrics(request):
    """One registry for the whole bench session, exported at teardown."""
    registry = MetricsRegistry("benchmarks")
    yield registry
    path = request.config.getoption("--metrics-out")
    if path:
        write_json(registry, path)


@pytest.fixture
def run_experiment(benchmark, capsys, _bench_metrics):
    """Run an experiment driver once, print its table, return its result."""

    def runner(driver, *args, **kwargs) -> ExperimentResult:
        with use_registry(_bench_metrics):
            result = benchmark.pedantic(
                driver, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        with capsys.disabled():
            print()
            print(render_table(result))
        return result

    return runner
