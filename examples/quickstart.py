"""Quickstart: a unified multi-GPU embedding cache in ~30 lines.

Builds UGache on the modelled 8×A100 server (Server C of the paper), serves
a few batches, and prints where the traffic went and how long extraction
takes under the factored mechanism vs the baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EmbeddingLayerConfig,
    Mechanism,
    UGacheEmbeddingLayer,
    server_c,
)
from repro.utils.stats import zipf_pmf

NUM_ENTRIES, DIM = 100_000, 64
BATCH = 8192


def main() -> None:
    platform = server_c()
    rng = np.random.default_rng(0)

    # The embedding table lives in host memory; UGache caches slices of it
    # across all eight GPUs.
    table = rng.standard_normal((NUM_ENTRIES, DIM)).astype(np.float32)

    # Any access-frequency estimate works as hotness (§6.1); here the
    # workload is Zipf(1.2), so we hand the solver the exact popularity.
    popularity = zipf_pmf(NUM_ENTRIES, 1.2)
    hotness = popularity * BATCH

    layer = UGacheEmbeddingLayer(
        platform, table, hotness, EmbeddingLayerConfig(cache_ratio=0.05)
    )
    hits = layer.hit_rates()
    print(f"platform: {platform.name} ({platform.num_gpus}x {platform.gpu.name})")
    print(f"policy solved in {layer.policy.solve_seconds:.2f}s "
          f"({layer.policy.blocks.num_blocks} hotness blocks)")
    print(f"hit rates: local {hits.local:.1%}, remote GPU {hits.remote:.1%}, "
          f"host {hits.host:.1%}")

    # Serve a data-parallel batch: one key array per GPU.
    keys = [rng.choice(NUM_ENTRIES, size=BATCH, p=popularity)
            for _ in platform.gpu_ids]
    values, report = layer.extract(keys)
    assert all(np.array_equal(v, table[k]) for v, k in zip(values, keys))
    print(f"batch extraction (factored): {report.time * 1e3:.3f} ms (simulated)")

    for mech in (Mechanism.PEER_NAIVE, Mechanism.MESSAGE):
        t = layer.expected_report(mech).time
        print(f"  same placement via {mech.value:8s}: {t * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
