"""Table 3: dataset inventory (stand-ins with scale factors)."""

from repro.bench.experiments import table3_datasets


def bench_table3_datasets(run_experiment):
    result = run_experiment(table3_datasets)
    keys = {row["dataset"] for row in result.rows}
    assert keys == {"pa", "cf", "mag", "cr", "syn-a", "syn-b"}
    for row in result.rows:
        assert row["volume_mb"] > 0
