"""Batch-level extraction simulation across all GPUs of a platform.

The engine takes one :class:`~repro.sim.mechanisms.GpuDemand` per GPU
(data-parallel execution: every GPU extracts its own batch concurrently),
dispatches to the selected mechanism's timing model, and aggregates a
:class:`BatchReport`.  Data-parallel training/inference synchronizes every
iteration, so the batch extraction time is the maximum over GPUs.

Health application and factored pricing are the extraction pipeline's
stages (:func:`repro.core.pipeline.apply_health` and
:func:`~repro.core.pipeline.price_demand`), shared with the extractor and
the serving runtime, so a demand priced here matches a demand priced
anywhere else in the stack.  The imports are function-level because
``repro.core`` imports this package back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.spec import FaultPlan, HealthView
from repro.hardware.platform import Platform
from repro.obs import get_registry
from repro.sim.congestion import CongestionModel
from repro.sim.mechanisms import (
    GpuDemand,
    GpuExtractionReport,
    Mechanism,
    message_extraction,
    naive_peer_extraction,
)


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one simulated batch extraction across all GPUs."""

    mechanism: Mechanism
    per_gpu: list[GpuExtractionReport]

    @property
    def time(self) -> float:
        """Batch extraction time (data-parallel barrier = max over GPUs)."""
        return max((r.time for r in self.per_gpu), default=0.0)

    @property
    def mean_gpu_time(self) -> float:
        if not self.per_gpu:
            return 0.0
        return sum(r.time for r in self.per_gpu) / len(self.per_gpu)

    def total_volume(self) -> float:
        return sum(sum(r.volumes.values()) for r in self.per_gpu)

    def volume_split(self) -> dict[str, float]:
        """Aggregate bytes by source class: local / remote / host.

        This is the quantity behind Figure 14's stacked access-rate bars
        (after normalizing by the total).
        """
        local = sum(r.volume_local() for r in self.per_gpu)
        remote = sum(r.volume_remote() for r in self.per_gpu)
        host = sum(r.volume_host() for r in self.per_gpu)
        return {"local": local, "remote": remote, "host": host}

    def access_split(self) -> dict[str, float]:
        """Fraction of bytes served from each source class (sums to 1)."""
        split = self.volume_split()
        total = sum(split.values())
        if total <= 0:
            return {k: 0.0 for k in split}
        return {k: v / total for k, v in split.items()}

    def time_split(self) -> dict[str, float]:
        """Mean per-GPU seconds attributable to each source class (Fig. 15)."""
        out = {"local": 0.0, "remote": 0.0, "host": 0.0}
        if not self.per_gpu:
            return out
        for r in self.per_gpu:
            for src, t in r.time_by_source.items():
                if src == r.dst:
                    out["local"] += t
                elif src < 0:  # any backing tier
                    out["host"] += t
                else:
                    out["remote"] += t
        return {k: v / len(self.per_gpu) for k, v in out.items()}


def readers_per_source(demands: list[GpuDemand]) -> dict[int, int]:
    """How many GPUs pull from each GPU source this batch (switch collisions)."""
    counts: dict[int, int] = {}
    for d in demands:
        for src, vol in d.volumes.items():
            if vol > 0 and src != d.dst and src >= 0:
                counts[src] = counts.get(src, 0) + 1
    return counts


def simulate_batch(
    platform: Platform,
    demands: list[GpuDemand],
    mechanism: Mechanism = Mechanism.FACTORED,
    congestion: CongestionModel | None = None,
    local_padding: bool = True,
    faults: FaultPlan | None = None,
    now: float = 0.0,
    health: HealthView | None = None,
) -> BatchReport:
    """Simulate one data-parallel batch extraction.

    Args:
        platform: hardware model.
        demands: one entry per participating GPU (usually all of them).
        mechanism: extraction mechanism to model.
        congestion: congestion tunables for the naive peer mechanism.
        local_padding: FEM ablation switch — disable the local-group
            padding of §5.3 to quantify its contribution.
        faults: optional fault plan; the active faults at ``now`` degrade
            link bandwidths and reroute volume off dead sources, so
            Figure-17-style timelines can price injected faults.
        now: simulation time ``faults`` is evaluated at.
        health: pre-flattened health view (wins over ``faults``).

    Returns:
        A :class:`BatchReport`; ``report.time`` is the batch extraction
        time in seconds.
    """
    from repro.core.pipeline import apply_health, price_demand

    if health is None and faults is not None:
        health = faults.health_at(now)
    platform, demands, moved = apply_health(platform, demands, health)
    if moved > 0:
        reg = get_registry()
        if reg.enabled:
            reg.counter("faults.sim.rerouted_bytes").inc(moved)
    for demand in demands:
        for src, vol in demand.volumes.items():
            if (
                vol > 0
                and not platform.is_backing(src)
                and not platform.is_connected(demand.dst, src)
            ):
                raise ValueError(
                    f"GPU {demand.dst} cannot extract from unconnected GPU {src}"
                )

    if mechanism is Mechanism.MESSAGE:
        reports = message_extraction(platform, demands, congestion)
    elif mechanism is Mechanism.PEER_NAIVE:
        readers = readers_per_source(demands)
        reports = [
            naive_peer_extraction(platform, d, readers, congestion) for d in demands
        ]
    elif mechanism is Mechanism.FACTORED:
        # The pipeline's price stage: the same call the extractor's
        # ``price`` and the serving runtime make.
        reports = [
            price_demand(platform, d, local_padding=local_padding)
            for d in demands
        ]
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown mechanism {mechanism}")
    report = BatchReport(mechanism=mechanism, per_gpu=reports)
    reg = get_registry()
    if reg.enabled:
        reg.counter("extract.batches", mechanism=mechanism.value).inc()
        for r in reports:
            reg.histogram("extract.gpu_seconds", gpu=r.dst).observe(r.time)
        reg.histogram("extract.batch_seconds").observe(report.time)
        for cls, vol in report.volume_split().items():
            reg.counter("extract.volume_bytes", source=cls).inc(vol)
    return report
