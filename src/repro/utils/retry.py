"""Retry, backoff, and deadline helpers for the solver fallback chain.

Everything here is deterministic and clock-injectable: delays come from a
seeded RNG and ``retry_call``/:class:`Deadline` take their clock and sleep
functions as arguments, so tests (and the chaos runner) can drive retries
without wall-clock time passing.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.utils.rng import make_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for a bounded number of attempts.

    Attributes:
        max_attempts: total tries, including the first one.
        base_delay: seconds slept after the first failure.
        multiplier: backoff growth factor between attempts.
        max_delay: ceiling on any single sleep.
        jitter: fractional (seeded) jitter applied to each delay, in
            ``[0, 1]``; ``0.2`` means ±20%.
        seed: RNG seed for the jitter, so schedules are reproducible.
            :meth:`delays` also accepts an explicit ``rng`` when a caller
            wants to share one generator across several schedules.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self, rng: Any | None = None) -> Iterator[float]:
        """Delays slept between attempts (``max_attempts - 1`` of them).

        ``rng`` may be a ``numpy.random.Generator``, an integer seed, or
        ``None`` (use the policy's own :attr:`seed`).  Passing the same
        rng/seed always reproduces the same jittered schedule.
        """
        rng = make_rng(self.seed if rng is None else rng)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            jittered = delay
            if self.jitter > 0:
                jittered *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            yield min(max(jittered, 0.0), self.max_delay)
            delay = min(delay * self.multiplier, self.max_delay)


@dataclass
class Deadline:
    """A wall-clock budget with an injectable clock.

    ``Deadline.after(5.0)`` expires five seconds from now;
    :meth:`remaining` never goes negative, so it can be handed directly to
    solver time limits.
    """

    expires_at: float
    clock: Callable[[], float] = _time.monotonic

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = _time.monotonic
    ) -> "Deadline":
        if seconds < 0:
            raise ValueError("deadline must be non-negative")
        return cls(expires_at=clock() + seconds, clock=clock)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at


class RetriesExhausted(RuntimeError):
    """All attempts of :func:`retry_call` failed; ``__cause__`` is the last."""


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = _time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    deadline: Deadline | None = None,
    rng: Any | None = None,
) -> Any:
    """Call ``fn`` until it succeeds, backing off between failures.

    Args:
        fn: zero-argument callable to retry.
        policy: attempt count and backoff schedule.
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
        sleep: sleep function (injectable for tests).
        on_retry: observer called as ``on_retry(attempt, exc)`` after each
            failed attempt that will be retried.
        deadline: optional budget; once expired, no further attempts are
            made and the last failure is re-raised.
        rng: explicit jitter rng or seed handed to
            :meth:`RetryPolicy.delays` (default: the policy's own seed).

    Raises:
        RetriesExhausted: when every attempt failed (chained to the last
            failure), or the deadline expired between attempts.
    """
    policy = policy or RetryPolicy()
    delays = policy.delays(rng)
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None and deadline.expired and last is not None:
            raise RetriesExhausted(
                f"deadline expired after {attempt - 1} attempt(s)"
            ) from last
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if on_retry is not None:
                on_retry(attempt, exc)
            if attempt == policy.max_attempts:
                break
            delay = next(delays, 0.0)
            if deadline is not None:
                delay = min(delay, deadline.remaining())
            if delay > 0:
                sleep(delay)
    raise RetriesExhausted(
        f"all {policy.max_attempts} attempt(s) failed"
    ) from last
