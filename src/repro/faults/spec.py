"""Declarative fault model: :class:`FaultSpec`, :class:`FaultPlan`,
and the derived :class:`HealthView` the runtime consults.

A fault plan is pure data — which fault, where, when, how bad — so the
same plan can drive the functional runtime (extractor rerouting, refresher
interruption), the analytic simulators (degraded bandwidths), and the
``chaos`` CLI's scenario matrix.  Plans are deterministic by construction:
anything random (which slot to corrupt, jittered backoff) derives from the
plan's seed, never from global state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.hardware.platform import HOST


class FaultKind(str, Enum):
    """The failure scenarios the injector knows how to realize."""

    #: a GPU drops out: its cache store and links become unreachable and
    #: its own local copies are lost (it keeps serving via peers/host).
    GPU_FAILURE = "gpu-failure"
    #: a link loses ``severity`` of its bandwidth but stays up.
    LINK_DEGRADATION = "link-degradation"
    #: a link goes down entirely (reads across it must reroute).
    LINK_PARTITION = "link-partition"
    #: host-gather stall: PCIe loses ``severity`` of its bandwidth.
    HOST_STALL = "host-stall"
    #: the background policy solve exceeds its wall-clock budget.
    SOLVER_TIMEOUT = "solver-timeout"
    #: the in-flight refresh is interrupted mid-application.
    REFRESH_INTERRUPT = "refresh-interrupt"
    #: location-table slots are corrupted to out-of-range ``<gpu, offset>``.
    CORRUPT_SLOT = "corrupt-slot"
    #: silent data corruption: cached value bytes flip at ``rate``
    #: events/second over the fault window (stored checksums are *not*
    #: updated — only the anti-entropy scrubber or a read-path guard can
    #: notice).  Recurring, unlike the one-shot CORRUPT_SLOT.
    BIT_ROT = "bit-rot"
    #: a whole cache-server node dies: RPCs to it time out and its GPU
    #: caches are lost until it heals and re-stages them (cluster tier).
    NODE_DOWN = "node-down"
    #: a node keeps serving but ``severity`` of its speed is gone (GC
    #: pauses, noisy neighbour, thermal throttle).
    NODE_SLOW = "node-slow"
    #: a node is unreachable from the front-end (network partition) but
    #: its state survives; calls fail fast instead of timing out.
    NODE_PARTITION = "node-partition"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what, where, when, and how severe.

    Attributes:
        kind: the failure scenario.
        onset: seconds (or simulated-loop time) at which the fault starts.
        duration: how long it lasts; ``inf`` means it never clears.
        severity: fraction in ``(0, 1]``: bandwidth lost for degradations
            and stalls, fraction of cached entries corrupted for
            :attr:`FaultKind.CORRUPT_SLOT`.  Ignored for binary faults.
        gpu: target GPU for GPU-scoped faults.
        link: ``(dst, src)`` pair for link faults (applied symmetrically).
        node: target cache-server node for node-scoped (cluster) faults;
            for :attr:`FaultKind.BIT_ROT` it is optional (``None`` means
            every node's cache rots).
        seed: per-fault randomness seed (e.g. which slots to corrupt).
        rate: corruption events per second for the recurring
            :attr:`FaultKind.BIT_ROT` fault (required > 0 there, ignored
            elsewhere).
    """

    kind: FaultKind
    onset: float = 0.0
    duration: float = math.inf
    severity: float = 1.0
    gpu: int | None = None
    link: tuple[int, int] | None = None
    node: int | None = None
    seed: int = 0
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.onset < 0:
            raise ValueError("fault onset must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if not 0 < self.severity <= 1:
            raise ValueError("fault severity must be in (0, 1]")
        if self.kind in (FaultKind.GPU_FAILURE, FaultKind.CORRUPT_SLOT):
            if self.gpu is None or self.gpu < 0:
                raise ValueError(f"{self.kind.value} needs a target gpu")
        if self.kind in (FaultKind.LINK_DEGRADATION, FaultKind.LINK_PARTITION):
            if self.link is None:
                raise ValueError(f"{self.kind.value} needs a target link")
            if self.link[0] == self.link[1]:
                raise ValueError("link faults need two distinct endpoints")
        if self.kind in (
            FaultKind.NODE_DOWN,
            FaultKind.NODE_SLOW,
            FaultKind.NODE_PARTITION,
        ):
            if self.node is None or self.node < 0:
                raise ValueError(f"{self.kind.value} needs a target node")
        if self.kind is FaultKind.BIT_ROT:
            if self.rate <= 0:
                raise ValueError("bit-rot needs a positive event rate")
            if not math.isfinite(self.duration):
                raise ValueError(
                    "bit-rot needs a finite duration (its event schedule "
                    "is drawn over the fault window)"
                )

    @property
    def clears_at(self) -> float:
        return self.onset + self.duration

    def active_at(self, now: float) -> bool:
        """Whether the fault is in effect at time ``now``."""
        return self.onset <= now < self.clears_at


@dataclass(frozen=True)
class HealthView:
    """Snapshot of platform health at one instant, derived from a plan.

    The runtime never reads :class:`FaultSpec` directly: the extractor,
    simulators, solver, and refresher all consume this flattened view, so
    real deployments can plug an actual health monitor into the same
    interface.
    """

    down_gpus: frozenset[int] = frozenset()
    #: multiplicative bandwidth factor per (dst, src) ordered pair;
    #: absent pairs are healthy (factor 1.0), 0.0 means partitioned.
    link_factors: tuple[tuple[tuple[int, int], float], ...] = ()
    #: multiplicative factor on host (PCIe) bandwidth.
    host_factor: float = 1.0
    solver_timed_out: bool = False
    refresh_interrupted: bool = False
    #: cluster tier: nodes that are dead (RPCs time out, caches lost).
    down_nodes: frozenset[int] = frozenset()
    #: multiplicative service-speed factor per slow node; absent nodes
    #: are full speed (factor 1.0).
    node_factors: tuple[tuple[int, float], ...] = ()
    #: nodes unreachable from the front-end but otherwise intact.
    partitioned_nodes: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if not 0 <= self.host_factor <= 1:
            raise ValueError("host factor must be in [0, 1]")
        for node, factor in self.node_factors:
            if not 0 < factor <= 1:
                raise ValueError(
                    f"node {node} service factor must be in (0, 1]"
                )

    @property
    def healthy(self) -> bool:
        return (
            not self.down_gpus
            and all(f >= 1.0 for _, f in self.link_factors)
            and self.host_factor >= 1.0
            and not self.solver_timed_out
            and not self.refresh_interrupted
            and not self.down_nodes
            and all(f >= 1.0 for _, f in self.node_factors)
            and not self.partitioned_nodes
        )

    def gpu_ok(self, gpu: int) -> bool:
        return gpu not in self.down_gpus

    def link_factor(self, dst: int, src: int) -> float:
        """Usable bandwidth fraction for ``dst`` reading ``src``.

        A downed endpoint zeroes the link; host reads are scaled by
        :attr:`host_factor` and never partitioned (DRAM is the fallback
        of last resort) — even for a downed GPU's batch, which its
        replacement worker still serves from host.
        """
        if src <= HOST:
            # The whole backing chain (host DRAM and deeper tiers) shares
            # the host-stall factor and is never partitioned.
            return self.host_factor
        if not self.gpu_ok(dst) or not self.gpu_ok(src):
            return 0.0
        if dst == src:
            return 1.0
        factor = 1.0
        for (a, b), f in self.link_factors:
            if (a, b) == (dst, src):
                factor = min(factor, f)
        return factor

    def source_usable(self, dst: int, src: int) -> bool:
        """Whether ``dst`` can still read from ``src`` at all."""
        return self.link_factor(dst, src) > 0.0

    # ------------------------------------------------------------------
    # Cluster tier
    # ------------------------------------------------------------------
    def node_reachable(self, node: int) -> bool:
        """Whether the front-end can talk to ``node`` at all."""
        return node not in self.down_nodes and node not in self.partitioned_nodes

    def node_service_factor(self, node: int) -> float:
        """Usable service-speed fraction of ``node`` (0.0 = unreachable)."""
        if not self.node_reachable(node):
            return 0.0
        factor = 1.0
        for n, f in self.node_factors:
            if n == node:
                factor = min(factor, f)
        return factor


#: The all-healthy view (shared; HealthView is immutable).
HEALTHY = HealthView()


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults over one run.

    The plan is time-indexed: :meth:`health_at` flattens every fault
    active at ``now`` into one :class:`HealthView`.  Overlapping faults
    compose (link factors multiply through ``min``, down-GPU sets union).
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def active_at(self, now: float) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.active_at(now))

    def of_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind is kind)

    def last_clear_time(self) -> float:
        """When the final fault clears (0 for an empty plan)."""
        return max((f.clears_at for f in self.faults), default=0.0)

    def health_at(self, now: float) -> HealthView:
        """Flatten every active fault into one :class:`HealthView`."""
        active = self.active_at(now)
        if not active:
            return HEALTHY
        down: set[int] = set()
        links: dict[tuple[int, int], float] = {}
        host_factor = 1.0
        solver_timed_out = False
        refresh_interrupted = False
        down_nodes: set[int] = set()
        node_factors: dict[int, float] = {}
        partitioned_nodes: set[int] = set()

        def degrade(pair: tuple[int, int], factor: float) -> None:
            links[pair] = min(links.get(pair, 1.0), factor)

        for f in active:
            if f.kind is FaultKind.GPU_FAILURE:
                down.add(int(f.gpu))  # type: ignore[arg-type]
            elif f.kind is FaultKind.LINK_DEGRADATION:
                a, b = f.link  # type: ignore[misc]
                degrade((a, b), 1.0 - f.severity)
                degrade((b, a), 1.0 - f.severity)
            elif f.kind is FaultKind.LINK_PARTITION:
                a, b = f.link  # type: ignore[misc]
                degrade((a, b), 0.0)
                degrade((b, a), 0.0)
            elif f.kind is FaultKind.HOST_STALL:
                host_factor = min(host_factor, 1.0 - f.severity)
            elif f.kind is FaultKind.SOLVER_TIMEOUT:
                solver_timed_out = True
            elif f.kind is FaultKind.REFRESH_INTERRUPT:
                refresh_interrupted = True
            elif f.kind is FaultKind.NODE_DOWN:
                down_nodes.add(int(f.node))  # type: ignore[arg-type]
            elif f.kind is FaultKind.NODE_SLOW:
                n = int(f.node)  # type: ignore[arg-type]
                # A fully-slowed node still crawls: clamp like host stalls.
                factor = max(1.0 - f.severity, 1e-3)
                node_factors[n] = min(node_factors.get(n, 1.0), factor)
            elif f.kind is FaultKind.NODE_PARTITION:
                partitioned_nodes.add(int(f.node))  # type: ignore[arg-type]
            # CORRUPT_SLOT is a one-shot state mutation realized by the
            # injector at onset, not a standing health condition; BIT_ROT
            # is likewise realized by the injector as a recurring event
            # schedule over its window, invisible to the health view.
        # Host bandwidth can stall but never partitions: clamp above zero
        # so the universal fallback stays reachable.
        if host_factor < 1.0:
            host_factor = max(host_factor, 1e-3)
        return HealthView(
            down_gpus=frozenset(down),
            link_factors=tuple(sorted(links.items())),
            host_factor=host_factor,
            solver_timed_out=solver_timed_out,
            refresh_interrupted=refresh_interrupted,
            down_nodes=frozenset(down_nodes),
            node_factors=tuple(sorted(node_factors.items())),
            partitioned_nodes=frozenset(partitioned_nodes),
        )
